//! **Probe**: a ProbeSim-style matrix-free Monte-Carlo engine.
//!
//! Every other engine in this workspace maintains the dense `n × n`
//! score matrix, which caps it at `n` in the thousands. This engine
//! maintains **nothing but the graph**: queries are answered on demand
//! by sampling reverse random walks and expanding reverse *probe trees*
//! (ProbeSim, Liu et al.; see PAPERS.md), so its state is `O(n + m)`
//! and a query's scratch is bounded by the reachable neighbourhood —
//! zero `n²` allocations anywhere.
//!
//! ## The estimator
//!
//! The workspace's matrix form at truncation `K` is
//! `S = (1−C)·Σ_{t=0}^{K} C^t·Q^t·(Qᵀ)^t`, i.e.
//!
//! ```text
//! S[a,b] = (1−C)·Σ_t C^t·Σ_v (Q^t)[a,v]·(Q^t)[b,v]
//! ```
//!
//! where `(Q^t)[a,v]` is the probability that a *reverse* random walk
//! from `a` (each step to a uniform in-neighbour; the walk dies at an
//! in-degree-0 node) sits at `v` after `t` steps. Two unbiased samplers
//! fall out directly:
//!
//! * **pair**: sample `R` independent walk *pairs* from `a` and `b` and
//!   add `(1−C)·C^t` whenever they coincide at step `t` — the paper-era
//!   "two-sided" estimate, `O(R·K)` time, `O(K)` space.
//! * **single-source**: sample `R` walks from `a`, tally the positions
//!   `(t, v)`, then *probe* each distinct position: expand `t` forward
//!   levels along out-edges with weight `1/in_deg(child)` per hop,
//!   which computes the exact column `(Q^t)[·, v]`. Only the walk side
//!   is sampled, so the variance is that of the empirical position
//!   distribution alone.
//!
//! With walk length capped at the configured `K`, both estimators are
//! **unbiased for the K-truncated batch scores** — the same truncation
//! every exact engine here uses — so agreement with
//! [`crate::batch_simrank`] is pure sampling noise, shrinking as
//! `1/√R`. The documented contract is `(1 ± ε)` with
//! `ε ≈ O(1/√walks)`; [`ProbeOptions::prune`] trades a small additional
//! one-sided bias (dropped probe mass below the threshold) for bounded
//! probe-tree growth on large graphs.

use crate::fxhash::FxHashMap;
use crate::maintainer::{
    validate_update, GraphSink, PairQuery, SimRankMaintainer, SingleSourceQuery, TopKQuery,
    UpdateError, UpdateStats, WalkStats,
};
use crate::query::{rank_and_truncate, RankedNode, SnapshotQuery};
use crate::rankone::UpdateKind;
use crate::SimRankConfig;
use incsim_graph::DiGraph;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sampling parameters of the probe engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOptions {
    /// Reverse walks sampled per single-source / top-k query. The probe
    /// side is exact, so the error of a score scales like `O(1/√walks)`.
    pub walks: usize,
    /// Walk *pairs* sampled per pair query (two-sided estimate — both
    /// sides are sampled, so pair queries want more samples than
    /// single-source ones for the same ε).
    pub pair_walks: usize,
    /// Probe-tree pruning threshold: frontier entries whose probability
    /// mass falls below this are dropped during expansion. `0.0` keeps
    /// the probe exact; a small positive value (the default) bounds the
    /// tree on large graphs at the cost of a one-sided bias below the
    /// threshold's magnitude.
    pub prune: f64,
    /// Base RNG seed. Queries draw per-call substreams from it, so a
    /// fixed seed makes any fixed *sequence* of queries deterministic.
    pub seed: u64,
}

impl Default for ProbeOptions {
    fn default() -> Self {
        ProbeOptions {
            walks: 512,
            pair_walks: 4096,
            prune: 1e-4,
            seed: 0x5EED_CAFE,
        }
    }
}

/// SplitMix64 — the workspace is offline, so the engine carries its own
/// tiny PRNG instead of depending on a rand crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` (`bound ≥ 1`; the modulo bias at
    /// graph-degree bounds is far below the sampling noise floor).
    fn gen_index(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// The shared walk-state: everything a query needs, behind `&self`.
/// [`ProbeSim`] wraps one; [`SimRankMaintainer::snapshot_query`] freezes
/// one into a [`ProbeSnapshot`]. Queries take `&self` (the serving
/// layer's read path), so the per-query substream counter and the
/// diagnostics are atomics.
#[derive(Debug)]
struct ProbeCore {
    graph: DiGraph,
    cfg: SimRankConfig,
    opts: ProbeOptions,
    /// Per-query substream counter: query `q` seeds its RNG from
    /// `(seed, q)`, so a fixed call sequence is reproducible.
    stream: AtomicU64,
    walks_sampled: AtomicU64,
    probe_expansions: AtomicU64,
    peak_scratch_bytes: AtomicUsize,
}

/// Approximate heap bytes of one scratch `HashMap<(u16, u32), …>` /
/// `HashMap<u32, f64>` entry (key + value + bucket overhead).
const SCRATCH_ENTRY_BYTES: usize = 48;

impl ProbeCore {
    fn new(graph: DiGraph, cfg: SimRankConfig, opts: ProbeOptions) -> Self {
        ProbeCore {
            graph,
            cfg,
            opts,
            stream: AtomicU64::new(0),
            walks_sampled: AtomicU64::new(0),
            probe_expansions: AtomicU64::new(0),
            peak_scratch_bytes: AtomicUsize::new(0),
        }
    }

    /// A frozen copy for epoch snapshots: same graph/parameters,
    /// diagnostics starting fresh. Snapshot queries use
    /// [`Self::keyed_rng`] rather than the live substream counter, so
    /// the copy's counter starts at zero and stays unused.
    fn frozen(&self) -> ProbeCore {
        ProbeCore::new(self.graph.clone(), self.cfg, self.opts)
    }

    fn rng(&self) -> SplitMix64 {
        let sub = self.stream.fetch_add(1, Ordering::Relaxed);
        // Decorrelate the substream from the base seed.
        SplitMix64(self.opts.seed ^ sub.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// A substream keyed by the query itself instead of a call counter:
    /// the frozen-epoch read path, where the same question must always
    /// return the same answer no matter how many times (or from how many
    /// threads) it is asked.
    fn keyed_rng(&self, tag: u64, a: u32, b: u32) -> SplitMix64 {
        let key = (tag << 48) ^ ((a as u64) << 24) ^ b as u64;
        SplitMix64(self.opts.seed ^ key.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    fn note_scratch(&self, entries: usize) {
        self.peak_scratch_bytes
            .fetch_max(entries * SCRATCH_ENTRY_BYTES, Ordering::Relaxed);
    }

    fn assert_in_range(&self, node: u32) {
        assert!(
            (node as usize) < self.graph.node_count(),
            "node {node} out of range for {} nodes",
            self.graph.node_count()
        );
    }

    /// Two-sided pair estimate over `pair_walks` coupled reverse walks.
    fn pair(&self, a: u32, b: u32) -> f64 {
        self.pair_sampled(a, b, self.rng())
    }

    fn pair_sampled(&self, a: u32, b: u32, mut rng: SplitMix64) -> f64 {
        self.assert_in_range(a);
        self.assert_in_range(b);
        let c = self.cfg.c;
        let k = self.cfg.iterations;
        let r = self.opts.pair_walks.max(1);
        let mut acc = 0.0f64;
        for _ in 0..r {
            let (mut va, mut vb) = (a, b);
            if va == vb {
                acc += 1.0; // the t = 0 coincidence
            }
            let mut ct = 1.0;
            for _t in 1..=k {
                ct *= c;
                let ins_a = self.graph.in_neighbors(va);
                let ins_b = self.graph.in_neighbors(vb);
                if ins_a.is_empty() || ins_b.is_empty() {
                    break; // a dead walk can never coincide again
                }
                va = ins_a[rng.gen_index(ins_a.len())];
                vb = ins_b[rng.gen_index(ins_b.len())];
                if va == vb {
                    acc += ct;
                }
            }
        }
        self.walks_sampled
            .fetch_add(2 * r as u64, Ordering::Relaxed);
        (1.0 - c) * acc / r as f64
    }

    /// Walk-and-probe single-source estimate: sample `walks` reverse
    /// walks from `a`, then probe each distinct position `(t, v)` with
    /// an exact `t`-level forward expansion. Returns only nodes with a
    /// nonzero estimate, in ascending node-id order (absent ⇒ 0).
    fn single_source(&self, a: u32) -> Vec<RankedNode> {
        self.single_source_sampled(a, self.rng())
    }

    fn single_source_sampled(&self, a: u32, mut rng: SplitMix64) -> Vec<RankedNode> {
        self.assert_in_range(a);
        let c = self.cfg.c;
        let k = self.cfg.iterations;
        let r = self.opts.walks.max(1);

        // Empirical position distribution of the walk side: how many of
        // the R walks sit at v after t steps.
        let mut tally: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for _ in 0..r {
            let mut v = a;
            for t in 1..=k as u32 {
                let ins = self.graph.in_neighbors(v);
                if ins.is_empty() {
                    break;
                }
                v = ins[rng.gen_index(ins.len())];
                *tally.entry((t, v)).or_insert(0) += 1;
            }
        }
        self.walks_sampled.fetch_add(r as u64, Ordering::Relaxed);

        // Probe side, exact: (Q^t)[·, v] by t forward levels from v,
        // dividing by in_deg at every hop.
        let mut scores: FxHashMap<u32, f64> = FxHashMap::default();
        let mut frontier: FxHashMap<u32, f64> = FxHashMap::default();
        let mut next: FxHashMap<u32, f64> = FxHashMap::default();
        let mut expansions = 0u64;
        let mut peak_entries = tally.len();
        // All three drains below go through `detorder`: the probe sums
        // floats per target node, and float addition does not commute in
        // the last bits — hash order would make identically-seeded runs
        // disagree bit-for-bit.
        for ((t, v), cnt) in crate::detorder::sorted_kv(&tally) {
            frontier.clear();
            frontier.insert(v, 1.0);
            for _level in 0..t {
                next.clear();
                for (x, wx) in crate::detorder::sorted_kv(&frontier) {
                    for &y in self.graph.out_neighbors(x) {
                        // in_deg(y) ≥ 1: the edge x→y exists.
                        *next.entry(y).or_insert(0.0) += wx / self.graph.in_degree(y) as f64;
                        expansions += 1;
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
                if self.opts.prune > 0.0 {
                    frontier.retain(|_, w| *w >= self.opts.prune);
                }
                peak_entries = peak_entries.max(frontier.len());
                if frontier.is_empty() {
                    break;
                }
            }
            let scale = (1.0 - c) * c.powi(t as i32) * cnt as f64 / r as f64;
            for (b, w) in crate::detorder::sorted_kv(&frontier) {
                *scores.entry(b).or_insert(0.0) += scale * w;
            }
            peak_entries = peak_entries.max(scores.len());
        }
        self.probe_expansions
            .fetch_add(expansions, Ordering::Relaxed);
        self.note_scratch(peak_entries);

        crate::detorder::into_sorted_kv(scores)
            .into_iter()
            .filter(|&(b, _)| b != a)
            .map(|(node, score)| RankedNode { node, score })
            .collect()
    }

    fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        rank_and_truncate(self.single_source(a), k)
    }

    fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.single_source(a)
            .into_iter()
            .filter(|rn| rn.score >= threshold)
            .collect()
    }

    fn walk_stats(&self) -> WalkStats {
        WalkStats {
            walk_updates: 0, // stamped by the wrapping engine
            walks_sampled: self.walks_sampled.load(Ordering::Relaxed),
            probe_expansions: self.probe_expansions.load(Ordering::Relaxed),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.graph.heap_bytes() + self.peak_scratch_bytes.load(Ordering::Relaxed)
    }
}

/// The matrix-free probe engine. See the [module docs](self).
///
/// Implements [`GraphSink`] + the three query capabilities but **not**
/// [`crate::MatrixAccess`]: [`SimRankMaintainer::matrix`] returns
/// `None`, and consumers that require dense state get the documented
/// [`crate::CapabilityError`] from the service layer instead of a panic.
///
/// ```
/// use incsim_core::{GraphSink, PairQuery, ProbeSim, SimRankConfig};
/// use incsim_graph::DiGraph;
///
/// let g = DiGraph::from_edges(4, &[(2, 0), (2, 1), (0, 3)]);
/// let mut engine = ProbeSim::new(g, SimRankConfig::paper_default());
/// engine.insert_edge(1, 3).unwrap(); // just a graph edit — no n² work
/// assert!(engine.pair_score(0, 1) > 0.0); // sampled on demand
/// ```
#[derive(Debug)]
pub struct ProbeSim {
    core: ProbeCore,
    walk_updates: u64,
}

impl ProbeSim {
    /// Creates the engine over `graph` with default [`ProbeOptions`].
    /// No precomputation, no `n²` allocation — construction is `O(1)`
    /// beyond taking ownership of the graph.
    pub fn new(graph: DiGraph, cfg: SimRankConfig) -> Self {
        ProbeSim::with_options(graph, cfg, ProbeOptions::default())
    }

    /// Creates the engine with explicit sampling parameters.
    pub fn with_options(graph: DiGraph, cfg: SimRankConfig, opts: ProbeOptions) -> Self {
        ProbeSim {
            core: ProbeCore::new(graph, cfg, opts),
            walk_updates: 0,
        }
    }

    /// The sampling parameters in effect.
    pub fn options(&self) -> &ProbeOptions {
        &self.core.opts
    }

    /// Heap bytes held by the engine: the graph plus the peak query
    /// scratch observed so far — `O(n + m)`, never `n²`. This is the
    /// number the bench's sub-quadratic growth gate reads.
    pub fn heap_bytes(&self) -> usize {
        self.core.heap_bytes()
    }

    /// Peak scratch bytes any single query has used so far.
    pub fn peak_scratch_bytes(&self) -> usize {
        self.core.peak_scratch_bytes.load(Ordering::Relaxed)
    }

    fn update_stats(&self, kind: UpdateKind, edge: (u32, u32)) -> UpdateStats {
        UpdateStats {
            kind,
            edge,
            iterations: 0,
            affected_pairs: 0,
            aff_avg: 0.0,
            pruned_fraction: 1.0,
            peak_intermediate_bytes: 0,
            // No scores are touched at all — see the field docs.
            gamma_density: 0.0,
            applied_mode: crate::ApplyMode::Eager,
            pending_rank: 0,
        }
    }
}

impl GraphSink for ProbeSim {
    fn name(&self) -> &'static str {
        "Probe"
    }

    fn graph(&self) -> &DiGraph {
        &self.core.graph
    }

    fn config(&self) -> &SimRankConfig {
        &self.core.cfg
    }

    /// An update is *only* a graph edit: the next query samples against
    /// the new topology. `O(deg)` per op, nothing recomputed.
    fn insert_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError> {
        validate_update(&self.core.graph, i, j, UpdateKind::Insert)?;
        self.core.graph.insert_edge(i, j)?;
        self.walk_updates += 1;
        Ok(self.update_stats(UpdateKind::Insert, (i, j)))
    }

    fn remove_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError> {
        validate_update(&self.core.graph, i, j, UpdateKind::Delete)?;
        self.core.graph.remove_edge(i, j)?;
        self.walk_updates += 1;
        Ok(self.update_stats(UpdateKind::Delete, (i, j)))
    }

    fn add_node(&mut self) -> u32 {
        self.walk_updates += 1;
        self.core.graph.add_node()
    }
}

impl PairQuery for ProbeSim {
    fn pair_score(&self, a: u32, b: u32) -> f64 {
        self.core.pair(a, b)
    }
}

impl SingleSourceQuery for ProbeSim {
    fn single_source(&self, a: u32) -> Vec<RankedNode> {
        self.core.single_source(a)
    }

    fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.core.similar_above(a, threshold)
    }
}

impl TopKQuery for ProbeSim {
    fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        self.core.top_k(a, k)
    }
}

impl SimRankMaintainer for ProbeSim {
    // matrix()/matrix_mut() keep their `None` defaults: this engine has
    // no dense state — that absence *is* the point.

    fn snapshot_query(&self) -> Arc<dyn SnapshotQuery> {
        Arc::new(ProbeSnapshot {
            core: self.core.frozen(),
        })
    }

    fn walk_stats(&self) -> Option<WalkStats> {
        let mut stats = self.core.walk_stats();
        stats.walk_updates = self.walk_updates;
        Some(stats)
    }
}

/// A frozen probe-engine epoch: its own copy of the graph plus the
/// sampling parameters — `O(n + m)` epoch material where a matrix
/// engine's [`crate::ScoreSnapshot`] costs `n²`. Queries answer against
/// the frozen topology forever, no matter how the live engine evolves.
///
/// Reads are **idempotent**: the sampling substream is keyed by the
/// query arguments (not a call counter), so the same question on the
/// same epoch always returns the same answer — from any thread, in any
/// order — and `pair(a, b) == pair(b, a)` holds exactly. That mirrors
/// the read-consistency a dense [`crate::ScoreSnapshot`] gives for free.
#[derive(Debug)]
pub struct ProbeSnapshot {
    core: ProbeCore,
}

impl ProbeSnapshot {
    fn row(&self, a: u32) -> Vec<RankedNode> {
        self.core
            .single_source_sampled(a, self.core.keyed_rng(2, a, 0))
    }
}

impl SnapshotQuery for ProbeSnapshot {
    fn n(&self) -> usize {
        self.core.graph.node_count()
    }

    fn pair(&self, a: u32, b: u32) -> f64 {
        let (lo, hi) = (a.min(b), a.max(b));
        self.core
            .pair_sampled(lo, hi, self.core.keyed_rng(1, lo, hi))
    }

    fn single_source(&self, a: u32) -> Vec<RankedNode> {
        self.row(a)
    }

    fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        rank_and_truncate(self.row(a), k)
    }

    fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.row(a)
            .into_iter()
            .filter(|rn| rn.score >= threshold)
            .collect()
    }

    fn heap_bytes(&self) -> usize {
        self.core.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::batch_simrank;
    use std::collections::HashMap;

    /// 0 ← {2,3} and 1 ← {2,4} share referrer 2, feeding 5 ← {0,1};
    /// node 4 is a source (in-degree 0), so walks through it die.
    fn fixture() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (2, 0),
                (3, 0),
                (2, 1),
                (4, 1),
                (0, 5),
                (1, 5),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        )
    }

    /// Test parameters: exact probes (no pruning), enough samples that
    /// the `1/√R` noise sits well inside the asserted tolerance.
    fn test_opts() -> ProbeOptions {
        ProbeOptions {
            walks: 3000,
            pair_walks: 20_000,
            prune: 0.0,
            seed: 7,
        }
    }

    fn cfg() -> SimRankConfig {
        SimRankConfig::new(0.6, 8).expect("valid config")
    }

    #[test]
    fn pair_estimates_match_batch_truth() {
        let g = fixture();
        let truth = batch_simrank(&g, &cfg());
        let engine = ProbeSim::with_options(g, cfg(), test_opts());
        for (a, b) in [(0u32, 1u32), (2, 3), (0, 5), (2, 2), (4, 4)] {
            let got = engine.pair_score(a, b);
            let want = truth.get(a as usize, b as usize);
            assert!((got - want).abs() < 0.05, "pair ({a},{b}): {got} vs {want}");
        }
    }

    #[test]
    fn single_source_matches_batch_row() {
        let g = fixture();
        let truth = batch_simrank(&g, &cfg());
        let engine = ProbeSim::with_options(g, cfg(), test_opts());
        for a in 0..7u32 {
            let got = engine.single_source(a);
            // Absent nodes mean score 0; look every node up.
            let by_node: HashMap<u32, f64> = got.iter().map(|r| (r.node, r.score)).collect();
            for b in 0..7u32 {
                if b == a {
                    continue;
                }
                let est = by_node.get(&b).copied().unwrap_or(0.0);
                let want = truth.get(a as usize, b as usize);
                assert!(
                    (est - want).abs() < 0.05,
                    "source {a} target {b}: {est} vs {want}"
                );
            }
            // Output is ascending by node id, self excluded.
            assert!(got.windows(2).all(|w| w[0].node < w[1].node));
            assert!(got.iter().all(|r| r.node != a));
        }
    }

    #[test]
    fn top_k_ranks_the_strongest_pair_first() {
        let g = fixture();
        let truth = batch_simrank(&g, &cfg());
        let engine = ProbeSim::with_options(g, cfg(), test_opts());
        let top = engine.top_k(0, 3);
        assert!(top.len() <= 3);
        assert!(top.windows(2).all(|w| w[0].score >= w[1].score));
        // The true argmax of row 0 must sit at the head (its margin in
        // this fixture is far beyond the sampling tolerance).
        let want = crate::query::top_k_for_node(&truth, 0, 1);
        assert_eq!(top[0].node, want[0].node);
    }

    #[test]
    fn queries_are_deterministic_per_sequence() {
        let run = || -> (f64, Vec<RankedNode>) {
            let engine = ProbeSim::with_options(fixture(), cfg(), test_opts());
            (engine.pair_score(0, 1), engine.single_source(3))
        };
        let (p1, s1) = run();
        let (p2, s2) = run();
        assert_eq!(p1, p2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn updates_are_graph_edits_with_walk_stats() {
        let mut engine = ProbeSim::with_options(fixture(), cfg(), test_opts());
        let stats = engine.insert_edge(0, 6).unwrap();
        assert_eq!(stats.pending_rank, 0);
        assert_eq!(stats.affected_pairs, 0);
        assert!(engine.graph().has_edge(0, 6));
        assert!(engine.insert_edge(0, 6).is_err(), "duplicate rejected");
        engine.remove_edge(0, 6).unwrap();
        assert!(!engine.graph().has_edge(0, 6));
        let _ = engine.pair_score(0, 1);
        let ws = engine.walk_stats().expect("probe reports walk stats");
        assert_eq!(ws.walk_updates, 2);
        assert!(ws.walks_sampled > 0);
        // The capability probe reports no matrix.
        assert!(engine.matrix().is_none());
    }

    #[test]
    fn updates_shift_the_estimates() {
        // Deleting 2→1 removes the shared referrer of (0,1); the sampled
        // score must track the batch truth downward.
        let g = fixture();
        let mut engine = ProbeSim::with_options(g.clone(), cfg(), test_opts());
        let before = engine.pair_score(0, 1);
        engine.remove_edge(2, 1).unwrap();
        let after = engine.pair_score(0, 1);
        let truth_after = {
            let mut g2 = g;
            g2.remove_edge(2, 1).unwrap();
            batch_simrank(&g2, &cfg()).get(0, 1)
        };
        assert!((after - truth_after).abs() < 0.05);
        assert!(before > after + 0.02, "{before} vs {after}");
    }

    #[test]
    fn snapshot_freezes_the_topology() {
        let mut engine = ProbeSim::with_options(fixture(), cfg(), test_opts());
        let snap = engine.snapshot_query();
        assert_eq!(snap.n(), 7);
        let frozen = snap.pair(0, 1);
        engine.remove_edge(2, 0).unwrap();
        engine.remove_edge(2, 1).unwrap();
        let live = engine.pair_score(0, 1);
        assert!(frozen > 0.02, "fixture pair is similar");
        assert!(live < 1e-9, "no shared in-links remain");
        // Frozen reads are idempotent and symmetric: the substream is
        // keyed by the query, so re-asking reproduces the answer exactly.
        assert_eq!(snap.pair(0, 1), frozen);
        assert_eq!(snap.pair(1, 0), frozen);
        assert_eq!(snap.single_source(0), snap.single_source(0));
        assert!(snap.heap_bytes() > 0);
        assert!(snap.score_snapshot().is_none(), "no matrix behind it");
    }

    #[test]
    fn pruning_bounds_scratch_and_stays_close() {
        let g = fixture();
        let truth = batch_simrank(&g, &cfg());
        let pruned = ProbeSim::with_options(
            g,
            cfg(),
            ProbeOptions {
                prune: 1e-3,
                ..test_opts()
            },
        );
        let got = pruned.single_source(0);
        let by_node: HashMap<u32, f64> = got.iter().map(|r| (r.node, r.score)).collect();
        for b in 1..7u32 {
            let est = by_node.get(&b).copied().unwrap_or(0.0);
            let want = truth.get(0, b as usize);
            // One-sided bias: pruning can only lose mass.
            assert!(est <= want + 0.05, "target {b}: {est} vs {want}");
            assert!((est - want).abs() < 0.08, "target {b}: {est} vs {want}");
        }
        assert!(pruned.peak_scratch_bytes() > 0);
    }
}

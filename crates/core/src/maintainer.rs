//! The common interface of incremental SimRank engines.

use crate::rankone::UpdateKind;
use incsim_graph::{DiGraph, GraphError, UpdateOp};
use incsim_linalg::DenseMatrix;

use crate::SimRankConfig;

/// How an engine folds the per-update terms `ξ_k·η_kᵀ + η_k·ξ_kᵀ` of ΔS
/// into its score matrix (see [`incsim_linalg::LowRankDelta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApplyMode {
    /// Apply every term immediately — `K+1` full sweeps of `S` per unit
    /// update (the paper's Algorithm 1/2 as written). The default.
    #[default]
    Eager,
    /// Buffer the terms and fold them in with **one** fused, cache-blocked,
    /// parallel sweep per mutation call; a batch of `b` updates costs one
    /// sweep instead of `b·(K+1)`.
    Fused,
    /// Never apply automatically: queries read `S_base + Δ` through the
    /// factor buffer, and the matrix is only materialised on an explicit
    /// `flush()` (or when an operation needs the full matrix, e.g. the
    /// row-grouped path or `add_node`). `scores()` returns the *base*
    /// matrix — pending updates are visible through the lazy query
    /// helpers in [`crate::query`] only.
    Lazy,
}

/// Errors from incremental updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// The underlying graph mutation was invalid (node out of range,
    /// duplicate insert, missing delete).
    Graph(GraphError),
    /// The engine refused to allocate past its memory budget. The paper's
    /// Inc-SVD baseline hits this on large graphs/ranks ("memory crash for
    /// high-dimension SVD"); the budget guard turns that into a clean error.
    ResourceExhausted {
        /// Bytes the engine would have needed.
        needed_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
    },
    /// A numerical routine inside the engine failed (e.g. a singular
    /// system in the Inc-SVD closed form).
    Numerical(&'static str),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Graph(e) => write!(f, "graph update rejected: {e}"),
            UpdateError::ResourceExhausted {
                needed_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory budget exceeded: need {needed_bytes} bytes, budget {budget_bytes}"
            ),
            UpdateError::Numerical(what) => write!(f, "numerical failure: {what}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<GraphError> for UpdateError {
    fn from(e: GraphError) -> Self {
        UpdateError::Graph(e)
    }
}

/// Per-update diagnostics (drives the paper's Exp-2/Exp-3 measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStats {
    /// Insert or delete.
    pub kind: UpdateKind,
    /// The updated edge `(i, j)`.
    pub edge: (u32, u32),
    /// Iterations `K` performed.
    pub iterations: usize,
    /// Distinct node pairs touched in the update matrix `M` (the affected
    /// area of ΔS). For the unpruned engine this is `n²`.
    pub affected_pairs: usize,
    /// The paper's `|AFF| = avg_k |A_k|·|B_k|` (Fig. 2e reports it as a
    /// percentage of `n²`).
    pub aff_avg: f64,
    /// Fraction of the `n²` node pairs *not* touched (Fig. 2d's
    /// "% of pruned node-pairs"). 0 for the unpruned engine.
    pub pruned_fraction: f64,
    /// Peak intermediate heap bytes used by this update (Fig. 3's
    /// "memory space"; excludes the `n²` score matrix itself, matching the
    /// paper's definition of intermediate space).
    pub peak_intermediate_bytes: usize,
}

/// An engine that maintains all-pairs SimRank scores on an evolving graph.
///
/// Implemented by [`crate::IncUSr`] (Algorithm 1) and [`crate::IncSr`]
/// (Algorithm 2); `incsim-baselines` adds the Inc-SVD engine of Li et al.
/// behind the same interface so the experiment harness can swap them.
pub trait SimRankMaintainer {
    /// Engine name as used in the paper's figures (e.g. `"Inc-SR"`).
    fn name(&self) -> &'static str;

    /// The maintained score matrix (matrix-form SimRank of the current graph).
    fn scores(&self) -> &DenseMatrix;

    /// The current graph.
    fn graph(&self) -> &DiGraph;

    /// The engine configuration.
    fn config(&self) -> &SimRankConfig;

    /// Inserts edge `(i, j)` and incrementally updates all scores.
    fn insert_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError>;

    /// Deletes edge `(i, j)` and incrementally updates all scores.
    fn remove_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError>;

    /// Appends an isolated node, growing the score matrix (extension beyond
    /// the paper, which fixes the node set). The new node's only nonzero
    /// score is its diagonal `1 − C`.
    fn add_node(&mut self) -> u32;

    /// Applies one [`UpdateOp`].
    fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, UpdateError> {
        match op {
            UpdateOp::Insert(u, v) => self.insert_edge(u, v),
            UpdateOp::Delete(u, v) => self.remove_edge(u, v),
        }
    }

    /// Applies a batch update `ΔG` as the sequence of its unit updates
    /// (the decomposition described in §V of the paper). Stops at the first
    /// invalid op, leaving the engine consistent with the ops applied so far.
    fn apply_batch(&mut self, ops: &[UpdateOp]) -> Result<Vec<UpdateStats>, UpdateError> {
        let mut stats = Vec::with_capacity(ops.len());
        for &op in ops {
            stats.push(self.apply(op)?);
        }
        Ok(stats)
    }
}

/// Shared `apply_batch` driver for the deferred-ΔS engines: applies each
/// op through the engine's `apply_update`, and when `fused` is set
/// flushes exactly once at the end — including on the error path, so the
/// engine stays consistent with the ops applied so far. Both [`crate::IncUSr`]
/// and [`crate::IncSr`] delegate here so their batch semantics cannot drift.
pub(crate) fn drive_batch<E>(
    engine: &mut E,
    ops: &[UpdateOp],
    fused: bool,
    apply: impl Fn(&mut E, u32, u32, UpdateKind) -> Result<UpdateStats, UpdateError>,
    flush: impl Fn(&mut E),
) -> Result<Vec<UpdateStats>, UpdateError> {
    let finish = |e: &mut E| {
        if fused {
            flush(e);
        }
    };
    let mut stats = Vec::with_capacity(ops.len());
    for &op in ops {
        let (i, j) = op.endpoints();
        let kind = match op {
            UpdateOp::Insert(..) => UpdateKind::Insert,
            UpdateOp::Delete(..) => UpdateKind::Delete,
        };
        match apply(engine, i, j, kind) {
            Ok(s) => stats.push(s),
            Err(e) => {
                finish(engine);
                return Err(e);
            }
        }
    }
    finish(engine);
    Ok(stats)
}

/// Validates a pending update against the current graph. Shared by all
/// engines (including the Inc-SVD baseline in `incsim-baselines`) so they
/// reject invalid updates *before* touching any state.
pub fn validate_update(g: &DiGraph, i: u32, j: u32, kind: UpdateKind) -> Result<(), UpdateError> {
    let n = g.node_count();
    for v in [i, j] {
        if v as usize >= n {
            return Err(UpdateError::Graph(GraphError::NodeOutOfRange {
                node: v,
                node_count: n,
            }));
        }
    }
    match kind {
        UpdateKind::Insert => {
            if g.has_edge(i, j) {
                return Err(UpdateError::Graph(GraphError::EdgeExists {
                    src: i,
                    dst: j,
                }));
            }
        }
        UpdateKind::Delete => {
            if !g.has_edge(i, j) {
                return Err(UpdateError::Graph(GraphError::EdgeMissing {
                    src: i,
                    dst: j,
                }));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_updates() {
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        assert!(validate_update(&g, 0, 1, UpdateKind::Insert).is_err());
        assert!(validate_update(&g, 1, 0, UpdateKind::Insert).is_ok());
        assert!(validate_update(&g, 0, 1, UpdateKind::Delete).is_ok());
        assert!(validate_update(&g, 1, 0, UpdateKind::Delete).is_err());
        assert!(validate_update(&g, 0, 9, UpdateKind::Insert).is_err());
        assert!(validate_update(&g, 9, 0, UpdateKind::Delete).is_err());
    }

    #[test]
    fn update_error_displays() {
        let e = UpdateError::Graph(GraphError::EdgeExists { src: 1, dst: 2 });
        assert!(e.to_string().contains("already exists"));
    }
}

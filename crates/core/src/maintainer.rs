//! The common interface of incremental SimRank engines.

use crate::query::{RankedNode, ScoreSnapshot, ScoreView, SnapshotQuery};
use crate::rankone::UpdateKind;
use incsim_graph::{DiGraph, GraphError, UpdateOp};
use incsim_linalg::{DenseMatrix, LowRankDelta, Recompression};

use crate::SimRankConfig;

/// How an engine folds the per-update terms `ξ_k·η_kᵀ + η_k·ξ_kᵀ` of ΔS
/// into its score matrix (see [`incsim_linalg::LowRankDelta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApplyMode {
    /// Apply every term immediately — `K+1` full sweeps of `S` per unit
    /// update (the paper's Algorithm 1/2 as written). The default.
    #[default]
    Eager,
    /// Buffer the terms and fold them in with **one** fused, cache-blocked,
    /// parallel sweep per mutation call; a batch of `b` updates costs one
    /// sweep instead of `b·(K+1)`.
    Fused,
    /// Never apply automatically: queries read `S_base + Δ` through the
    /// factor buffer, and the matrix is only materialised on an explicit
    /// `flush()` (or when an operation needs the full matrix, e.g. the
    /// row-grouped path or `add_node`). Reads through
    /// [`MatrixAccess::view`] compose `S_base + Δ` transparently;
    /// [`MatrixAccess::scores`] materialises the pending Δ first, so
    /// a stale base matrix is never observable through the trait.
    Lazy,
}

/// Shared deferred-ΔS state of the engines that support every
/// [`ApplyMode`] ([`crate::IncSr`], [`crate::IncUSr`]): the current mode
/// plus the pending factor buffer. Centralising it here keeps the
/// mode/flush semantics of the two engines from drifting apart.
#[derive(Debug, Clone)]
pub(crate) struct DeferredApply {
    pub mode: ApplyMode,
    pub delta: LowRankDelta,
}

impl DeferredApply {
    pub fn new(n: usize) -> Self {
        DeferredApply {
            mode: ApplyMode::Eager,
            delta: LowRankDelta::new(n),
        }
    }

    /// Folds all pending factors into `scores` (one fused sweep); returns
    /// the number of rank-two terms applied.
    pub fn flush_into(&mut self, scores: &mut DenseMatrix) -> usize {
        let pairs = self.delta.pending_pairs();
        self.delta.apply_to(scores);
        pairs
    }

    /// Switches the mode. Materialises pending ΔS only when the mode
    /// actually changes, so re-asserting the current mode (as the adaptive
    /// policy does every update) never cuts a lazy window short.
    pub fn set_mode(&mut self, mode: ApplyMode, scores: &mut DenseMatrix) {
        if self.mode != mode {
            self.flush_into(scores);
            self.mode = mode;
        }
    }

    /// Recompresses the pending factor buffer in place to its numerical
    /// rank (see [`LowRankDelta::recompress`]) — the lazy window stays
    /// open, queries drop to `O(rank)`, and nothing is materialised.
    pub fn compress(&mut self, tol: f64) -> Recompression {
        self.delta.recompress(tol)
    }

    /// Re-dimensions the buffer to `n` because the score matrix is about
    /// to be re-shaped (`add_node`). Factors still pending at the *old*
    /// dimension cannot be applied after the re-shape, so they are
    /// flushed into `old_scores` (which must still have the old shape)
    /// first — unconditionally, in every build profile. A `debug_assert!`
    /// here used to vanish in release builds and silently drop an
    /// un-flushed Δ. Returns the number of rank-two terms flushed.
    pub fn resize(&mut self, n: usize, old_scores: &mut DenseMatrix) -> usize {
        let flushed = self.flush_into(old_scores);
        self.delta = LowRankDelta::new(n);
        flushed
    }
}

/// Errors from incremental updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// The underlying graph mutation was invalid (node out of range,
    /// duplicate insert, missing delete).
    Graph(GraphError),
    /// The engine refused to allocate past its memory budget. The paper's
    /// Inc-SVD baseline hits this on large graphs/ranks ("memory crash for
    /// high-dimension SVD"); the budget guard turns that into a clean error.
    ResourceExhausted {
        /// Bytes the engine would have needed.
        needed_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
    },
    /// A numerical routine inside the engine failed (e.g. a singular
    /// system in the Inc-SVD closed form).
    Numerical(&'static str),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Graph(e) => write!(f, "graph update rejected: {e}"),
            UpdateError::ResourceExhausted {
                needed_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory budget exceeded: need {needed_bytes} bytes, budget {budget_bytes}"
            ),
            UpdateError::Numerical(what) => write!(f, "numerical failure: {what}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<GraphError> for UpdateError {
    fn from(e: GraphError) -> Self {
        UpdateError::Graph(e)
    }
}

/// Per-update diagnostics (drives the paper's Exp-2/Exp-3 measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStats {
    /// Insert or delete.
    pub kind: UpdateKind,
    /// The updated edge `(i, j)`.
    pub edge: (u32, u32),
    /// Iterations `K` performed.
    pub iterations: usize,
    /// Distinct node pairs touched in the update matrix `M` (the affected
    /// area of ΔS). For the unpruned engine this is `n²`.
    pub affected_pairs: usize,
    /// The paper's `|AFF| = avg_k |A_k|·|B_k|` (Fig. 2e reports it as a
    /// percentage of `n²`).
    pub aff_avg: f64,
    /// Fraction of the `n²` node pairs *not* touched (Fig. 2d's
    /// "% of pruned node-pairs"). 0 for the unpruned engine.
    pub pruned_fraction: f64,
    /// Peak intermediate heap bytes used by this update (Fig. 3's
    /// "memory space"; excludes the `n²` score matrix itself, matching the
    /// paper's definition of intermediate space).
    pub peak_intermediate_bytes: usize,
    /// Fraction of nonzero entries in this update's γ vector (`nnz(γ)/n`).
    /// This is the workload signal the adaptive apply policy routes on:
    /// a sparse γ means the eager zero-skip sweeps are already cheap, a
    /// dense γ means a fused/deferred apply pays. Engines without a γ
    /// (Inc-SVD, batch recompute) report `1.0` — their updates always
    /// touch the full matrix.
    pub gamma_density: f64,
    /// The [`ApplyMode`] that was in effect when this update ran.
    pub applied_mode: ApplyMode,
    /// Rank of the pending ΔS factor buffer *after* this update returned
    /// (0 whenever the matrix is fully materialised; grows by `K+1` per
    /// deferred update inside a lazy window or a fused batch).
    pub pending_rank: usize,
}

/// A requested capability is not implemented by the active engine —
/// e.g. asking a matrix-free engine ([`crate::ProbeSim`]) for its dense
/// score matrix. The documented, non-panicking answer to "this engine
/// cannot do that".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapabilityError {
    /// Name of the engine the capability was requested from.
    pub engine: &'static str,
    /// The missing capability (e.g. `"MatrixAccess"`).
    pub capability: &'static str,
}

impl std::fmt::Display for CapabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "engine {} does not implement the {} capability",
            self.engine, self.capability
        )
    }
}

impl std::error::Error for CapabilityError {}

/// Counters of a sampling (walk-based) engine — the probe engine's
/// analogue of the apply-pipeline diagnostics. Engines with an apply
/// pipeline report `None` from
/// [`SimRankMaintainer::walk_stats`]; the service layer surfaces these
/// instead of zero-stuffing its apply-mode counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Graph mutations absorbed without any score recomputation (the
    /// index-free engine's "update" is just the graph edit).
    pub walk_updates: u64,
    /// Reverse √C-walks sampled across all queries so far.
    pub walks_sampled: u64,
    /// Probe-tree node expansions performed across all queries so far.
    pub probe_expansions: u64,
}

impl WalkStats {
    /// Accumulates `other` into `self` (saturating).
    pub fn merge(&mut self, other: &WalkStats) {
        self.walk_updates = self.walk_updates.saturating_add(other.walk_updates);
        self.walks_sampled = self.walks_sampled.saturating_add(other.walks_sampled);
        self.probe_expansions = self.probe_expansions.saturating_add(other.probe_expansions);
    }
}

/// The graph-mutation capability: an engine that consumes an evolving
/// edge stream and keeps *some* internal representation current.
///
/// This is the one capability every engine must implement; what an
/// engine maintains in response (a dense matrix, low-rank factors, or —
/// for the matrix-free probe engine — nothing beyond the graph itself)
/// is expressed through the other capability traits.
pub trait GraphSink {
    /// Engine name as used in the paper's figures (e.g. `"Inc-SR"`).
    fn name(&self) -> &'static str;

    /// The current graph.
    fn graph(&self) -> &DiGraph;

    /// The engine configuration.
    fn config(&self) -> &SimRankConfig;

    /// Inserts edge `(i, j)` and incrementally updates the maintained state.
    fn insert_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError>;

    /// Deletes edge `(i, j)` and incrementally updates the maintained state.
    fn remove_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError>;

    /// Appends an isolated node (extension beyond the paper, which fixes
    /// the node set). Engines with a score matrix grow it; the new node's
    /// only nonzero score is its diagonal `1 − C`.
    fn add_node(&mut self) -> u32;

    /// Applies one [`UpdateOp`].
    fn apply(&mut self, op: UpdateOp) -> Result<UpdateStats, UpdateError> {
        match op {
            UpdateOp::Insert(u, v) => self.insert_edge(u, v),
            UpdateOp::Delete(u, v) => self.remove_edge(u, v),
        }
    }

    /// Applies a batch update `ΔG` as the sequence of its unit updates
    /// (the decomposition described in §V of the paper). Stops at the first
    /// invalid op, leaving the engine consistent with the ops applied so far.
    fn apply_batch(&mut self, ops: &[UpdateOp]) -> Result<Vec<UpdateStats>, UpdateError> {
        let mut stats = Vec::with_capacity(ops.len());
        for &op in ops {
            stats.push(self.apply(op)?);
        }
        Ok(stats)
    }
}

/// The single-pair query capability: `S(a, b)` of the current graph.
///
/// Exact engines answer from their maintained matrix (`O(1)`
/// materialised, `O(r)` through a pending Δ); the probe engine answers
/// by sampling coupled reverse walks, within its documented `(1 ± ε)`
/// contract.
pub trait PairQuery {
    /// Similarity of one node pair (symmetric).
    ///
    /// # Panics
    /// Panics if either node is out of range.
    fn pair_score(&self, a: u32, b: u32) -> f64;
}

/// The single-source query capability: all similarities of one node.
pub trait SingleSourceQuery {
    /// Similarities of node `a`, excluding itself. Matrix engines list
    /// every other node (zeros included); sampling engines list only
    /// nodes with a nonzero estimate — an absent node means score 0.
    fn single_source(&self, a: u32) -> Vec<RankedNode>;

    /// Nodes whose similarity to `a` is at least `threshold`, unordered.
    fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.single_source(a)
            .into_iter()
            .filter(|r| r.score >= threshold)
            .collect()
    }
}

/// The top-k query capability: the `k` most similar nodes to a query
/// node, ranked by the shared rule (score descending, ties by node id).
pub trait TopKQuery {
    /// The `k` most similar nodes to `a`, descending (ties by node id).
    fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode>;
}

/// The dense-matrix capability: the engine maintains the full `n × n`
/// score matrix (plus, optionally, a deferred low-rank ΔS buffer).
///
/// This was the whole `SimRankMaintainer` surface before the capability
/// split; it is now optional — the matrix-free probe engine does not
/// implement it, and every consumer that used to reach for
/// `base_scores()` goes through
/// [`SimRankMaintainer::matrix`]/[`SimRankMaintainer::matrix_mut`]
/// instead, degrading gracefully when the capability is absent.
///
/// ## Reading scores
///
/// Two read paths, both always consistent regardless of [`ApplyMode`]:
///
/// * [`Self::view`] — a cheap [`ScoreView`] composing `S_base + Δ` over
///   any pending deferred update; never materialises anything.
/// * [`Self::scores`] — the materialised matrix; takes `&mut self` and
///   flushes pending ΔS first, so it can never return stale entries.
///
/// [`Self::base_scores`] exposes the raw base matrix (excluding pending
/// ΔS) for diagnostics and zero-copy internal reads; treat anything it
/// returns mid-lazy-window as stale by construction.
pub trait MatrixAccess {
    /// The maintained base score matrix **excluding** any pending deferred
    /// ΔS. Identical to [`Self::scores`] outside lazy windows; inside one
    /// it lags the true state — prefer [`Self::view`] or [`Self::scores`]
    /// unless staleness is explicitly wanted.
    fn base_scores(&self) -> &DenseMatrix;

    /// The maintained score matrix (matrix-form SimRank of the current
    /// graph), **with any pending deferred ΔS materialised first** — this
    /// ends a lazy window. Guaranteed never stale; the default
    /// implementation is [`Self::flush`] followed by [`Self::base_scores`].
    fn scores(&mut self) -> &DenseMatrix {
        self.flush();
        self.base_scores()
    }

    /// A transparent read view `S_base + Δ` over the current state.
    /// Answers are identical in every [`ApplyMode`] and nothing is
    /// materialised — inside a lazy window a pair read costs `O(r)` factor
    /// dot-products instead of an `n²` apply.
    fn view(&self) -> ScoreView<'_> {
        ScoreView::new(self.base_scores(), self.pending_delta())
    }

    /// An **owned** frozen copy of the current state (`S_base + Δ`) —
    /// epoch material for concurrent serving. Unlike [`Self::view`] the
    /// result borrows nothing, so it can outlive any subsequent mutation
    /// of the engine; unlike [`Self::scores`] it needs only `&self` and
    /// never materialises the pending ΔS.
    fn snapshot_view(&self) -> ScoreSnapshot {
        self.view().to_snapshot()
    }

    /// The pending deferred-ΔS factor buffer, when the engine defers
    /// applies (`None` for engines that always materialise immediately).
    fn pending_delta(&self) -> Option<&LowRankDelta> {
        None
    }

    /// Rank of the pending ΔS buffer (0 when fully materialised).
    fn pending_rank(&self) -> usize {
        self.pending_delta()
            .map_or(0, incsim_linalg::LowRankDelta::pending_pairs)
    }

    /// The current [`ApplyMode`]. Engines without deferred-apply support
    /// are always [`ApplyMode::Eager`].
    fn mode(&self) -> ApplyMode {
        ApplyMode::Eager
    }

    /// Switches the apply mode, materialising any pending ΔS when the
    /// mode actually changes. Engines without deferred-apply support
    /// ignore this (they behave eagerly in every mode — still correct,
    /// since reads compose `S_base + Δ` and their Δ is always empty).
    fn set_mode(&mut self, mode: ApplyMode) {
        let _ = mode;
    }

    /// Builder-style [`Self::set_mode`].
    fn with_mode(mut self, mode: ApplyMode) -> Self
    where
        Self: Sized,
    {
        self.set_mode(mode);
        self
    }

    /// Folds all pending ΔS factors into the score matrix (no-op when
    /// nothing is pending). Returns the number of rank-two terms applied.
    fn flush(&mut self) -> usize {
        0
    }

    /// Recompresses the pending deferred-ΔS buffer **in place** to its
    /// numerical rank at the relative tolerance `tol` (see
    /// [`LowRankDelta::recompress`]): the lazy window stays open and no
    /// `n²` materialisation happens, but queries drop from `O(r)` to
    /// `O(rank)` and the buffer memory plateaus. Returns the pending rank
    /// after compression; engines without a deferred buffer are no-ops
    /// returning 0 (their Δ is always empty).
    fn compress_pending(&mut self, tol: f64) -> usize {
        let _ = tol;
        0
    }
}

// Every matrix engine answers the three query capabilities the same way:
// through its transparent `S_base + Δ` view. These blanket impls are
// what "the four existing engines implement unchanged in behavior"
// means — their query answers are bit-identical to the pre-split
// `view()`-based reads, and a matrix engine can never drift from its
// own view. Matrix-free engines implement the query traits directly.

impl<T: MatrixAccess> PairQuery for T {
    fn pair_score(&self, a: u32, b: u32) -> f64 {
        self.view().pair(a, b)
    }
}

impl<T: MatrixAccess> SingleSourceQuery for T {
    fn single_source(&self, a: u32) -> Vec<RankedNode> {
        self.view().single_source(a)
    }

    fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.view().similar_above(a, threshold)
    }
}

impl<T: MatrixAccess> TopKQuery for T {
    fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        self.view().top_k(a, k)
    }
}

/// An engine that maintains SimRank answers on an evolving graph — the
/// composition of the capability traits, and the object-safe surface
/// the `incsim::api` service layer drives through
/// `Box<dyn SimRankMaintainer>`.
///
/// Every engine mutates through [`GraphSink`] and answers the three
/// query capabilities ([`PairQuery`], [`SingleSourceQuery`],
/// [`TopKQuery`]); whether it *also* maintains the dense matrix is
/// discoverable at runtime through [`Self::matrix`] — `Some` for the
/// four exact/factored engines ([`crate::IncSr`], [`crate::IncUSr`],
/// Inc-SVD, batch recompute), `None` for the matrix-free probe engine
/// ([`crate::ProbeSim`]). Consumers needing dense state must go through
/// the capability probe and degrade gracefully (return the documented
/// [`CapabilityError`], never panic) when it is absent.
pub trait SimRankMaintainer: GraphSink + PairQuery + SingleSourceQuery + TopKQuery {
    /// The dense-matrix capability, when this engine maintains the full
    /// `n × n` score matrix. `None` for matrix-free engines.
    fn matrix(&self) -> Option<&dyn MatrixAccess> {
        None
    }

    /// Mutable access to the dense-matrix capability (flush, mode
    /// switches, recompression). `None` for matrix-free engines.
    fn matrix_mut(&mut self) -> Option<&mut dyn MatrixAccess> {
        None
    }

    /// An **owned** frozen query surface over the current state — epoch
    /// material for concurrent serving, from *any* engine. Matrix
    /// engines freeze `S_base + Δ` (the default); matrix-free engines
    /// must override with their own walk-state snapshot.
    fn snapshot_query(&self) -> std::sync::Arc<dyn SnapshotQuery> {
        match self.matrix() {
            Some(m) => std::sync::Arc::new(m.snapshot_view()),
            // An engine must expose one of the two snapshot sources; this
            // is a contract violation in the engine, not a user error.
            None => panic!(
                "engine {} implements neither MatrixAccess nor snapshot_query",
                self.name()
            ),
        }
    }

    /// Sampling-engine counters, for engines without an apply pipeline
    /// (`None` for matrix engines — their diagnostics live in
    /// [`UpdateStats`] and the apply-mode counters).
    fn walk_stats(&self) -> Option<WalkStats> {
        None
    }
}

/// Shared `apply_batch` driver for the deferred-ΔS engines: applies each
/// op through the engine's `apply_update`, and when `fused` is set
/// flushes exactly once at the end — including on the error path, so the
/// engine stays consistent with the ops applied so far. Both [`crate::IncUSr`]
/// and [`crate::IncSr`] delegate here so their batch semantics cannot drift.
pub(crate) fn drive_batch<E>(
    engine: &mut E,
    ops: &[UpdateOp],
    fused: bool,
    apply: impl Fn(&mut E, u32, u32, UpdateKind) -> Result<UpdateStats, UpdateError>,
    flush: impl Fn(&mut E),
) -> Result<Vec<UpdateStats>, UpdateError> {
    let finish = |e: &mut E| {
        if fused {
            flush(e);
        }
    };
    let mut stats = Vec::with_capacity(ops.len());
    for &op in ops {
        let (i, j) = op.endpoints();
        let kind = match op {
            UpdateOp::Insert(..) => UpdateKind::Insert,
            UpdateOp::Delete(..) => UpdateKind::Delete,
        };
        match apply(engine, i, j, kind) {
            Ok(s) => stats.push(s),
            Err(e) => {
                finish(engine);
                return Err(e);
            }
        }
    }
    finish(engine);
    Ok(stats)
}

/// Validates a pending update against the current graph. Shared by all
/// engines (including the Inc-SVD baseline in `incsim-baselines`) so they
/// reject invalid updates *before* touching any state.
pub fn validate_update(g: &DiGraph, i: u32, j: u32, kind: UpdateKind) -> Result<(), UpdateError> {
    let n = g.node_count();
    for v in [i, j] {
        if v as usize >= n {
            return Err(UpdateError::Graph(GraphError::NodeOutOfRange {
                node: v,
                node_count: n,
            }));
        }
    }
    match kind {
        UpdateKind::Insert => {
            if g.has_edge(i, j) {
                return Err(UpdateError::Graph(GraphError::EdgeExists {
                    src: i,
                    dst: j,
                }));
            }
        }
        UpdateKind::Delete => {
            if !g.has_edge(i, j) {
                return Err(UpdateError::Graph(GraphError::EdgeMissing {
                    src: i,
                    dst: j,
                }));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_updates() {
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        assert!(validate_update(&g, 0, 1, UpdateKind::Insert).is_err());
        assert!(validate_update(&g, 1, 0, UpdateKind::Insert).is_ok());
        assert!(validate_update(&g, 0, 1, UpdateKind::Delete).is_ok());
        assert!(validate_update(&g, 1, 0, UpdateKind::Delete).is_err());
        assert!(validate_update(&g, 0, 9, UpdateKind::Insert).is_err());
        assert!(validate_update(&g, 9, 0, UpdateKind::Delete).is_err());
    }

    #[test]
    fn update_error_displays() {
        let e = UpdateError::Graph(GraphError::EdgeExists { src: 1, dst: 2 });
        assert!(e.to_string().contains("already exists"));
    }
}

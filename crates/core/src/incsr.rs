//! **Inc-SR** (Algorithm 2): incremental SimRank with lossless pruning.
//!
//! Inc-SR runs the same rank-one Sylvester iteration as
//! [Inc-uSR](crate::IncUSr) but confines every step to the *affected area*
//! of the update matrix `M` (Theorem 4):
//!
//! * the initial support `B₀ = F₁ ∪ F₂ ∪ {j}` where
//!   `F₁ = ⋃ { O(y) : [S]_{i,y} ≠ 0 }` captures the reachable ends of the
//!   new symmetric in-link paths through `(i, j)` (Eq. 38) and
//!   `F₂ = { y : [S]_{j,y} ≠ 0 }` (Eq. 39);
//! * at iteration `k`, `A_k`/`B_k` are out-neighbourhoods of the previous
//!   supports (Eq. 40). This engine tracks supports *exactly* through
//!   sparse accumulators — a subset of the paper's `A_k × B_k`
//!   over-approximation, hence also lossless.
//!
//! Entries outside `∪_k (A_k × B_k) ∪ (A₀ × B₀)` are identically zero in
//! `M` (Theorem 4), so skipping them loses nothing: *pruning is exact*.
//! Cost: `O(K·(n·d + |AFF|))` with `|AFF| = avg_k |A_k|·|B_k|`.

use crate::grouped::GroupedStats;
use crate::maintainer::{
    validate_update, ApplyMode, DeferredApply, GraphSink, MatrixAccess, SimRankMaintainer,
    UpdateError, UpdateStats,
};
use crate::rankone::{rank_one_decomposition, RankOneUpdate, UpdateKind};
use crate::SimRankConfig;
use incsim_graph::{DiGraph, UpdateOp};
use incsim_linalg::{DenseMatrix, LowRankDelta, SparseAccumulator};

/// The Algorithm 2 engine. See the [module docs](self).
///
/// ```
/// use incsim_core::{GraphSink, IncSr, MatrixAccess, SimRankConfig};
/// use incsim_graph::DiGraph;
///
/// let g = DiGraph::from_edges(4, &[(2, 0), (2, 1), (0, 3)]);
/// let mut engine = IncSr::from_graph(g, SimRankConfig::paper_default());
/// let stats = engine.insert_edge(1, 3).unwrap();
/// // Node 3 now has in-neighbours {0, 1}, which share referrer 2.
/// assert!(engine.scores().get(0, 1) > 0.0);
/// assert!(stats.pruned_fraction > 0.0);
/// ```
pub struct IncSr {
    graph: DiGraph,
    scores: DenseMatrix,
    cfg: SimRankConfig,
    // Apply mode + pending ΔS as *sparse* factor columns (fused/lazy).
    deferred: DeferredApply,
    // Reused sparse workspaces (cleared in O(|support|) after each update).
    xi: SparseAccumulator,
    eta: SparseAccumulator,
    xi_next: SparseAccumulator,
    eta_next: SparseAccumulator,
    wacc: SparseAccumulator,
    // Union of ξ/η supports across iterations (A_∪, B_∪): the affected-area
    // accounting of Fig. 2d/2e.
    a_union: SparseAccumulator,
    b_union: SparseAccumulator,
    // Effective rows S[i,:] / S[j,:] (base + pending Δ), staged per update.
    eff_row_i: Vec<f64>,
    eff_row_j: Vec<f64>,
}

impl IncSr {
    /// Creates an engine from a graph and its (pre-computed) score matrix.
    ///
    /// # Panics
    /// Panics if `scores` is not `n × n` for the graph's `n`.
    pub fn new(graph: DiGraph, scores: DenseMatrix, cfg: SimRankConfig) -> Self {
        let n = graph.node_count();
        assert_eq!(scores.rows(), n, "scores must be n x n");
        assert_eq!(scores.cols(), n, "scores must be n x n");
        IncSr {
            graph,
            scores,
            cfg,
            deferred: DeferredApply::new(n),
            xi: SparseAccumulator::new(n),
            eta: SparseAccumulator::new(n),
            xi_next: SparseAccumulator::new(n),
            eta_next: SparseAccumulator::new(n),
            wacc: SparseAccumulator::new(n),
            a_union: SparseAccumulator::new(n),
            b_union: SparseAccumulator::new(n),
            eff_row_i: vec![0.0; n],
            eff_row_j: vec![0.0; n],
        }
    }

    /// Convenience constructor that batch-computes the initial scores.
    pub fn from_graph(graph: DiGraph, cfg: SimRankConfig) -> Self {
        let scores = crate::batch::batch_simrank(&graph, &cfg);
        IncSr::new(graph, scores, cfg)
    }

    /// Consumes the engine, returning `(graph, scores)` with any pending
    /// ΔS materialised.
    pub fn into_parts(mut self) -> (DiGraph, DenseMatrix) {
        self.flush();
        (self.graph, self.scores)
    }

    /// Stages the effective rows `S[i,:]` and `S[j,:]` (base + pending Δ)
    /// into the scratch fields; everything γ needs from `S` lives in these
    /// two rows (S is symmetric), which is what lets deferred updates
    /// chain without materialising the buffer.
    fn stage_effective_rows(&mut self, i: usize, j: usize) {
        self.eff_row_i.copy_from_slice(self.scores.row(i));
        self.eff_row_j.copy_from_slice(self.scores.row(j));
        if !self.deferred.delta.is_empty() {
            self.deferred.delta.add_row_delta(i, &mut self.eff_row_i);
            self.deferred.delta.add_row_delta(j, &mut self.eff_row_j);
        }
    }

    /// The affected-area row/column supports (`A_∪`, `B_∪`) of the **last**
    /// update: the nodes whose score rows/columns were touched. The paper's
    /// Fig. 2d/2e report the union of these areas over a whole `ΔE` stream;
    /// accumulate across calls to reproduce that metric.
    pub fn last_affected(&self) -> (&[u32], &[u32]) {
        (self.a_union.support(), self.b_union.support())
    }

    /// Algorithm 2 line 3: assemble `B₀ = F₁ ∪ F₂ ∪ {j}` and memoise
    /// `[w]_b = [Q]_{b,:}·[S]_{:,i}` for `b ∈ B₀` into `self.wacc`.
    /// Reads `S` through the staged effective rows only.
    fn build_b0_and_w(&mut self, upd: &RankOneUpdate) {
        let tol = self.cfg.zero_tol;
        let j = upd.j;
        let n = self.graph.node_count();
        self.wacc.clear();

        // F₁ = out-neighbours of T = supp([S]_{i,:}); w is supported on F₁.
        // (S is symmetric, so row i doubles as column i — contiguous reads.)
        let s_row_i = &self.eff_row_i;
        for (y, &sval) in s_row_i.iter().enumerate().take(n) {
            if sval.abs() <= tol {
                continue;
            }
            for &b in self.graph.out_neighbors(y as u32) {
                // Mark b ∈ F₁; the w value is filled below.
                self.wacc.add(b as usize, 0.0);
            }
        }
        // Needed by λ even when j ∉ F₁.
        self.wacc.add(j as usize, 0.0);
        // F₂ = supp([S]_{j,:}) for the d_j > 0 / d_j > 1 branches.
        let needs_f2 = matches!(
            (upd.kind, upd.dj_old),
            (UpdateKind::Insert, d) if d > 0
        ) || matches!((upd.kind, upd.dj_old), (UpdateKind::Delete, d) if d > 1);
        if needs_f2 {
            let s_row_j = &self.eff_row_j;
            for (y, &sval) in s_row_j.iter().enumerate().take(n) {
                if sval.abs() > tol {
                    self.wacc.add(y, 0.0);
                }
            }
        }

        // Memoise w over B₀: [w]_b = (1/d_b)·Σ_{y ∈ I(b)} S[y,i].
        for idx in 0..self.wacc.support_len() {
            let b = self.wacc.support()[idx] as usize;
            let innb = self.graph.in_neighbors(b as u32);
            if innb.is_empty() {
                continue;
            }
            let mut acc = 0.0;
            for &y in innb {
                acc += self.eff_row_i[y as usize];
            }
            self.wacc.set(b, acc / innb.len() as f64);
        }
    }

    /// Algorithm 2 lines 4–13: γ into `self.eta` (sparse), returns λ.
    /// Reads `S` through the staged effective rows only.
    fn build_gamma(&mut self, upd: &RankOneUpdate) -> f64 {
        let c = self.cfg.c;
        let i = upd.i as usize;
        let j = upd.j as usize;
        let s_ii = self.eff_row_i[i];
        let s_jj = self.eff_row_j[j];
        let w_j = self.wacc.get(j);
        let lambda = s_ii + s_jj / c - 2.0 * w_j - 1.0 / c + 1.0;

        self.eta.clear();
        match (upd.kind, upd.dj_old) {
            (UpdateKind::Insert, 0) => {
                for idx in 0..self.wacc.support_len() {
                    let b = self.wacc.support()[idx] as usize;
                    self.eta.add(b, self.wacc.get(b));
                }
                self.eta.add(j, 0.5 * s_ii);
            }
            (UpdateKind::Insert, dj) => {
                let djf = dj as f64;
                let scale = 1.0 / (djf + 1.0);
                let coeff = lambda / (2.0 * (djf + 1.0)) + 1.0 / c - 1.0;
                for idx in 0..self.wacc.support_len() {
                    let b = self.wacc.support()[idx] as usize;
                    let sbj = self.eff_row_j[b]; // S[b,j] by symmetry
                    self.eta.add(b, scale * (self.wacc.get(b) - sbj / c));
                }
                self.eta.add(j, scale * coeff);
            }
            (UpdateKind::Delete, 1) => {
                for idx in 0..self.wacc.support_len() {
                    let b = self.wacc.support()[idx] as usize;
                    self.eta.add(b, -self.wacc.get(b));
                }
                self.eta.add(j, 0.5 * s_ii);
            }
            (UpdateKind::Delete, dj) => {
                debug_assert!(dj > 1);
                let djf = dj as f64;
                let scale = 1.0 / (djf - 1.0);
                let coeff = lambda / (2.0 * (djf - 1.0)) - 1.0 / c + 1.0;
                for idx in 0..self.wacc.support_len() {
                    let b = self.wacc.support()[idx] as usize;
                    let sbj = self.eff_row_j[b];
                    self.eta.add(b, scale * (sbj / c - self.wacc.get(b)));
                }
                self.eta.add(j, scale * coeff);
            }
        }
        lambda
    }

    /// Folds the current term `ξ·ηᵀ + η·ξᵀ` of ΔS into the score matrix
    /// (eager) or the sparse factor buffer (fused/lazy), touching only
    /// `supp(ξ) × supp(η)` (plus its transpose) either way. Eager writes
    /// are row-contiguous: row `a ∈ supp(ξ)` gains `ξ_a·η`, row
    /// `b ∈ supp(η)` gains `η_b·ξ`. Also records the supports in the
    /// `A_∪`/`B_∪` affected-area unions (identically in every mode).
    fn add_affected_term(&mut self) {
        // Address-ordered supports keep the row writes prefetch-friendly.
        self.xi.sort_support();
        self.eta.sort_support();
        for (a, xa) in self.xi.iter() {
            if xa != 0.0 {
                self.a_union.set(a as usize, 1.0);
            }
        }
        for (b, yb) in self.eta.iter() {
            if yb != 0.0 {
                self.b_union.set(b as usize, 1.0);
            }
        }
        if self.deferred.mode != ApplyMode::Eager {
            self.deferred
                .delta
                .push_sparse(self.xi.to_pairs(0.0), self.eta.to_pairs(0.0));
            return;
        }
        for (a, xa) in self.xi.iter() {
            if xa == 0.0 {
                continue;
            }
            let row = self.scores.row_mut(a as usize);
            for (b, yb) in self.eta.iter() {
                row[b as usize] += xa * yb;
            }
        }
        for (b, yb) in self.eta.iter() {
            if yb == 0.0 {
                continue;
            }
            let row = self.scores.row_mut(b as usize);
            for (a, xa) in self.xi.iter() {
                row[a as usize] += xa * yb;
            }
        }
    }

    /// Runs lines 13–19 of Algorithm 2 for a rank-one update
    /// `ΔQ = u_coeff·e_j·vᵀ`: the sparse ξ/η iteration over the affected
    /// area, folding every `ξηᵀ + ηξᵀ` term into the score matrix
    /// (line 20's `ΔS = M + Mᵀ`, applied term by term). Expects γ in
    /// `self.eta`; returns `Σ_k |A_k|·|B_k|` for the AFF statistics.
    fn run_sylvester_iteration(&mut self, j: usize, u_coeff: f64, v: &[(u32, f64)]) -> f64 {
        let c = self.cfg.c;
        // Line 13: ξ₀ = C·e_j, η₀ = γ; M₀ = C·e_j·γᵀ folded immediately.
        self.xi.clear();
        self.xi.set(j, c);
        self.a_union.clear();
        self.b_union.clear();
        self.add_affected_term();
        let mut aff_sum = self.xi.support_len() as f64 * self.eta.support_len() as f64;

        // Lines 14–19: sparse ξ/η iteration over the affected area only.
        for _ in 0..self.cfg.iterations {
            let theta_xi: f64 = v
                .iter()
                .map(|&(t, val)| val * self.xi.get(t as usize))
                .sum();
            let theta_eta: f64 = v
                .iter()
                .map(|&(t, val)| val * self.eta.get(t as usize))
                .sum();

            // [ξ_k]_a = C·[Q]_{a,:}·ξ_{k−1} + C·θ_ξ·[u]_a, scattered over
            // out-neighbourhoods (A_k of Eq. 40, but exact).
            self.xi_next.clear();
            for (t, xt) in self.xi.iter() {
                if xt == 0.0 {
                    continue;
                }
                for &a in self.graph.out_neighbors(t) {
                    let da = self.graph.in_degree(a) as f64;
                    self.xi_next.add(a as usize, c * xt / da);
                }
            }
            if theta_xi != 0.0 {
                self.xi_next.add(j, c * theta_xi * u_coeff);
            }

            self.eta_next.clear();
            for (t, yt) in self.eta.iter() {
                if yt == 0.0 {
                    continue;
                }
                for &b in self.graph.out_neighbors(t) {
                    let db = self.graph.in_degree(b) as f64;
                    self.eta_next.add(b as usize, yt / db);
                }
            }
            if theta_eta != 0.0 {
                self.eta_next.add(j, theta_eta * u_coeff);
            }

            std::mem::swap(&mut self.xi, &mut self.xi_next);
            std::mem::swap(&mut self.eta, &mut self.eta_next);

            // S ← S + ξ_k·η_kᵀ + η_k·ξ_kᵀ over A_k × B_k (and transpose).
            aff_sum += self.xi.support_len() as f64 * self.eta.support_len() as f64;
            self.add_affected_term();
        }
        aff_sum
    }

    /// Applies a batch update with **row grouping** (see
    /// [`crate::grouped`]): all edge changes sharing a destination are
    /// folded into one rank-one Sylvester update — a batch of `b` edges
    /// over `r` distinct destinations costs `r` pruned iterations instead
    /// of `b`. Exactness is unchanged (Theorem 2 holds for any rank-one
    /// `ΔQ`).
    pub fn apply_grouped(&mut self, ops: &[UpdateOp]) -> Result<GroupedStats, UpdateError> {
        let rows = crate::grouped::group_by_row(&self.graph, ops)?;
        let tol = self.cfg.zero_tol;
        for change in &rows {
            // The grouped γ (Theorem 2 route) reads arbitrary rows of S,
            // so any pending ΔS must be materialised first.
            self.flush();
            let rro = crate::grouped::row_rank_one(&self.graph, &self.scores, change, |x, y| {
                crate::grouped::graph_q_matvec(&self.graph, x, y);
            })?;
            self.eta.clear();
            for (b, &g) in rro.gamma.iter().enumerate() {
                if g.abs() > tol {
                    self.eta.add(b, g);
                }
            }
            self.run_sylvester_iteration(change.j as usize, 1.0, &rro.v);
            for op in &change.ops {
                op.apply(&mut self.graph)?;
            }
        }
        if self.deferred.mode == ApplyMode::Fused {
            self.flush();
        }
        Ok(GroupedStats {
            unit_ops: ops.len(),
            row_updates: rows.len(),
        })
    }

    fn apply_update(
        &mut self,
        i: u32,
        j: u32,
        kind: UpdateKind,
    ) -> Result<UpdateStats, UpdateError> {
        validate_update(&self.graph, i, j, kind)?;
        let n = self.graph.node_count();
        let k_iters = self.cfg.iterations;

        let upd = rank_one_decomposition(&self.graph, i, j, kind);
        self.stage_effective_rows(i as usize, j as usize);
        self.build_b0_and_w(&upd);
        let _lambda = self.build_gamma(&upd);
        let gamma_nnz = self
            .eta
            .iter()
            .filter(|&(_, v)| v.abs() > self.cfg.zero_tol)
            .count();
        let aff_sum = self.run_sylvester_iteration(j as usize, upd.u_coeff, &upd.v);

        // Commit the link update (Inc-SR reads Q straight from the graph,
        // so there is no CSR to rebuild).
        match kind {
            UpdateKind::Insert => self.graph.insert_edge(i, j)?,
            UpdateKind::Delete => self.graph.remove_edge(i, j)?,
        }

        // Affected pairs: the paper's product-form accounting
        // |A_∪ × B_∪| with A_∪ = ∪_k A_k, B_∪ = ∪_k B_k (Theorem 4 bounds
        // supp(ΔS) by unions of such products).
        let affected = self.a_union.support_len() * self.b_union.support_len();
        let total_pairs = (n * n).max(1);
        // Intermediate memory = the state Algorithm 2 memoises: the sparse
        // vectors (w over B₀, ξ, η, the union trackers — index + value +
        // flag ≈ 13 B per support index). The dense O(n) scratch inside
        // `SparseAccumulator` is a constant-factor speed optimisation shared
        // across updates, not per-update state, and is excluded — matching
        // the paper's accounting, where Inc-SR memoises only *parts* of the
        // auxiliary vectors.
        let idx_bytes = std::mem::size_of::<u32>() + std::mem::size_of::<f64>() + 1;
        let support_indices = self.wacc.support_len()
            + self.xi.support_len()
            + self.eta.support_len()
            + self.a_union.support_len()
            + self.b_union.support_len();
        // Deferred modes also hold the sparse factor buffer.
        let delta_bytes = self.deferred.delta.heap_bytes();
        Ok(UpdateStats {
            kind,
            edge: (i, j),
            iterations: k_iters,
            affected_pairs: affected.min(total_pairs),
            aff_avg: aff_sum / (k_iters + 1) as f64,
            pruned_fraction: 1.0 - affected.min(total_pairs) as f64 / total_pairs as f64,
            peak_intermediate_bytes: support_indices * idx_bytes + delta_bytes,
            gamma_density: gamma_nnz as f64 / n.max(1) as f64,
            applied_mode: self.deferred.mode,
            pending_rank: self.deferred.delta.pending_pairs(),
        })
    }
}

impl MatrixAccess for IncSr {
    fn base_scores(&self) -> &DenseMatrix {
        &self.scores
    }

    fn pending_delta(&self) -> Option<&LowRankDelta> {
        Some(&self.deferred.delta)
    }

    fn mode(&self) -> ApplyMode {
        self.deferred.mode
    }

    fn set_mode(&mut self, mode: ApplyMode) {
        self.deferred.set_mode(mode, &mut self.scores);
    }

    /// One fused sweep over the touched rows only (the factors are sparse).
    fn flush(&mut self) -> usize {
        self.deferred.flush_into(&mut self.scores)
    }

    fn compress_pending(&mut self, tol: f64) -> usize {
        self.deferred.compress(tol);
        self.deferred.delta.pending_pairs()
    }
}

impl SimRankMaintainer for IncSr {
    fn matrix(&self) -> Option<&dyn MatrixAccess> {
        Some(self)
    }

    fn matrix_mut(&mut self) -> Option<&mut dyn MatrixAccess> {
        Some(self)
    }
}

impl GraphSink for IncSr {
    fn name(&self) -> &'static str {
        "Inc-SR"
    }

    fn graph(&self) -> &DiGraph {
        &self.graph
    }

    fn config(&self) -> &SimRankConfig {
        &self.cfg
    }

    fn insert_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError> {
        let mut stats = self.apply_update(i, j, UpdateKind::Insert)?;
        if self.deferred.mode == ApplyMode::Fused {
            self.flush();
        }
        stats.pending_rank = self.deferred.delta.pending_pairs();
        Ok(stats)
    }

    fn remove_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError> {
        let mut stats = self.apply_update(i, j, UpdateKind::Delete)?;
        if self.deferred.mode == ApplyMode::Fused {
            self.flush();
        }
        stats.pending_rank = self.deferred.delta.pending_pairs();
        Ok(stats)
    }

    /// In [`ApplyMode::Fused`] the whole batch shares **one** fused apply
    /// over the union of the touched rows (the updates chain through
    /// effective rows), instead of one pass per update.
    fn apply_batch(&mut self, ops: &[UpdateOp]) -> Result<Vec<UpdateStats>, UpdateError> {
        crate::maintainer::drive_batch(
            self,
            ops,
            self.deferred.mode == ApplyMode::Fused,
            Self::apply_update,
            |e| {
                e.flush();
            },
        )
    }

    fn add_node(&mut self) -> u32 {
        let v = self.graph.add_node();
        let n = self.graph.node_count();
        // Flush any pending Δ (still at the old dimension) into the old
        // matrix and re-dimension the buffer before the re-shape.
        self.deferred.resize(n, &mut self.scores);
        let mut grown = DenseMatrix::zeros(n, n);
        for a in 0..n - 1 {
            let src = self.scores.row(a);
            grown.row_mut(a)[..n - 1].copy_from_slice(src);
        }
        grown.set(n - 1, n - 1, 1.0 - self.cfg.c);
        self.scores = grown;
        self.xi = SparseAccumulator::new(n);
        self.eta = SparseAccumulator::new(n);
        self.xi_next = SparseAccumulator::new(n);
        self.eta_next = SparseAccumulator::new(n);
        self.wacc = SparseAccumulator::new(n);
        self.a_union = SparseAccumulator::new(n);
        self.b_union = SparseAccumulator::new(n);
        self.eff_row_i = vec![0.0; n];
        self.eff_row_j = vec![0.0; n];
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::batch_simrank;
    use crate::incusr::IncUSr;

    fn tight_cfg() -> SimRankConfig {
        SimRankConfig::new(0.6, 90).unwrap()
    }

    fn fixture() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 2),
                (1, 4),
                (6, 3),
            ],
        )
    }

    fn assert_matches_batch(g: &DiGraph, i: u32, j: u32, kind: UpdateKind) {
        let cfg = tight_cfg();
        let s_old = batch_simrank(g, &cfg);
        let mut engine = IncSr::new(g.clone(), s_old, cfg);
        match kind {
            UpdateKind::Insert => engine.insert_edge(i, j).unwrap(),
            UpdateKind::Delete => engine.remove_edge(i, j).unwrap(),
        };
        let s_batch = batch_simrank(engine.graph(), &cfg);
        let diff = engine.scores().max_abs_diff(&s_batch);
        assert!(
            diff < 1e-9,
            "Inc-SR diverged from batch for ({i},{j}) {kind:?}: diff={diff}"
        );
    }

    #[test]
    fn insert_matches_batch_all_cases() {
        assert_matches_batch(&fixture(), 3, 0, UpdateKind::Insert); // d_j = 0
        assert_matches_batch(&fixture(), 4, 2, UpdateKind::Insert); // d_j > 0
    }

    #[test]
    fn delete_matches_batch_all_cases() {
        assert_matches_batch(&fixture(), 6, 3, UpdateKind::Delete); // d_j = 1
        assert_matches_batch(&fixture(), 1, 2, UpdateKind::Delete); // d_j > 1
    }

    #[test]
    fn pruning_is_lossless_vs_incusr() {
        // Theorem 4's claim: Inc-SR ≡ Inc-uSR, entry for entry.
        let g = fixture();
        let cfg = SimRankConfig::paper_default();
        let s0 = batch_simrank(&g, &cfg);
        let mut pruned = IncSr::new(g.clone(), s0.clone(), cfg);
        let mut unpruned = IncUSr::new(g, s0, cfg);
        for (i, j, kind) in [
            (0u32, 4u32, UpdateKind::Insert),
            (6, 2, UpdateKind::Insert),
            (2, 3, UpdateKind::Delete),
            (0, 2, UpdateKind::Delete),
        ] {
            match kind {
                UpdateKind::Insert => {
                    pruned.insert_edge(i, j).unwrap();
                    unpruned.insert_edge(i, j).unwrap();
                }
                UpdateKind::Delete => {
                    pruned.remove_edge(i, j).unwrap();
                    unpruned.remove_edge(i, j).unwrap();
                }
            }
            let diff = pruned.scores().max_abs_diff(unpruned.scores());
            assert!(diff < 1e-12, "pruning lost exactness: diff={diff}");
        }
    }

    #[test]
    fn affected_area_is_sparse_on_chain_graph() {
        // A long path: an update at the tail should touch few pairs.
        let n = 60;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        let g = DiGraph::from_edges(n, &edges);
        let cfg = SimRankConfig::new(0.6, 10).unwrap();
        let mut engine = IncSr::from_graph(g, cfg);
        let stats = engine.insert_edge(0, (n - 1) as u32).unwrap();
        assert!(
            stats.pruned_fraction > 0.5,
            "expected most pairs pruned, got {}",
            stats.pruned_fraction
        );
        assert!(stats.affected_pairs < n * n);
        assert!(stats.aff_avg < (n * n) as f64);
    }

    #[test]
    fn sequence_of_updates_stays_exact() {
        let g = fixture();
        let cfg = tight_cfg();
        let mut engine = IncSr::from_graph(g, cfg);
        engine.insert_edge(0, 5).unwrap();
        engine.insert_edge(6, 2).unwrap();
        engine.remove_edge(2, 3).unwrap();
        engine.insert_edge(3, 6).unwrap();
        engine.remove_edge(6, 2).unwrap();
        let s_batch = batch_simrank(engine.graph(), &cfg);
        assert!(engine.scores().max_abs_diff(&s_batch) < 1e-8);
    }

    #[test]
    fn isolated_component_is_untouched() {
        // Two disconnected components; updating one must not change scores
        // within the other (they are structurally unreachable).
        let g = DiGraph::from_edges(8, &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (6, 7)]);
        let cfg = SimRankConfig::paper_default();
        let s0 = batch_simrank(&g, &cfg);
        let mut engine = IncSr::new(g, s0.clone(), cfg);
        engine.insert_edge(2, 3).unwrap();
        for a in 4..8 {
            for b in 4..8 {
                assert_eq!(
                    engine.scores().get(a, b),
                    s0.get(a, b),
                    "pair ({a},{b}) in the untouched component changed"
                );
            }
        }
    }

    #[test]
    fn invalid_updates_leave_state_untouched() {
        let g = fixture();
        let cfg = SimRankConfig::paper_default();
        let s0 = batch_simrank(&g, &cfg);
        let mut engine = IncSr::new(g.clone(), s0.clone(), cfg);
        assert!(engine.insert_edge(0, 2).is_err());
        assert!(engine.remove_edge(0, 3).is_err());
        assert_eq!(engine.graph(), &g);
        assert!(engine.scores().max_abs_diff(&s0) == 0.0);
    }

    #[test]
    fn stats_expose_affected_area_metrics() {
        let g = fixture();
        let cfg = SimRankConfig::paper_default();
        let mut engine = IncSr::from_graph(g, cfg);
        let stats = engine.insert_edge(0, 4).unwrap();
        assert!(stats.affected_pairs > 0);
        assert!(stats.aff_avg > 0.0);
        assert!((0.0..=1.0).contains(&stats.pruned_fraction));
        assert!(stats.peak_intermediate_bytes > 0);
    }

    #[test]
    fn add_node_extension_grows_scores() {
        let g = fixture();
        let cfg = tight_cfg();
        let mut engine = IncSr::from_graph(g, cfg);
        let v = engine.add_node();
        assert_eq!(v, 7);
        assert!((engine.scores().get(7, 7) - 0.4).abs() < 1e-12);
        engine.insert_edge(7, 2).unwrap();
        engine.insert_edge(3, 7).unwrap();
        let s_batch = batch_simrank(engine.graph(), &cfg);
        assert!(engine.scores().max_abs_diff(&s_batch) < 1e-9);
    }

    #[test]
    fn self_loop_updates_are_exact() {
        assert_matches_batch(&fixture(), 2, 2, UpdateKind::Insert);
    }

    fn mixed_ops() -> Vec<UpdateOp> {
        use incsim_graph::UpdateOp::*;
        vec![
            Insert(0, 5),
            Insert(6, 2),
            Delete(2, 3),
            Insert(3, 6),
            Delete(6, 2),
        ]
    }

    #[test]
    fn fused_mode_matches_eager_bit_for_bit() {
        let g = fixture();
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut eager = IncSr::new(g.clone(), s0.clone(), cfg);
        let mut fused = IncSr::new(g, s0, cfg).with_mode(ApplyMode::Fused);
        for op in mixed_ops() {
            eager.apply(op).unwrap();
            fused.apply(op).unwrap();
        }
        assert_eq!(fused.pending_rank(), 0);
        assert_eq!(
            eager.scores().max_abs_diff(fused.scores()),
            0.0,
            "sparse fused apply replays the affected-area writes in order"
        );
    }

    #[test]
    fn fused_batch_defers_across_updates_and_stays_exact() {
        let g = fixture();
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut fused = IncSr::new(g, s0, cfg).with_mode(ApplyMode::Fused);
        fused.apply_batch(&mixed_ops()).unwrap();
        assert_eq!(fused.pending_rank(), 0);
        let s_batch = batch_simrank(fused.graph(), &tight_cfg());
        assert!(fused.scores().max_abs_diff(&s_batch) < 1e-8);
    }

    #[test]
    fn lazy_mode_stays_exact_after_flush() {
        let g = fixture();
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut lazy = IncSr::new(g, s0.clone(), cfg).with_mode(ApplyMode::Lazy);
        for op in mixed_ops() {
            lazy.apply(op).unwrap();
        }
        // Updates chained through effective rows; base never touched.
        assert_eq!(lazy.base_scores().max_abs_diff(&s0), 0.0);
        assert!(lazy.pending_rank() > 0);
        // View reads match the true updated scores.
        let s_batch = batch_simrank(lazy.graph(), &tight_cfg());
        let n = lazy.graph().node_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let got = lazy.view().pair(a, b);
                let want = s_batch.get(a as usize, b as usize);
                assert!((got - want).abs() < 1e-8, "pair ({a},{b}): {got} vs {want}");
            }
        }
        lazy.flush();
        assert!(lazy.scores().max_abs_diff(&s_batch) < 1e-8);
    }

    #[test]
    fn lazy_window_skips_died_out_terms() {
        // On a path graph the pruned supports of an update die out once
        // they pass the tail (no out-neighbours left to scatter to). The
        // empty tail terms are no-op pairs: they must not be buffered, so
        // the pending rank reflects only the terms that carry mass —
        // otherwise `ApplyPolicy::Auto` counts them against its rank cap
        // and fires spurious `rank_cap_flushes`.
        let n = 30;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        let cfg = SimRankConfig::new(0.6, 20).unwrap();
        let mut engine =
            IncSr::from_graph(DiGraph::from_edges(n, &edges), cfg).with_mode(ApplyMode::Lazy);
        let stats = engine.insert_edge(0, (n - 1) as u32).unwrap();
        assert!(
            stats.pending_rank < cfg.iterations + 1,
            "died-out terms inflated the pending rank to {} (K+1 = {})",
            stats.pending_rank,
            cfg.iterations + 1
        );
        // The skipped terms were genuinely zero: the window is still exact.
        engine.flush();
        let truth = batch_simrank(engine.graph(), &cfg);
        assert!(engine.scores().max_abs_diff(&truth) < 1e-9);
    }

    #[test]
    fn compress_pending_keeps_lazy_reads_exact() {
        let g = fixture();
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut lazy = IncSr::new(g, s0, cfg).with_mode(ApplyMode::Lazy);
        for op in mixed_ops() {
            lazy.apply(op).unwrap();
        }
        let before = lazy.pending_rank();
        let after = lazy.compress_pending(1e-13);
        assert_eq!(after, lazy.pending_rank());
        // 5 updates × (K+1) terms on a 7-node support: the numerical rank
        // is bounded by the support size, far below the raw pair count.
        assert!(
            after <= 7 && after < before,
            "compression did not shrink the window: {before} -> {after}"
        );
        assert_eq!(lazy.mode(), ApplyMode::Lazy, "the window stays open");
        let truth = batch_simrank(lazy.graph(), &tight_cfg());
        let n = lazy.graph().node_count() as u32;
        for a in 0..n {
            for b in 0..n {
                let got = lazy.view().pair(a, b);
                let want = truth.get(a as usize, b as usize);
                assert!((got - want).abs() < 1e-8, "pair ({a},{b}): {got} vs {want}");
            }
        }
        lazy.flush();
        assert!(lazy.scores().max_abs_diff(&truth) < 1e-8);
    }

    #[test]
    fn delete_to_empty_in_neighbourhood() {
        // Deleting the last in-edge of a node (d_j = 1 branch) and then
        // reinserting must round-trip.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut engine = IncSr::new(g, s0.clone(), cfg);
        engine.remove_edge(1, 2).unwrap();
        engine.insert_edge(1, 2).unwrap();
        assert!(engine.scores().max_abs_diff(&s0) < 1e-9);
    }
}

//! Engine-state persistence: checkpoint a maintained `(graph, scores,
//! config)` triple to a writer and restore it later.
//!
//! The paper's workflow precomputes SimRank once and then maintains it
//! forever; in a deployment that "forever" spans process restarts. The
//! format is a small versioned little-endian binary layout (magic
//! `INCSIM01`), written with `std::io` only.

use crate::{ConfigError, SimRankConfig, SimRankMaintainer};
use incsim_graph::DiGraph;
use incsim_linalg::DenseMatrix;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"INCSIM01";

/// Errors from checkpoint encoding/decoding.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input does not start with the expected magic/version.
    BadMagic,
    /// The payload is structurally inconsistent (sizes, counts).
    Corrupt(&'static str),
    /// The stored configuration is invalid.
    BadConfig(ConfigError),
    /// The engine cannot be checkpointed in this format (the named
    /// engine holds no dense score matrix — see [`crate::MatrixAccess`]).
    Unsupported(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not an incsim snapshot (bad magic)"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::BadConfig(e) => write!(f, "snapshot holds invalid config: {e}"),
            SnapshotError::Unsupported(engine) => write!(
                f,
                "engine {engine} holds no score matrix; the INCSIM01 checkpoint \
                 format does not apply (rebuild it from the graph instead)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A decoded checkpoint: everything needed to reconstruct an engine.
pub struct Snapshot {
    /// The graph at checkpoint time.
    pub graph: DiGraph,
    /// The maintained score matrix.
    pub scores: DenseMatrix,
    /// The engine configuration.
    pub config: SimRankConfig,
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

/// Writes a checkpoint of `(graph, scores, config)`.
///
/// # Errors
/// Propagates writer errors.
pub fn save<W: Write>(
    graph: &DiGraph,
    scores: &DenseMatrix,
    config: &SimRankConfig,
    mut w: W,
) -> Result<(), SnapshotError> {
    let n = graph.node_count();
    if scores.rows() != n || scores.cols() != n {
        return Err(SnapshotError::Corrupt("scores shape mismatches graph"));
    }
    w.write_all(MAGIC)?;
    write_f64(&mut w, config.c)?;
    write_u64(&mut w, config.iterations as u64)?;
    write_f64(&mut w, config.zero_tol)?;
    write_u64(&mut w, n as u64)?;
    write_u64(&mut w, graph.edge_count() as u64)?;
    for (u, v) in graph.edges() {
        write_u64(&mut w, ((u as u64) << 32) | v as u64)?;
    }
    for value in scores.as_slice() {
        write_f64(&mut w, *value)?;
    }
    Ok(())
}

/// Reads a checkpoint previously written by [`save`].
pub fn load<R: Read>(mut r: R) -> Result<Snapshot, SnapshotError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let c = read_f64(&mut r)?;
    let iterations = read_u64(&mut r)? as usize;
    let zero_tol = read_f64(&mut r)?;
    let config = SimRankConfig::new(c, iterations)
        .map_err(SnapshotError::BadConfig)?
        .with_zero_tol(zero_tol);

    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    if n > u32::MAX as usize {
        return Err(SnapshotError::Corrupt("node count exceeds u32"));
    }
    let mut graph = DiGraph::new(n);
    for _ in 0..m {
        let packed = read_u64(&mut r)?;
        let (u, v) = ((packed >> 32) as u32, (packed & 0xFFFF_FFFF) as u32);
        graph
            .insert_edge(u, v)
            .map_err(|_| SnapshotError::Corrupt("invalid or duplicate edge"))?;
    }
    let mut data = vec![0.0f64; n * n];
    for value in data.iter_mut() {
        *value = read_f64(&mut r)?;
    }
    Ok(Snapshot {
        graph,
        scores: DenseMatrix::from_vec(n, n, data),
        config,
    })
}

/// Checkpoints any matrix-backed engine behind the [`SimRankMaintainer`]
/// trait: materialises pending deferred ΔS first (this ends a lazy
/// window), then writes the `(graph, scores, config)` triple — a
/// checkpoint can never capture a stale base matrix.
///
/// # Errors
/// Returns [`SnapshotError::Unsupported`] for engines without the
/// [`crate::MatrixAccess`] capability (e.g. the matrix-free probe
/// engine): their whole state *is* the graph, so the dense checkpoint
/// format has nothing to store.
pub fn save_engine<W: Write>(
    engine: &mut dyn SimRankMaintainer,
    w: W,
) -> Result<(), SnapshotError> {
    let name = engine.name();
    let (graph, config) = (engine.graph().clone(), *engine.config());
    let matrix = engine
        .matrix_mut()
        .ok_or(SnapshotError::Unsupported(name))?;
    matrix.flush();
    save(&graph, matrix.base_scores(), &config, w)
}

impl crate::IncSr {
    /// Checkpoints this engine's state (pending ΔS materialised first).
    pub fn save_snapshot<W: Write>(&mut self, w: W) -> Result<(), SnapshotError> {
        save_engine(self, w)
    }

    /// Restores an engine from a checkpoint.
    pub fn load_snapshot<R: Read>(r: R) -> Result<Self, SnapshotError> {
        let snap = load(r)?;
        Ok(crate::IncSr::new(snap.graph, snap.scores, snap.config))
    }
}

impl crate::IncUSr {
    /// Checkpoints this engine's state (pending ΔS materialised first).
    pub fn save_snapshot<W: Write>(&mut self, w: W) -> Result<(), SnapshotError> {
        save_engine(self, w)
    }

    /// Restores an engine from a checkpoint.
    pub fn load_snapshot<R: Read>(r: R) -> Result<Self, SnapshotError> {
        let snap = load(r)?;
        Ok(crate::IncUSr::new(snap.graph, snap.scores, snap.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{batch_simrank, GraphSink, IncSr, MatrixAccess, ProbeSim};

    fn fixture() -> (DiGraph, DenseMatrix, SimRankConfig) {
        let g = DiGraph::from_edges(5, &[(0, 2), (1, 2), (2, 3), (3, 4)]);
        let cfg = SimRankConfig::new(0.6, 12).unwrap().with_zero_tol(1e-15);
        let s = batch_simrank(&g, &cfg);
        (g, s, cfg)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (g, s, cfg) = fixture();
        let mut buf = Vec::new();
        save(&g, &s, &cfg, &mut buf).unwrap();
        let snap = load(buf.as_slice()).unwrap();
        assert_eq!(snap.graph, g);
        assert!(snap.scores.max_abs_diff(&s) == 0.0);
        assert_eq!(snap.config, cfg);
    }

    #[test]
    fn engine_survives_restart() {
        let (g, s, cfg) = fixture();
        let mut engine = IncSr::new(g, s, cfg);
        engine.insert_edge(0, 4).unwrap();
        let mut buf = Vec::new();
        engine.save_snapshot(&mut buf).unwrap();

        let mut restored = IncSr::load_snapshot(buf.as_slice()).unwrap();
        assert_eq!(restored.graph(), engine.graph());
        // The restored engine keeps evolving correctly.
        restored.insert_edge(4, 2).unwrap();
        engine.insert_edge(4, 2).unwrap();
        assert!(restored.scores().max_abs_diff(engine.scores()) < 1e-15);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            load(&b"NOTASNAP........"[..]),
            Err(SnapshotError::BadMagic)
        ));
        let truncated = MAGIC.to_vec();
        assert!(matches!(
            load(truncated.as_slice()),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn matrix_free_engine_is_unsupported_not_a_panic() {
        let (g, _, cfg) = fixture();
        let mut engine = ProbeSim::new(g, cfg);
        let mut buf = Vec::new();
        match save_engine(&mut engine, &mut buf) {
            Err(SnapshotError::Unsupported(name)) => assert_eq!(name, "Probe"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
        assert!(buf.is_empty(), "nothing written");
    }

    #[test]
    fn rejects_shape_mismatch_on_save() {
        let (g, _, cfg) = fixture();
        let wrong = DenseMatrix::zeros(3, 3);
        assert!(matches!(
            save(&g, &wrong, &cfg, Vec::new()),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_corrupt_edge_list() {
        let (g, s, cfg) = fixture();
        let mut buf = Vec::new();
        save(&g, &s, &cfg, &mut buf).unwrap();
        // Duplicate the first edge record in place.
        let edge_off = 8 + 8 + 8 + 8 + 8 + 8; // magic + c + iters + tol + n + m
        let first: Vec<u8> = buf[edge_off..edge_off + 8].to_vec();
        buf[edge_off + 8..edge_off + 16].copy_from_slice(&first);
        assert!(matches!(
            load(buf.as_slice()),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}

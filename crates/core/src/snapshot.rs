//! Engine-state persistence: checkpoint a maintained `(graph, scores,
//! config)` triple to a writer and restore it later.
//!
//! The paper's workflow precomputes SimRank once and then maintains it
//! forever; in a deployment that "forever" spans process restarts. The
//! format is a small versioned little-endian binary layout (magic
//! `INCSIM01`), written with `std::io` only.

use crate::{ConfigError, SimRankConfig, SimRankMaintainer};
use incsim_codec::{write_f64, write_u64, CountingReader, StreamError};
use incsim_graph::DiGraph;
use incsim_linalg::DenseMatrix;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"INCSIM01";

/// Errors from checkpoint encoding/decoding.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input does not start with the expected magic/version.
    BadMagic,
    /// The payload is structurally inconsistent (sizes, counts, or a
    /// truncation mid-structure). `offset` is the byte position in the
    /// snapshot stream at which decoding gave up — forensics for torn
    /// WAL checkpoints and hand-corrupted state files alike.
    Corrupt {
        /// Byte offset at which the inconsistency was detected.
        offset: u64,
        /// What was wrong there.
        detail: &'static str,
    },
    /// The stored configuration is invalid.
    BadConfig(ConfigError),
    /// The engine cannot be checkpointed in this format (the named
    /// engine holds no dense score matrix — see [`crate::MatrixAccess`]).
    Unsupported(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not an incsim snapshot (bad magic)"),
            SnapshotError::Corrupt { offset, detail } => {
                write!(f, "corrupt snapshot at byte {offset}: {detail}")
            }
            SnapshotError::BadConfig(e) => write!(f, "snapshot holds invalid config: {e}"),
            SnapshotError::Unsupported(engine) => write!(
                f,
                "engine {engine} holds no score matrix; the INCSIM01 checkpoint \
                 format does not apply (rebuild it from the graph instead)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// A decoded checkpoint: everything needed to reconstruct an engine.
pub struct Snapshot {
    /// The graph at checkpoint time.
    pub graph: DiGraph,
    /// The maintained score matrix.
    pub scores: DenseMatrix,
    /// The engine configuration.
    pub config: SimRankConfig,
}

/// Maps a codec stream failure onto the snapshot error vocabulary.
/// Truncation is reported as `Corrupt`, not `Io`: a short file is a
/// structural defect of the snapshot, not a transport failure of the
/// reader (the [`CountingReader`] pins the byte offset for us).
fn stream_err(e: StreamError) -> SnapshotError {
    match e {
        StreamError::Io(e) => SnapshotError::Io(e),
        StreamError::Truncated { offset } => SnapshotError::Corrupt {
            offset,
            detail: "unexpected end of snapshot",
        },
    }
}

/// A [`SnapshotError::Corrupt`] at the reader's current offset.
fn corrupt<R>(r: &CountingReader<R>, detail: &'static str) -> SnapshotError
where
    R: Read,
{
    SnapshotError::Corrupt {
        offset: r.offset(),
        detail,
    }
}

/// Writes a checkpoint of `(graph, scores, config)`.
///
/// # Errors
/// Propagates writer errors.
pub fn save<W: Write>(
    graph: &DiGraph,
    scores: &DenseMatrix,
    config: &SimRankConfig,
    mut w: W,
) -> Result<(), SnapshotError> {
    let n = graph.node_count();
    if scores.rows() != n || scores.cols() != n {
        return Err(SnapshotError::Corrupt {
            offset: 0,
            detail: "scores shape mismatches graph",
        });
    }
    w.write_all(MAGIC)?;
    write_f64(&mut w, config.c)?;
    write_u64(&mut w, config.iterations as u64)?;
    write_f64(&mut w, config.zero_tol)?;
    write_u64(&mut w, n as u64)?;
    write_u64(&mut w, graph.edge_count() as u64)?;
    for (u, v) in graph.edges() {
        write_u64(&mut w, ((u as u64) << 32) | v as u64)?;
    }
    for value in scores.as_slice() {
        write_f64(&mut w, *value)?;
    }
    Ok(())
}

/// Reads a checkpoint previously written by [`save`].
///
/// Hardened against hostile or damaged input: every structural
/// inconsistency — truncation mid-field, impossible counts, an edge
/// list that disagrees with itself — comes back as a typed
/// [`SnapshotError`] carrying the byte offset; no input can panic the
/// decoder or make it allocate more than the scores it actually reads.
pub fn load<R: Read>(r: R) -> Result<Snapshot, SnapshotError> {
    let mut r = CountingReader::new(r);
    let mut magic = [0u8; 8];
    r.fill(&mut magic).map_err(stream_err)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let c = r.read_f64().map_err(stream_err)?;
    let iterations = r.read_u64().map_err(stream_err)? as usize;
    let zero_tol = r.read_f64().map_err(stream_err)?;
    let config = SimRankConfig::new(c, iterations)
        .map_err(SnapshotError::BadConfig)?
        .with_zero_tol(zero_tol);

    let n64 = r.read_u64().map_err(stream_err)?;
    if n64 > u32::MAX as u64 {
        return Err(corrupt(&r, "node count exceeds u32"));
    }
    let n = n64 as usize;
    let cells = n
        .checked_mul(n)
        .ok_or_else(|| corrupt(&r, "node count overflows score matrix size"))?;
    let m64 = r.read_u64().map_err(stream_err)?;
    // A simple digraph without self-loops holds at most n·(n-1) edges;
    // bounding by n² is enough to reject declared counts that could
    // only come from corruption (and would drive a huge read loop).
    if m64 > cells as u64 {
        return Err(corrupt(&r, "edge count exceeds n^2"));
    }
    let m = m64 as usize;
    let mut graph = DiGraph::new(n);
    for _ in 0..m {
        let packed = r.read_u64().map_err(stream_err)?;
        let (u, v) = ((packed >> 32) as u32, (packed & 0xFFFF_FFFF) as u32);
        graph
            .insert_edge(u, v)
            .map_err(|_| SnapshotError::Corrupt {
                // The offending record is the 8 bytes just consumed.
                offset: r.offset() - 8,
                detail: "invalid or duplicate edge",
            })?;
    }
    // The score block is the one length-driven allocation; grow it in
    // bounded chunks as bytes actually arrive so a corrupt header can
    // never commit us to an n²-sized buffer the stream doesn't back.
    const CHUNK: usize = 64 * 1024;
    let mut data: Vec<f64> = Vec::new();
    while data.len() < cells {
        let want = CHUNK.min(cells - data.len());
        data.try_reserve(want).map_err(|_| SnapshotError::Corrupt {
            offset: r.offset(),
            detail: "score matrix too large to allocate",
        })?;
        for _ in 0..want {
            data.push(r.read_f64().map_err(stream_err)?);
        }
    }
    Ok(Snapshot {
        graph,
        scores: DenseMatrix::from_vec(n, n, data),
        config,
    })
}

/// Checkpoints any matrix-backed engine behind the [`SimRankMaintainer`]
/// trait: materialises pending deferred ΔS first (this ends a lazy
/// window), then writes the `(graph, scores, config)` triple — a
/// checkpoint can never capture a stale base matrix.
///
/// # Errors
/// Returns [`SnapshotError::Unsupported`] for engines without the
/// [`crate::MatrixAccess`] capability (e.g. the matrix-free probe
/// engine): their whole state *is* the graph, so the dense checkpoint
/// format has nothing to store.
pub fn save_engine<W: Write>(
    engine: &mut dyn SimRankMaintainer,
    w: W,
) -> Result<(), SnapshotError> {
    let name = engine.name();
    let (graph, config) = (engine.graph().clone(), *engine.config());
    let matrix = engine
        .matrix_mut()
        .ok_or(SnapshotError::Unsupported(name))?;
    matrix.flush();
    save(&graph, matrix.base_scores(), &config, w)
}

impl crate::IncSr {
    /// Checkpoints this engine's state (pending ΔS materialised first).
    pub fn save_snapshot<W: Write>(&mut self, w: W) -> Result<(), SnapshotError> {
        save_engine(self, w)
    }

    /// Restores an engine from a checkpoint.
    pub fn load_snapshot<R: Read>(r: R) -> Result<Self, SnapshotError> {
        let snap = load(r)?;
        Ok(crate::IncSr::new(snap.graph, snap.scores, snap.config))
    }
}

impl crate::IncUSr {
    /// Checkpoints this engine's state (pending ΔS materialised first).
    pub fn save_snapshot<W: Write>(&mut self, w: W) -> Result<(), SnapshotError> {
        save_engine(self, w)
    }

    /// Restores an engine from a checkpoint.
    pub fn load_snapshot<R: Read>(r: R) -> Result<Self, SnapshotError> {
        let snap = load(r)?;
        Ok(crate::IncUSr::new(snap.graph, snap.scores, snap.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{batch_simrank, GraphSink, IncSr, MatrixAccess, ProbeSim};

    fn fixture() -> (DiGraph, DenseMatrix, SimRankConfig) {
        let g = DiGraph::from_edges(5, &[(0, 2), (1, 2), (2, 3), (3, 4)]);
        let cfg = SimRankConfig::new(0.6, 12).unwrap().with_zero_tol(1e-15);
        let s = batch_simrank(&g, &cfg);
        (g, s, cfg)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (g, s, cfg) = fixture();
        let mut buf = Vec::new();
        save(&g, &s, &cfg, &mut buf).unwrap();
        let snap = load(buf.as_slice()).unwrap();
        assert_eq!(snap.graph, g);
        assert!(snap.scores.max_abs_diff(&s) == 0.0);
        assert_eq!(snap.config, cfg);
    }

    #[test]
    fn engine_survives_restart() {
        let (g, s, cfg) = fixture();
        let mut engine = IncSr::new(g, s, cfg);
        engine.insert_edge(0, 4).unwrap();
        let mut buf = Vec::new();
        engine.save_snapshot(&mut buf).unwrap();

        let mut restored = IncSr::load_snapshot(buf.as_slice()).unwrap();
        assert_eq!(restored.graph(), engine.graph());
        // The restored engine keeps evolving correctly.
        restored.insert_edge(4, 2).unwrap();
        engine.insert_edge(4, 2).unwrap();
        assert!(restored.scores().max_abs_diff(engine.scores()) < 1e-15);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            load(&b"NOTASNAP........"[..]),
            Err(SnapshotError::BadMagic)
        ));
        let truncated = MAGIC.to_vec();
        assert!(matches!(
            load(truncated.as_slice()),
            Err(SnapshotError::Corrupt { offset: 8, .. })
        ));
    }

    #[test]
    fn every_truncated_prefix_fails_cleanly() {
        let (g, s, cfg) = fixture();
        let mut buf = Vec::new();
        save(&g, &s, &cfg, &mut buf).unwrap();
        // Loading any strict prefix must return a typed error — never a
        // panic, never a bogus success — and short magic is the only
        // case allowed to look like a non-snapshot rather than a torn one.
        for cut in 0..buf.len() {
            match load(&buf[..cut]) {
                Err(SnapshotError::Corrupt { offset, .. }) => {
                    assert!(offset <= cut as u64, "offset {offset} past cut {cut}");
                }
                Err(SnapshotError::BadMagic) => assert!(cut < 8, "BadMagic at cut {cut}"),
                Err(other) => panic!("prefix {cut}: unexpected error {other:?}"),
                Ok(_) => panic!("prefix {cut}: truncated snapshot loaded successfully"),
            }
        }
        // Sanity: the full buffer still loads.
        assert!(load(buf.as_slice()).is_ok());
    }

    #[test]
    fn rejects_impossible_counts_without_allocating() {
        let (g, s, cfg) = fixture();
        let mut buf = Vec::new();
        save(&g, &s, &cfg, &mut buf).unwrap();
        // Corrupt the edge-count field to a number the stream cannot back.
        let m_off = 8 + 8 + 8 + 8 + 8; // magic + c + iters + tol + n
        buf[m_off..m_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            load(buf.as_slice()),
            Err(SnapshotError::Corrupt { .. })
        ));
        // And a node count past u32 is rejected before any allocation.
        let n_off = 8 + 8 + 8 + 8;
        buf[n_off..n_off + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(
            load(buf.as_slice()),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn matrix_free_engine_is_unsupported_not_a_panic() {
        let (g, _, cfg) = fixture();
        let mut engine = ProbeSim::new(g, cfg);
        let mut buf = Vec::new();
        match save_engine(&mut engine, &mut buf) {
            Err(SnapshotError::Unsupported(name)) => assert_eq!(name, "Probe"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
        assert!(buf.is_empty(), "nothing written");
    }

    #[test]
    fn rejects_shape_mismatch_on_save() {
        let (g, _, cfg) = fixture();
        let wrong = DenseMatrix::zeros(3, 3);
        assert!(matches!(
            save(&g, &wrong, &cfg, Vec::new()),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_corrupt_edge_list() {
        let (g, s, cfg) = fixture();
        let mut buf = Vec::new();
        save(&g, &s, &cfg, &mut buf).unwrap();
        // Duplicate the first edge record in place.
        let edge_off = 8 + 8 + 8 + 8 + 8 + 8; // magic + c + iters + tol + n + m
        let first: Vec<u8> = buf[edge_off..edge_off + 8].to_vec();
        buf[edge_off + 8..edge_off + 16].copy_from_slice(&first);
        assert!(matches!(
            load(buf.as_slice()),
            Err(SnapshotError::Corrupt {
                offset: 56, // the duplicated second edge record
                ..
            })
        ));
    }
}

//! Incrementally-maintained top-k similar pairs.
//!
//! Top-k similarity search is the query the paper's Exp-4 (and the cited
//! top-k SimRank literature) cares about. A full rescan after every link
//! update costs `O(n²)`; but an exact incremental engine knows *exactly*
//! which score rows an update touched (the affected-area supports of
//! Theorem 4), so the ranking can be repaired by rescanning only those
//! rows — `O(|touched|·n)` per update, `≪ n²` when updates are local.

use crate::query::ScoreView;
use incsim_linalg::{DenseMatrix, LowRankDelta};

/// A `(pair, score)` ranking entry; `a < b` always.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopPair {
    /// First node of the pair.
    pub a: u32,
    /// Second node of the pair.
    pub b: u32,
    /// Current SimRank score.
    pub score: f64,
}

/// An incrementally-maintained top-k list over the off-diagonal pairs of a
/// symmetric score matrix.
#[derive(Debug, Clone)]
pub struct TopKTracker {
    k: usize,
    entries: Vec<TopPair>, // sorted: score desc, then (a, b) asc
}

fn pair_cmp(x: &TopPair, y: &TopPair) -> std::cmp::Ordering {
    y.score
        .partial_cmp(&x.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
}

impl TopKTracker {
    /// Builds the initial ranking with one full `O(n²)` scan.
    pub fn new(scores: &DenseMatrix, k: usize) -> Self {
        let mut tracker = TopKTracker {
            k,
            entries: Vec::new(),
        };
        tracker.rebuild(scores);
        tracker
    }

    /// The current ranking (score-descending).
    pub fn entries(&self) -> &[TopPair] {
        &self.entries
    }

    /// The ranking capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Full rescan (used at construction and as a fallback).
    pub fn rebuild(&mut self, scores: &DenseMatrix) {
        self.rebuild_rows(&Rows::Direct(scores));
    }

    /// Full rescan of a [`ScoreView`] without materialising any pending
    /// ΔS — works in every apply mode.
    pub fn rebuild_view(&mut self, view: &ScoreView<'_>) {
        self.rebuild_rows(&Rows::from_view(view));
    }

    /// Shared rescan core over a [`Rows`] source.
    fn rebuild_rows(&mut self, rows: &Rows<'_>) {
        let n = rows.n();
        let mut all: Vec<TopPair> = Vec::new();
        let mut buf = rows.row_buf();
        for a in 0..n {
            let row = rows.row(a, &mut buf);
            for (b, &score) in row.iter().enumerate().skip(a + 1) {
                push_candidate(
                    &mut all,
                    self.k,
                    TopPair {
                        a: a as u32,
                        b: b as u32,
                        score,
                    },
                );
            }
        }
        all.sort_by(pair_cmp);
        all.truncate(self.k);
        self.entries = all;
    }

    /// Repairs the ranking after an update that touched only the score
    /// rows/columns in `touched` (e.g. the union of
    /// [`crate::IncSr::last_affected`] supports). Pairs not involving a
    /// touched node are guaranteed unchanged, so only `O(|touched|·n)`
    /// entries are rescanned.
    ///
    /// When the repaired k-th score does not strictly exceed the previous
    /// k-th score, a previously-evicted untouched pair could now deserve a
    /// slot that local repair cannot discover; the tracker then falls back
    /// to a full rebuild. Score-increasing updates (the common case on
    /// insertion streams) stay on the cheap path.
    pub fn update(&mut self, scores: &DenseMatrix, touched: &[u32]) {
        self.update_rows(touched, &Rows::Direct(scores));
    }

    /// [`Self::update`] against a [`ScoreView`]: touched rows are
    /// reconstructed from the base matrix plus any pending
    /// [`LowRankDelta`], each in `O(n + r·n)` — the `n²` apply never
    /// happens. Rows where Δ has support are rescanned automatically
    /// (computed exactly from the factor buffer), so `touched` only needs
    /// rows changed for reasons *outside* Δ — passing `&[]` is always
    /// sound.
    ///
    /// **Cost caveat:** the total is `O(|touched ∪ supp(Δ)|·r·n)`. That
    /// stays local for Inc-SR's sparse factors and for Inc-uSR factors
    /// with narrow true support (DAG-ish scores), but when the factors are
    /// genuinely dense (`supp(Δ) ≈ n`, e.g. Inc-uSR on a cyclic graph)
    /// this is `O(r·n²)` — more than the one `n²` flush it defers. In that
    /// regime prefer `engine.flush()` followed by [`Self::update`], and
    /// keep `update_view` for windows that are mostly queries.
    pub fn update_view(&mut self, view: &ScoreView<'_>, touched: &[u32]) {
        let mut widened = view
            .delta()
            .map_or_else(Vec::new, incsim_linalg::LowRankDelta::support_rows);
        widened.extend_from_slice(touched);
        widened.sort_unstable();
        widened.dedup();
        self.update_rows(&widened, &Rows::from_view(view));
    }

    /// Shared repair core over a [`Rows`] source.
    fn update_rows(&mut self, touched: &[u32], rows: &Rows<'_>) {
        let n = rows.n();
        if touched.is_empty() {
            return;
        }
        // Every pair outside the current list scored ≤ old_kth when the
        // list was last complete, and untouched pairs keep their scores.
        let old_kth = if self.entries.len() == self.k {
            self.entries.last().map_or(f64::NEG_INFINITY, |p| p.score)
        } else {
            f64::NEG_INFINITY
        };
        let mut is_touched = vec![false; n];
        for &t in touched {
            is_touched[t as usize] = true;
        }
        // Keep entries with both endpoints untouched; their scores are
        // provably unchanged. Everything else is re-discovered below.
        let mut kept: Vec<TopPair> = self
            .entries
            .iter()
            .copied()
            .filter(|p| !is_touched[p.a as usize] && !is_touched[p.b as usize])
            .collect();
        // Rescan the touched rows against all columns.
        let mut buf = rows.row_buf();
        for &t in touched {
            let a = t as usize;
            let row = rows.row(a, &mut buf);
            for (b, &score) in row.iter().enumerate() {
                if b == a {
                    continue;
                }
                // Skip double-visiting pairs where both ends are touched.
                if is_touched[b] && b < a {
                    continue;
                }
                let (x, y) = if a < b { (a, b) } else { (b, a) };
                push_candidate(
                    &mut kept,
                    self.k,
                    TopPair {
                        a: x as u32,
                        b: y as u32,
                        score,
                    },
                );
            }
        }
        kept.sort_by(pair_cmp);
        kept.dedup_by_key(|p| (p.a, p.b));
        kept.truncate(self.k);
        let new_kth = if kept.len() == self.k {
            kept.last().map_or(f64::NEG_INFINITY, |p| p.score)
        } else {
            f64::NEG_INFINITY
        };
        if new_kth > old_kth {
            self.entries = kept;
        } else {
            // An evicted untouched pair might now qualify: rescan fully.
            self.rebuild_rows(rows);
        }
    }
}

/// A score-row source: the materialised matrix, or a deferred
/// `S_base + Δ` state read through the factor buffer. The direct variant
/// borrows rows in place — no per-row copy on the common path.
enum Rows<'a> {
    Direct(&'a DenseMatrix),
    Deferred(&'a DenseMatrix, &'a LowRankDelta),
}

impl<'a> Rows<'a> {
    fn from_view(view: &ScoreView<'a>) -> Self {
        match view.delta() {
            None => Rows::Direct(view.base()),
            Some(d) => Rows::Deferred(view.base(), d),
        }
    }

    fn n(&self) -> usize {
        match self {
            Rows::Direct(m) | Rows::Deferred(m, _) => m.rows(),
        }
    }

    /// Scratch for [`Self::row`]: only the deferred variant reconstructs
    /// rows, so the direct path allocates nothing.
    fn row_buf(&self) -> Vec<f64> {
        match self {
            Rows::Direct(_) => Vec::new(),
            Rows::Deferred(..) => vec![0.0; self.n()],
        }
    }

    /// Row `a`, reconstructed into `buf` only when deferred.
    fn row<'b>(&'b self, a: usize, buf: &'b mut [f64]) -> &'b [f64] {
        match *self {
            Rows::Direct(m) => m.row(a),
            Rows::Deferred(base, delta) => {
                buf.copy_from_slice(base.row(a));
                delta.add_row_delta(a, buf);
                buf
            }
        }
    }
}

/// Appends a candidate, keeping the buffer loosely bounded (exact pruning
/// happens at the sort/truncate step; the 4k bound just caps memory).
fn push_candidate(buf: &mut Vec<TopPair>, k: usize, p: TopPair) {
    buf.push(p);
    if buf.len() > 4 * k.max(4) {
        buf.sort_by(pair_cmp);
        buf.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{batch_simrank, GraphSink, IncSr, MatrixAccess, SimRankConfig};
    use incsim_graph::DiGraph;

    fn full_scan(scores: &DenseMatrix, k: usize) -> Vec<(u32, u32)> {
        TopKTracker::new(scores, k)
            .entries()
            .iter()
            .map(|p| (p.a, p.b))
            .collect()
    }

    #[test]
    fn initial_ranking_matches_manual() {
        let mut s = DenseMatrix::identity(4);
        s.set(0, 2, 0.8);
        s.set(2, 0, 0.8);
        s.set(1, 3, 0.5);
        s.set(3, 1, 0.5);
        let t = TopKTracker::new(&s, 2);
        assert_eq!(
            t.entries()[0],
            TopPair {
                a: 0,
                b: 2,
                score: 0.8
            }
        );
        assert_eq!(
            t.entries()[1],
            TopPair {
                a: 1,
                b: 3,
                score: 0.5
            }
        );
    }

    #[test]
    fn incremental_update_tracks_engine_exactly() {
        let g = DiGraph::from_edges(
            12,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (8, 9),
                (9, 10),
            ],
        );
        let cfg = SimRankConfig::new(0.6, 20).unwrap();
        let s0 = batch_simrank(&g, &cfg);
        let mut engine = IncSr::new(g, s0, cfg);
        let mut tracker = TopKTracker::new(engine.scores(), 5);

        for (i, j, insert) in [
            (0u32, 5u32, true),
            (8, 2, true),
            (2, 3, false),
            (10, 4, true),
        ] {
            if insert {
                engine.insert_edge(i, j).unwrap();
            } else {
                engine.remove_edge(i, j).unwrap();
            }
            let (a_sup, b_sup) = engine.last_affected();
            let mut touched: Vec<u32> = a_sup.iter().chain(b_sup.iter()).copied().collect();
            touched.sort_unstable();
            touched.dedup();
            tracker.update(engine.scores(), &touched);

            let expect = full_scan(engine.scores(), 5);
            let got: Vec<(u32, u32)> = tracker.entries().iter().map(|p| (p.a, p.b)).collect();
            assert_eq!(got, expect, "tracker diverged after update ({i},{j})");
        }
    }

    #[test]
    fn lazy_update_tracks_deferred_engine_without_apply() {
        use crate::maintainer::ApplyMode;

        let g = DiGraph::from_edges(
            10,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (7, 8),
                (8, 9),
            ],
        );
        let cfg = SimRankConfig::new(0.6, 12).unwrap();
        let s0 = batch_simrank(&g, &cfg);
        let mut engine = IncSr::new(g, s0.clone(), cfg).with_mode(ApplyMode::Lazy);
        let mut tracker = TopKTracker::new(engine.scores(), 4);

        for (i, j) in [(0u32, 4u32), (7, 2), (9, 5)] {
            engine.insert_edge(i, j).unwrap();
            let (a_sup, b_sup) = engine.last_affected();
            let mut touched: Vec<u32> = a_sup.iter().chain(b_sup.iter()).copied().collect();
            touched.sort_unstable();
            touched.dedup();
            tracker.update_view(&engine.view(), &touched);

            // Reference: a full view rescan of the same deferred state.
            let mut fresh = TopKTracker::new(engine.base_scores(), 4);
            fresh.rebuild_view(&engine.view());
            let got: Vec<(u32, u32)> = tracker.entries().iter().map(|p| (p.a, p.b)).collect();
            let expect: Vec<(u32, u32)> = fresh.entries().iter().map(|p| (p.a, p.b)).collect();
            assert_eq!(got, expect);
        }
        // The whole window ran without a single n² apply…
        assert!(engine.pending_rank() > 0);
        assert_eq!(
            engine.base_scores().max_abs_diff(&s0),
            0.0,
            "base untouched"
        );
        // …and materialising now agrees with what the tracker saw.
        engine.flush();
        let expect = full_scan(engine.scores(), 4);
        let got: Vec<(u32, u32)> = tracker.entries().iter().map(|p| (p.a, p.b)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn lazy_update_covers_dense_delta_support_itself() {
        use crate::maintainer::ApplyMode;
        use crate::IncUSr;

        // Inc-uSR buffers *dense* factor pairs, so no caller-supplied
        // `touched` set can cover Δ's support a priori; update_lazy must
        // discover it from the factor buffer (an empty hint is sound).
        let g = DiGraph::from_edges(
            9,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (6, 7),
                (7, 8),
            ],
        );
        let cfg = SimRankConfig::new(0.6, 12).unwrap();
        let s0 = batch_simrank(&g, &cfg);
        let mut engine = IncUSr::new(g, s0, cfg).with_mode(ApplyMode::Lazy);
        let mut tracker = TopKTracker::new(engine.scores(), 4);

        for (i, j) in [(6u32, 2u32), (8, 4), (0, 7)] {
            engine.insert_edge(i, j).unwrap();
            tracker.update_view(&engine.view(), &[]);

            let mut fresh = TopKTracker::new(engine.base_scores(), 4);
            fresh.rebuild_view(&engine.view());
            assert_eq!(tracker.entries(), fresh.entries());
        }
        assert!(engine.pending_rank() > 0);
        engine.flush();
        let expect = full_scan(engine.scores(), 4);
        let got: Vec<(u32, u32)> = tracker.entries().iter().map(|p| (p.a, p.b)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn untouched_update_is_noop() {
        let s = DenseMatrix::identity(5);
        let mut t = TopKTracker::new(&s, 3);
        let before = t.entries().to_vec();
        t.update(&s, &[]);
        assert_eq!(t.entries(), &before[..]);
    }

    #[test]
    fn k_larger_than_pairs() {
        let s = DenseMatrix::identity(3);
        let t = TopKTracker::new(&s, 50);
        assert_eq!(t.entries().len(), 3); // C(3,2)
    }

    #[test]
    fn scores_dropping_out_of_topk_are_evicted() {
        let mut s = DenseMatrix::zeros(4, 4);
        s.set(0, 1, 0.9);
        s.set(1, 0, 0.9);
        s.set(2, 3, 0.8);
        s.set(3, 2, 0.8);
        let mut t = TopKTracker::new(&s, 1);
        assert_eq!((t.entries()[0].a, t.entries()[0].b), (0, 1));
        // The (0,1) pair collapses; (2,3) must take over.
        s.set(0, 1, 0.1);
        s.set(1, 0, 0.1);
        t.update(&s, &[0, 1]);
        assert_eq!((t.entries()[0].a, t.entries()[0].b), (2, 3));
    }
}

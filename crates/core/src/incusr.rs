//! **Inc-uSR** (Algorithm 1): exact incremental SimRank without pruning.
//!
//! For every unit update the SimRank change is `ΔS = M + Mᵀ` with
//! `M = Σ_{k=0}^{K} C^{k+1}·Q̃ᵏ·e_j·γᵀ·(Q̃ᵀ)ᵏ` (Theorem 3, Eq. 26). The
//! engine iterates two auxiliary vectors
//!
//! ```text
//! ξ₀ = C·e_j            ξ_{k+1} = C·(Q·ξ_k + u·(vᵀ·ξ_k))   // = C·Q̃·ξ_k
//! η₀ = γ                η_{k+1} = Q·η_k + u·(vᵀ·η_k)        // = Q̃·η_k
//! M₀ = C·e_j·γᵀ         M_{k+1} = ξ_{k+1}·η_{k+1}ᵀ + M_k
//! ```
//!
//! so one update costs `K` sparse matvecs plus `K` rank-one accumulations —
//! `O(K·n²)` total, never a matrix–matrix product, and `Q̃` is never
//! materialised (`Q̃·x` is evaluated as `Q·x + u·(vᵀ·x)`, the trick noted
//! after Theorem 3).

use crate::grouped::GroupedStats;
use crate::maintainer::{
    validate_update, ApplyMode, DeferredApply, GraphSink, MatrixAccess, SimRankMaintainer,
    UpdateError, UpdateStats,
};
use crate::rankone::{gamma_vector_from_cols, rank_one_decomposition, RankOneUpdate, UpdateKind};
use crate::SimRankConfig;
use incsim_graph::transition::backward_transition;
use incsim_graph::{DiGraph, UpdateOp};
use incsim_linalg::{CsrMatrix, DenseMatrix, LowRankDelta};

/// The Algorithm 1 engine. See the [module docs](self).
///
/// ```
/// use incsim_core::{GraphSink, IncUSr, SimRankConfig};
/// use incsim_graph::DiGraph;
///
/// let g = DiGraph::from_edges(4, &[(2, 0), (2, 1), (0, 3)]);
/// let mut engine = IncUSr::from_graph(g, SimRankConfig::paper_default());
/// engine.insert_edge(1, 3).unwrap();
/// engine.remove_edge(1, 3).unwrap(); // exact round-trip
/// assert_eq!(engine.graph().edge_count(), 3);
/// ```
pub struct IncUSr {
    graph: DiGraph,
    q: CsrMatrix,
    scores: DenseMatrix,
    cfg: SimRankConfig,
    // Apply mode + pending ΔS factors (empty while eager).
    deferred: DeferredApply,
    // Reused workspace (amortises allocations across updates).
    xi: Vec<f64>,
    eta: Vec<f64>,
    scratch: Vec<f64>,
    // Effective-column scratch: S[:,i] / S[:,j] plus any pending Δ.
    col_i: Vec<f64>,
    col_j: Vec<f64>,
}

impl IncUSr {
    /// Creates an engine from a graph and its (pre-computed) score matrix.
    ///
    /// `scores` is typically [`crate::batch_simrank`] output on `graph`; the
    /// paper's workflow is "precompute SimRank on the old entire graph once
    /// via a batch algorithm first, then incrementally find ΔS".
    ///
    /// # Panics
    /// Panics if `scores` is not `n × n` for the graph's `n`.
    pub fn new(graph: DiGraph, scores: DenseMatrix, cfg: SimRankConfig) -> Self {
        let n = graph.node_count();
        assert_eq!(scores.rows(), n, "scores must be n x n");
        assert_eq!(scores.cols(), n, "scores must be n x n");
        let q = backward_transition(&graph);
        IncUSr {
            graph,
            q,
            scores,
            cfg,
            deferred: DeferredApply::new(n),
            xi: vec![0.0; n],
            eta: vec![0.0; n],
            scratch: vec![0.0; n],
            col_i: vec![0.0; n],
            col_j: vec![0.0; n],
        }
    }

    /// Convenience constructor that batch-computes the initial scores.
    pub fn from_graph(graph: DiGraph, cfg: SimRankConfig) -> Self {
        let scores = crate::batch::batch_simrank(&graph, &cfg);
        IncUSr::new(graph, scores, cfg)
    }

    /// Consumes the engine, returning `(graph, scores)` with any pending
    /// ΔS materialised.
    pub fn into_parts(mut self) -> (DiGraph, DenseMatrix) {
        self.flush();
        (self.graph, self.scores)
    }

    /// Folds the current `ξ·ηᵀ + η·ξᵀ` term into the scores (eager) or the
    /// factor buffer (fused/lazy). Per-row accumulation order is identical
    /// either way, so the regimes agree bit-for-bit.
    fn emit_term(&mut self) {
        match self.deferred.mode {
            ApplyMode::Eager => self.scores.add_sym_outer(1.0, &self.xi, &self.eta),
            ApplyMode::Fused | ApplyMode::Lazy => self
                .deferred
                .delta
                .push_dense(self.xi.clone(), self.eta.clone()),
        }
    }

    /// Copies the effective column `S[:,v]` (base matrix plus pending Δ)
    /// into `out`.
    fn effective_col(scores: &DenseMatrix, delta: &LowRankDelta, v: usize, out: &mut [f64]) {
        scores.col_into(v, out);
        if !delta.is_empty() {
            delta.add_row_delta(v, out); // Δ is symmetric: row v == column v
        }
    }

    /// Runs lines 13–18 of Algorithm 1 for a rank-one update
    /// `ΔQ = u_coeff·e_j·vᵀ`, folding every term of `ΔS = M_K + M_Kᵀ`
    /// into the score matrix (eager) or the pending factor buffer
    /// (fused/lazy). Expects γ in `self.eta`.
    fn run_sylvester_iteration(&mut self, j: usize, u_coeff: f64, v: &[(u32, f64)]) {
        let c = self.cfg.c;
        let v_dot = |x: &[f64]| -> f64 { v.iter().map(|&(idx, val)| val * x[idx as usize]).sum() };
        incsim_linalg::vecops::zero(&mut self.xi);
        self.xi[j] = c;
        self.emit_term();

        for _ in 0..self.cfg.iterations {
            // ξ ← C·(Q·ξ + u·(vᵀξ))
            let theta_xi = v_dot(&self.xi);
            self.q.matvec(&self.xi, &mut self.scratch);
            self.scratch[j] += u_coeff * theta_xi;
            incsim_linalg::vecops::scale(c, &mut self.scratch);
            std::mem::swap(&mut self.xi, &mut self.scratch);

            // η ← Q·η + u·(vᵀη)
            let theta_eta = v_dot(&self.eta);
            self.q.matvec(&self.eta, &mut self.scratch);
            self.scratch[j] += u_coeff * theta_eta;
            std::mem::swap(&mut self.eta, &mut self.scratch);

            // S ← S + ξ·ηᵀ + η·ξᵀ   (line 18, applied term by term)
            self.emit_term();
        }
    }

    /// Applies a batch update with **row grouping** (see
    /// [`crate::grouped`]): all edge changes sharing a destination are
    /// folded into one rank-one Sylvester update, so a batch of `b` edges
    /// over `r` distinct destinations costs `r` iterations instead of `b`.
    ///
    /// Exactness is unchanged — Theorem 2 holds for any rank-one `ΔQ`.
    pub fn apply_grouped(&mut self, ops: &[UpdateOp]) -> Result<GroupedStats, UpdateError> {
        let rows = crate::grouped::group_by_row(&self.graph, ops)?;
        for change in &rows {
            // The grouped γ (Theorem 2 route) reads arbitrary rows of S,
            // so any pending ΔS must be materialised first.
            self.flush();
            let rro = crate::grouped::row_rank_one(&self.graph, &self.scores, change, |x, y| {
                self.q.matvec(x, y);
            })?;
            self.eta.copy_from_slice(&rro.gamma);
            self.run_sylvester_iteration(change.j as usize, 1.0, &rro.v);
            for op in &change.ops {
                op.apply(&mut self.graph)?;
            }
            self.q = backward_transition(&self.graph);
        }
        if self.deferred.mode == ApplyMode::Fused {
            self.flush();
        }
        Ok(GroupedStats {
            unit_ops: ops.len(),
            row_updates: rows.len(),
        })
    }

    fn apply_update(
        &mut self,
        i: u32,
        j: u32,
        kind: UpdateKind,
    ) -> Result<UpdateStats, UpdateError> {
        validate_update(&self.graph, i, j, kind)?;
        let n = self.graph.node_count();
        let c = self.cfg.c;
        let k_iters = self.cfg.iterations;

        // Lines 1–12: rank-one decomposition and the γ vector, computed
        // from the *effective* columns S[:,i], S[:,j] (base + pending Δ)
        // so deferred updates chain without materialising in between.
        let upd: RankOneUpdate = rank_one_decomposition(&self.graph, i, j, kind);
        Self::effective_col(
            &self.scores,
            &self.deferred.delta,
            i as usize,
            &mut self.col_i,
        );
        Self::effective_col(
            &self.scores,
            &self.deferred.delta,
            j as usize,
            &mut self.col_j,
        );
        let gv = gamma_vector_from_cols(&self.q, &self.col_i, &self.col_j, &upd, c);
        let gamma_nnz = gv
            .gamma
            .iter()
            .filter(|v| v.abs() > self.cfg.zero_tol)
            .count();

        // Line 13: ξ₀ = C·e_j, η₀ = γ. The term M₀ = C·e_j·γᵀ of
        // ΔS = M_K + M_Kᵀ is folded into S immediately — `M` itself is
        // never materialised, so the intermediate state stays O(n) vectors
        // (this is what keeps Inc-uSR's memory far below Inc-SVD's in the
        // paper's Fig. 3).
        self.eta.copy_from_slice(&gv.gamma);
        self.run_sylvester_iteration(j as usize, upd.u_coeff, &upd.v);

        // Commit the link update and refresh Q (row j is the only change,
        // but a CSR rebuild is O(n+m), dominated by the O(K·n²) iteration).
        match kind {
            UpdateKind::Insert => self.graph.insert_edge(i, j)?,
            UpdateKind::Delete => self.graph.remove_edge(i, j)?,
        }
        self.q = backward_transition(&self.graph);

        // Intermediate state: w, γ, ξ, η, scratch — five n-vectors — plus
        // the pending factor buffer (≈ 2·(K+1)·n floats per deferred
        // update) in the fused/lazy modes.
        let peak = (self.xi.capacity() + self.eta.capacity() + self.scratch.capacity() + 2 * n)
            * std::mem::size_of::<f64>()
            + self.deferred.delta.heap_bytes();
        Ok(UpdateStats {
            kind,
            edge: (i, j),
            iterations: k_iters,
            affected_pairs: n * n,
            aff_avg: (n * n) as f64,
            pruned_fraction: 0.0,
            peak_intermediate_bytes: peak,
            gamma_density: gamma_nnz as f64 / n.max(1) as f64,
            applied_mode: self.deferred.mode,
            pending_rank: self.deferred.delta.pending_pairs(),
        })
    }
}

impl MatrixAccess for IncUSr {
    fn base_scores(&self) -> &DenseMatrix {
        &self.scores
    }

    fn pending_delta(&self) -> Option<&LowRankDelta> {
        Some(&self.deferred.delta)
    }

    fn mode(&self) -> ApplyMode {
        self.deferred.mode
    }

    fn set_mode(&mut self, mode: ApplyMode) {
        self.deferred.set_mode(mode, &mut self.scores);
    }

    /// One fused parallel sweep over the whole matrix.
    fn flush(&mut self) -> usize {
        self.deferred.flush_into(&mut self.scores)
    }

    fn compress_pending(&mut self, tol: f64) -> usize {
        self.deferred.compress(tol);
        self.deferred.delta.pending_pairs()
    }
}

impl SimRankMaintainer for IncUSr {
    fn matrix(&self) -> Option<&dyn MatrixAccess> {
        Some(self)
    }

    fn matrix_mut(&mut self) -> Option<&mut dyn MatrixAccess> {
        Some(self)
    }
}

impl GraphSink for IncUSr {
    fn name(&self) -> &'static str {
        "Inc-uSR"
    }

    fn graph(&self) -> &DiGraph {
        &self.graph
    }

    fn config(&self) -> &SimRankConfig {
        &self.cfg
    }

    fn insert_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError> {
        let mut stats = self.apply_update(i, j, UpdateKind::Insert)?;
        if self.deferred.mode == ApplyMode::Fused {
            self.flush();
        }
        stats.pending_rank = self.deferred.delta.pending_pairs();
        Ok(stats)
    }

    fn remove_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError> {
        let mut stats = self.apply_update(i, j, UpdateKind::Delete)?;
        if self.deferred.mode == ApplyMode::Fused {
            self.flush();
        }
        stats.pending_rank = self.deferred.delta.pending_pairs();
        Ok(stats)
    }

    /// In [`ApplyMode::Fused`] the whole batch shares **one** fused apply:
    /// the `b` updates chain through effective columns and the buffered
    /// `b·(K+1)` terms are folded in with a single sweep at the end,
    /// instead of `b` sweeps (or `b·(K+1)` eager ones).
    fn apply_batch(&mut self, ops: &[UpdateOp]) -> Result<Vec<UpdateStats>, UpdateError> {
        crate::maintainer::drive_batch(
            self,
            ops,
            self.deferred.mode == ApplyMode::Fused,
            Self::apply_update,
            |e| {
                e.flush();
            },
        )
    }

    fn add_node(&mut self) -> u32 {
        let v = self.graph.add_node();
        let n = self.graph.node_count();
        // Flush any pending Δ (still at the old dimension) into the old
        // matrix and re-dimension the buffer before the re-shape.
        self.deferred.resize(n, &mut self.scores);
        let mut grown = DenseMatrix::zeros(n, n);
        for a in 0..n - 1 {
            let src = self.scores.row(a);
            grown.row_mut(a)[..n - 1].copy_from_slice(src);
        }
        grown.set(n - 1, n - 1, 1.0 - self.cfg.c);
        self.scores = grown;
        self.q = backward_transition(&self.graph);
        self.xi = vec![0.0; n];
        self.eta = vec![0.0; n];
        self.scratch = vec![0.0; n];
        self.col_i = vec![0.0; n];
        self.col_j = vec![0.0; n];
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::batch_simrank;

    /// High-K config so truncation error is negligible in exactness checks.
    fn tight_cfg() -> SimRankConfig {
        SimRankConfig::new(0.6, 90).unwrap()
    }

    fn fixture() -> DiGraph {
        DiGraph::from_edges(
            7,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 2),
                (1, 4),
                (6, 3),
            ],
        )
    }

    /// Incremental result must match a from-scratch batch on the new graph.
    fn assert_incremental_matches_batch(g: &DiGraph, i: u32, j: u32, kind: UpdateKind) {
        let cfg = tight_cfg();
        let s_old = batch_simrank(g, &cfg);
        let mut engine = IncUSr::new(g.clone(), s_old, cfg);
        match kind {
            UpdateKind::Insert => engine.insert_edge(i, j).unwrap(),
            UpdateKind::Delete => engine.remove_edge(i, j).unwrap(),
        };
        let s_batch = batch_simrank(engine.graph(), &cfg);
        let diff = engine.scores().max_abs_diff(&s_batch);
        assert!(
            diff < 1e-9,
            "Inc-uSR diverged from batch for ({i},{j}) {kind:?}: diff={diff}"
        );
    }

    #[test]
    fn insert_matches_batch_dj_zero() {
        assert_incremental_matches_batch(&fixture(), 3, 0, UpdateKind::Insert);
    }

    #[test]
    fn insert_matches_batch_dj_positive() {
        assert_incremental_matches_batch(&fixture(), 4, 2, UpdateKind::Insert);
    }

    #[test]
    fn delete_matches_batch_dj_one() {
        assert_incremental_matches_batch(&fixture(), 6, 3, UpdateKind::Delete);
    }

    #[test]
    fn delete_matches_batch_dj_many() {
        assert_incremental_matches_batch(&fixture(), 1, 2, UpdateKind::Delete);
    }

    #[test]
    fn sequence_of_updates_stays_exact() {
        let g = fixture();
        let cfg = tight_cfg();
        let mut engine = IncUSr::from_graph(g, cfg);
        engine.insert_edge(0, 5).unwrap();
        engine.insert_edge(6, 2).unwrap();
        engine.remove_edge(2, 3).unwrap();
        engine.insert_edge(3, 6).unwrap();
        let s_batch = batch_simrank(engine.graph(), &cfg);
        assert!(engine.scores().max_abs_diff(&s_batch) < 1e-8);
    }

    #[test]
    fn insert_then_delete_roundtrips() {
        let g = fixture();
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut engine = IncUSr::new(g, s0.clone(), cfg);
        engine.insert_edge(0, 6).unwrap();
        engine.remove_edge(0, 6).unwrap();
        assert!(engine.scores().max_abs_diff(&s0) < 1e-9);
    }

    #[test]
    fn invalid_updates_leave_state_untouched() {
        let g = fixture();
        let cfg = SimRankConfig::paper_default();
        let s0 = batch_simrank(&g, &cfg);
        let mut engine = IncUSr::new(g.clone(), s0.clone(), cfg);
        assert!(engine.insert_edge(0, 2).is_err()); // exists
        assert!(engine.remove_edge(0, 3).is_err()); // missing
        assert!(engine.insert_edge(0, 99).is_err()); // out of range
        assert_eq!(engine.graph(), &g);
        assert!(engine.scores().max_abs_diff(&s0) == 0.0);
    }

    #[test]
    fn truncation_error_respects_bound() {
        // With small K the deviation from a converged batch must stay within
        // ~2·C^{K+1}/(1−C) (M and Mᵀ each truncated by C^{K+1} per entry).
        let g = fixture();
        let k = 6;
        let cfg = SimRankConfig::new(0.6, k).unwrap();
        let tight = tight_cfg();
        let s_old = batch_simrank(&g, &tight); // converged old scores
        let mut engine = IncUSr::new(g.clone(), s_old, cfg);
        engine.insert_edge(4, 2).unwrap();
        let s_new = batch_simrank(engine.graph(), &tight);
        let diff = engine.scores().max_abs_diff(&s_new);
        let bound = 2.0 * cfg.truncation_bound() / (1.0 - cfg.c);
        assert!(diff <= bound, "diff={diff} bound={bound}");
    }

    #[test]
    fn stats_report_full_affected_area() {
        let g = fixture();
        let cfg = SimRankConfig::paper_default();
        let mut engine = IncUSr::from_graph(g, cfg);
        let stats = engine.insert_edge(0, 4).unwrap();
        assert_eq!(stats.affected_pairs, 49);
        assert_eq!(stats.pruned_fraction, 0.0);
        assert_eq!(stats.iterations, cfg.iterations);
        // O(n) vectors only — M is never materialised.
        assert!(stats.peak_intermediate_bytes >= 5 * 7 * 8);
        assert!(stats.peak_intermediate_bytes < 49 * 8 * 4);
    }

    #[test]
    fn add_node_extension_grows_scores() {
        let g = fixture();
        let cfg = tight_cfg();
        let mut engine = IncUSr::from_graph(g, cfg);
        let v = engine.add_node();
        assert_eq!(v, 7);
        assert_eq!(engine.scores().rows(), 8);
        assert!((engine.scores().get(7, 7) - 0.4).abs() < 1e-12);
        // Now connect the new node and stay exact.
        engine.insert_edge(7, 2).unwrap();
        let s_batch = batch_simrank(engine.graph(), &cfg);
        assert!(engine.scores().max_abs_diff(&s_batch) < 1e-9);
    }

    #[test]
    fn self_loop_updates_are_exact() {
        assert_incremental_matches_batch(&fixture(), 2, 2, UpdateKind::Insert);
    }

    fn mixed_ops() -> Vec<incsim_graph::UpdateOp> {
        use incsim_graph::UpdateOp::*;
        vec![
            Insert(0, 5),
            Insert(6, 2),
            Delete(2, 3),
            Insert(3, 6),
            Delete(6, 2),
        ]
    }

    #[test]
    fn fused_mode_matches_eager_bit_for_bit() {
        let g = fixture();
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut eager = IncUSr::new(g.clone(), s0.clone(), cfg);
        let mut fused = IncUSr::new(g, s0, cfg).with_mode(ApplyMode::Fused);
        for op in mixed_ops() {
            eager.apply(op).unwrap();
            fused.apply(op).unwrap();
        }
        assert_eq!(fused.pending_rank(), 0, "fused flushes per call");
        assert_eq!(
            eager.scores().max_abs_diff(fused.scores()),
            0.0,
            "per-row accumulation order is identical in both regimes"
        );
    }

    #[test]
    fn fused_batch_defers_across_updates_and_stays_exact() {
        let g = fixture();
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut fused = IncUSr::new(g, s0, cfg).with_mode(ApplyMode::Fused);
        // One apply_batch call: the b updates chain through effective
        // columns and share a single fused sweep at the end.
        fused.apply_batch(&mixed_ops()).unwrap();
        assert_eq!(fused.pending_rank(), 0);
        let s_batch = batch_simrank(fused.graph(), &tight_cfg());
        assert!(fused.scores().max_abs_diff(&s_batch) < 1e-8);
    }

    #[test]
    fn lazy_mode_answers_queries_without_any_apply() {
        let g = fixture();
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut eager = IncUSr::new(g.clone(), s0.clone(), cfg);
        let mut lazy = IncUSr::new(g, s0.clone(), cfg).with_mode(ApplyMode::Lazy);
        for op in mixed_ops() {
            eager.apply(op).unwrap();
            lazy.apply(op).unwrap();
        }
        // Nothing was materialised: the base matrix is byte-identical…
        assert_eq!(lazy.base_scores().max_abs_diff(&s0), 0.0);
        assert!(lazy.pending_rank() > 0);
        // …yet view reads see the fully-updated scores.
        let n = lazy.graph().node_count() as u32;
        let eager_final = eager.scores().clone();
        for a in 0..n {
            for b in 0..n {
                let got = lazy.view().pair(a, b);
                let want = eager_final.get(a as usize, b as usize);
                assert!(
                    (got - want).abs() < 1e-12,
                    "pair ({a},{b}): {got} vs {want}"
                );
            }
        }
        // Flushing materialises the same state.
        lazy.flush();
        assert!(lazy.scores().max_abs_diff(&eager_final) < 1e-12);
    }

    #[test]
    fn trait_scores_materialises_mid_lazy_window() {
        // Regression (PR 3): `SimRankMaintainer::scores()` used to return
        // the stale base matrix mid-lazy-window; it must now materialise
        // pending ΔS so trait readers can never observe stale entries.
        let g = fixture();
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut lazy = IncUSr::new(g, s0.clone(), cfg).with_mode(ApplyMode::Lazy);
        for op in mixed_ops() {
            lazy.apply(op).unwrap();
        }
        assert!(lazy.pending_rank() > 0, "window is open");
        let engine: &mut dyn SimRankMaintainer = &mut lazy;
        let truth = batch_simrank(engine.graph(), &tight_cfg());
        let matrix = engine.matrix_mut().expect("IncUSr is matrix-backed");
        let via_trait = matrix.scores().clone();
        assert!(
            via_trait.max_abs_diff(&truth) < 1e-8,
            "trait scores() returned stale entries: {}",
            via_trait.max_abs_diff(&truth)
        );
        assert_eq!(matrix.pending_rank(), 0, "scores() drained the window");

        // …and `into_parts` gives the same materialised matrix.
        let mut again = IncUSr::new(fixture(), s0, cfg).with_mode(ApplyMode::Lazy);
        for op in mixed_ops() {
            again.apply(op).unwrap();
        }
        let (_, scores) = again.into_parts();
        assert!(scores.max_abs_diff(&truth) < 1e-8);
    }

    #[test]
    fn mode_switch_and_grouped_flush_pending() {
        let g = fixture();
        let cfg = tight_cfg();
        let s0 = batch_simrank(&g, &cfg);
        let mut engine = IncUSr::new(g, s0, cfg).with_mode(ApplyMode::Lazy);
        engine.insert_edge(0, 5).unwrap();
        assert!(engine.pending_rank() > 0);
        // Grouped updates materialise before reading arbitrary S rows.
        engine
            .apply_grouped(&[incsim_graph::UpdateOp::Insert(6, 2)])
            .unwrap();
        engine.set_mode(ApplyMode::Eager);
        assert_eq!(engine.pending_rank(), 0);
        assert_eq!(engine.mode(), ApplyMode::Eager);
        let s_batch = batch_simrank(engine.graph(), &tight_cfg());
        assert!(engine.scores().max_abs_diff(&s_batch) < 1e-8);
    }
}

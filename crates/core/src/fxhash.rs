//! A minimal Fx-style hasher for integer keys.
//!
//! The pruned Inc-SR iteration accumulates the sparse update matrix `M` in a
//! hash map keyed by packed `(row, col)` pairs. The standard library's
//! SipHash is collision-resistant but needlessly slow for trusted integer
//! keys; this is the classic multiply-rotate mix used by rustc's `FxHasher`
//! (kept in-tree to stay within the offline dependency allow-list).

use std::hash::{BuildHasherDefault, Hasher};

/// The `BuildHasher` to plug into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast non-cryptographic hasher for integer-like keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly_in_practice() {
        let mut seen = std::collections::HashSet::new();
        for key in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(key);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "unexpected collisions on small ints");
    }

    #[test]
    fn works_as_hashmap_hasher() {
        let mut m: FxHashMap<u64, f64> = FxHashMap::default();
        m.insert(42, 1.5);
        m.insert(7, -2.0);
        assert_eq!(m[&42], 1.5);
        assert_eq!(m[&7], -2.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_writes_are_deterministic() {
        let mut a = FxHasher::default();
        a.write(b"hello world");
        let mut b = FxHasher::default();
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }
}

//! Deterministic drains for hash containers.
//!
//! `FxHashMap` iteration order is stable for one process but arbitrary
//! across key sets: two logically-identical states built through
//! different insertion histories can yield different orders. Anywhere a
//! drain feeds a float accumulation, a serialized byte stream, or a
//! user-visible ranking, that arbitrariness becomes nondeterminism. The
//! helpers here are the sanctioned way out — drain into a key-sorted
//! `Vec` first, then fold. The `incsim-lint` rule
//! `nondeterministic-iteration` rejects raw hash-map iteration in the
//! order-sensitive files (`probe.rs`, `batch.rs`, `grouped.rs`,
//! `wal.rs`); routing the drain through this module satisfies it by
//! construction.
//!
//! Cost: one `O(n)` copy plus an `O(n log n)` sort per drain. The
//! call sites are per-query scratch maps (probe frontiers, walk
//! tallies), where the sort is dwarfed by the graph expansions that
//! built the map.

use std::collections::HashMap;
use std::hash::BuildHasher;

/// Drains `map` by value into a `Vec` sorted by ascending key.
///
/// Borrowing flavour for maps that are reused after the drain (cleared
/// scratch buffers, running tallies). Keys and values are copied.
pub fn sorted_kv<K, V, S>(map: &HashMap<K, V, S>) -> Vec<(K, V)>
where
    K: Ord + Copy,
    V: Copy,
    S: BuildHasher,
{
    let mut out: Vec<(K, V)> = map.iter().map(|(&k, &v)| (k, v)).collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

/// Consumes `map` into a `Vec` sorted by ascending key.
///
/// Use when the map is finished — avoids the copy `sorted_kv` pays.
pub fn into_sorted_kv<K, V, S>(map: HashMap<K, V, S>) -> Vec<(K, V)>
where
    K: Ord,
    S: BuildHasher,
{
    let mut out: Vec<(K, V)> = map.into_iter().collect();
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::FxHashMap;

    #[test]
    fn sorted_kv_orders_by_key_and_keeps_map() {
        let mut m: FxHashMap<u32, f64> = FxHashMap::default();
        for k in [7u32, 1, 4, 9, 2] {
            m.insert(k, f64::from(k) * 0.5);
        }
        let kv = sorted_kv(&m);
        assert_eq!(
            kv.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![1, 2, 4, 7, 9]
        );
        assert_eq!(kv[2], (4, 2.0));
        assert_eq!(m.len(), 5, "borrowing drain must not consume the map");
    }

    #[test]
    fn into_sorted_kv_orders_tuple_keys_lexicographically() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for key in [(2u32, 1u32), (1, 9), (2, 0), (1, 3)] {
            m.insert(key, key.0 + key.1);
        }
        let kv = into_sorted_kv(m);
        assert_eq!(
            kv.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![(1, 3), (1, 9), (2, 0), (2, 1)]
        );
    }

    #[test]
    fn drain_order_is_insertion_history_independent() {
        let mut fwd: FxHashMap<u32, u32> = FxHashMap::default();
        let mut rev: FxHashMap<u32, u32> = FxHashMap::default();
        let keys: Vec<u32> = (0..64).map(|i| i * 37 % 101).collect();
        for &k in &keys {
            fwd.insert(k, k);
        }
        for &k in keys.iter().rev() {
            rev.insert(k, k);
        }
        assert_eq!(sorted_kv(&fwd), sorted_kv(&rev));
    }
}

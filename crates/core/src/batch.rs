//! Batch SimRank in matrix form (the paper's precomputation step and its
//! `Batch` comparator).
//!
//! Iterates `S_{t+1} = C·Q·S_t·Qᵀ + (1−C)·Iₙ` from `S_0 = (1−C)·Iₙ`, which
//! yields the truncated series `S_K = (1−C)·Σ_{k=0}^{K} Cᵏ·Qᵏ·(Qᵀ)ᵏ`
//! (Eq. 34) — the weighted count of symmetric in-link paths.
//!
//! Complexity per iteration is `O(nnz(Q)·n) = O(d·n²)`, the same class as
//! Lizorkin's partial-sums method and Yu et al.'s fine-grained memoisation
//! \[6\] (the paper's `Batch`). Two memoisation levers are implemented:
//!
//! * rows of `Q·X` are computed once per *distinct in-neighbour set* —
//!   nodes sharing their in-neighbourhood (common in real graphs: papers
//!   citing the same references, videos with the same related list) share
//!   one partial sum, the essence of fine-grained memoisation;
//! * row-level parallelism over `std::thread::scope`.

use crate::fxhash::FxHashMap;
use crate::SimRankConfig;
use incsim_graph::transition::backward_transition;
use incsim_graph::DiGraph;
use incsim_linalg::{CsrMatrix, DenseMatrix};

/// Tuning knobs for [`batch_simrank_detailed`].
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker threads for the sparse–dense kernels (`0` = use all cores).
    pub threads: usize,
    /// Stop early once `‖S_{t+1} − S_t‖_max <= early_stop_tol` (`0.0`
    /// disables early stopping and always runs `K` iterations, matching the
    /// paper's fixed-`K` methodology).
    pub early_stop_tol: f64,
    /// Deduplicate identical in-neighbour sets and share their partial sums.
    pub share_partial_sums: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            threads: 0,
            early_stop_tol: 0.0,
            share_partial_sums: true,
        }
    }
}

/// Outcome of a batch computation.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The SimRank score matrix.
    pub scores: DenseMatrix,
    /// Iterations actually performed.
    pub iterations: usize,
    /// `‖S_K − S_{K−1}‖_max` of the final iteration (0 if `K = 0`).
    pub final_delta: f64,
    /// Number of rows whose partial sums were shared with an earlier
    /// identical in-neighbour set (0 when sharing is disabled).
    pub shared_rows: usize,
}

/// Computes matrix-form SimRank with default options.
///
/// ```
/// use incsim_core::{batch_simrank, SimRankConfig};
/// use incsim_graph::DiGraph;
///
/// // Nodes 0 and 1 are both referenced by node 2.
/// let g = DiGraph::from_edges(3, &[(2, 0), (2, 1)]);
/// let s = batch_simrank(&g, &SimRankConfig::new(0.6, 10).unwrap());
/// assert!((s.get(0, 1) - 0.6 * 0.4).abs() < 1e-12); // C·s(2,2) = C·(1−C)
/// ```
pub fn batch_simrank(g: &DiGraph, cfg: &SimRankConfig) -> DenseMatrix {
    batch_simrank_detailed(g, cfg, &BatchOptions::default()).scores
}

/// Computes matrix-form SimRank, exposing iteration diagnostics.
pub fn batch_simrank_detailed(
    g: &DiGraph,
    cfg: &SimRankConfig,
    opts: &BatchOptions,
) -> BatchResult {
    let n = g.node_count();
    let q = backward_transition(g);
    let threads = if opts.threads == 0 {
        incsim_linalg::lowrank::default_threads()
    } else {
        opts.threads
    };

    // Group nodes by identical in-neighbour sets for partial-sum sharing.
    // `row_rep[i]` = the representative row whose Q-row equals row i's.
    let row_rep: Vec<u32> = if opts.share_partial_sums {
        let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut rep = vec![0u32; n];
        for v in 0..n as u32 {
            let innb = g.in_neighbors(v);
            let mut key: u64 = 0xcbf2_9ce4_8422_2325;
            for &u in innb {
                key = (key ^ u as u64).wrapping_mul(0x1000_0000_01b3);
            }
            key ^= innb.len() as u64;
            let bucket = seen.entry(key).or_default();
            let found = bucket.iter().copied().find(|&r| g.in_neighbors(r) == innb);
            match found {
                Some(r) => rep[v as usize] = r,
                None => {
                    bucket.push(v);
                    rep[v as usize] = v;
                }
            }
        }
        rep
    } else {
        (0..n as u32).collect()
    };
    let shared_rows = row_rep
        .iter()
        .enumerate()
        .filter(|&(v, &r)| v as u32 != r)
        .count();

    let one_minus_c = 1.0 - cfg.c;
    let mut s = DenseMatrix::zeros(n, n);
    for i in 0..n {
        s.set(i, i, one_minus_c);
    }

    let mut iterations = 0;
    let mut final_delta = 0.0;
    for _ in 0..cfg.iterations {
        let next = batch_step(&q, &s, cfg.c, one_minus_c, &row_rep, threads);
        final_delta = next.max_abs_diff(&s);
        s = next;
        iterations += 1;
        if opts.early_stop_tol > 0.0 && final_delta <= opts.early_stop_tol {
            break;
        }
    }

    BatchResult {
        scores: s,
        iterations,
        final_delta,
        shared_rows,
    }
}

/// One iteration `S' = C·Q·S·Qᵀ + (1−C)·I`.
///
/// Computed as `T = (Q·S)ᵀ` then `S' = C·(Q·T) + (1−C)·I`, so both products
/// stream CSR rows against dense rows. Rows with a shared representative
/// are copied instead of recomputed.
fn batch_step(
    q: &CsrMatrix,
    s: &DenseMatrix,
    c: f64,
    one_minus_c: f64,
    row_rep: &[u32],
    threads: usize,
) -> DenseMatrix {
    let n = s.rows();
    let t = mul_dense_shared(q, s, row_rep, threads).transpose();
    let mut next = mul_dense_shared(q, &t, row_rep, threads);
    next.scale(c);
    for i in 0..n {
        next.add_to(i, i, one_minus_c);
    }
    next
}

/// `C = Q·B` with partial-sum sharing: row `i` is computed only when
/// `row_rep[i] == i`, otherwise copied from its representative.
fn mul_dense_shared(
    q: &CsrMatrix,
    b: &DenseMatrix,
    row_rep: &[u32],
    threads: usize,
) -> DenseMatrix {
    let n = q.rows();
    let cols = b.cols();
    let mut c = DenseMatrix::zeros(n, cols);
    let compute_row = |i: usize, out: &mut [f64]| {
        for (j, v) in q.row(i) {
            incsim_linalg::vecops::axpy(v, b.row(j as usize), out);
        }
    };
    if threads <= 1 || n < 128 {
        for i in 0..n {
            let rep = row_rep[i] as usize;
            if rep == i {
                let row_range = i * cols..(i + 1) * cols;
                compute_row(i, &mut c.as_mut_slice()[row_range]);
            }
        }
    } else {
        let chunk_rows = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (start_row, chunk) in c.par_row_chunks_mut(chunk_rows) {
                let nrows = chunk.len() / cols;
                scope.spawn(move || {
                    for local in 0..nrows {
                        let i = start_row + local;
                        if row_rep[i] as usize == i {
                            let out = &mut chunk[local * cols..(local + 1) * cols];
                            for (j, v) in q.row(i) {
                                incsim_linalg::vecops::axpy(v, b.row(j as usize), out);
                            }
                        }
                    }
                });
            }
        });
    }
    // Copy shared rows from their representatives (cheap O(n) pass).
    for i in 0..n {
        let rep = row_rep[i] as usize;
        if rep != i {
            let (lo, hi) = if rep < i { (rep, i) } else { (i, rep) };
            let (_head, tail) = c.as_mut_slice().split_at_mut(lo * cols);
            let (rep_chunk, rest) = tail.split_at_mut(cols);
            let other_off = (hi - lo - 1) * cols;
            let other = &mut rest[other_off..other_off + cols];
            if rep < i {
                other.copy_from_slice(rep_chunk);
            } else {
                rep_chunk.copy_from_slice(other);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use incsim_linalg::stein::stein_series;

    fn cfg(k: usize) -> SimRankConfig {
        SimRankConfig::new(0.6, k).unwrap()
    }

    /// Ground truth via the dense Stein series with A = √C·Q.
    fn ground_truth(g: &DiGraph, c: f64, k: usize) -> DenseMatrix {
        let q = backward_transition(g).to_dense();
        let mut a = q.clone();
        a.scale(c.sqrt());
        let mut id = DenseMatrix::identity(g.node_count());
        id.scale(1.0 - c);
        stein_series(&a, &a, &id, k)
    }

    #[test]
    fn matches_dense_series_on_small_graph() {
        let g = DiGraph::from_edges(5, &[(0, 2), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let s = batch_simrank(&g, &cfg(8));
        let truth = ground_truth(&g, 0.6, 8);
        assert!(
            s.max_abs_diff(&truth) < 1e-12,
            "diff={}",
            s.max_abs_diff(&truth)
        );
    }

    #[test]
    fn diagonal_of_indegree_zero_node_is_one_minus_c() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = batch_simrank(&g, &cfg(20));
        // Node 0 has no in-neighbors: matrix-form diagonal is 1−C.
        assert!((s.get(0, 0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn scores_are_symmetric_and_bounded() {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (1, 4),
                (0, 5),
            ],
        );
        let s = batch_simrank(&g, &cfg(15));
        assert!(s.is_symmetric(1e-12));
        for i in 0..6 {
            for j in 0..6 {
                let v = s.get(i, j);
                assert!((0.0..=1.0 + 1e-12).contains(&v), "S[{i},{j}]={v}");
            }
        }
    }

    #[test]
    fn partial_sum_sharing_is_lossless() {
        // Nodes 3 and 4 share the in-neighbour set {0,1,2}.
        let g = DiGraph::from_edges(5, &[(0, 3), (1, 3), (2, 3), (0, 4), (1, 4), (2, 4)]);
        let with = batch_simrank_detailed(&g, &cfg(10), &BatchOptions::default());
        let without = batch_simrank_detailed(
            &g,
            &cfg(10),
            &BatchOptions {
                share_partial_sums: false,
                ..Default::default()
            },
        );
        assert!(with.shared_rows >= 1, "expected sharing to trigger");
        assert_eq!(without.shared_rows, 0);
        assert!(with.scores.max_abs_diff(&without.scores) < 1e-14);
        // Nodes with identical in-neighbourhoods coincide up to the
        // diagonal (1−C)·I term of the matrix form:
        // s(3,4) = s(3,3) − (1−C).
        let expect = with.scores.get(3, 3) - (1.0 - 0.6);
        assert!((with.scores.get(3, 4) - expect).abs() < 1e-12);
    }

    #[test]
    fn single_and_multi_thread_agree() {
        let mut edges = Vec::new();
        let n = 150;
        for i in 0..n as u32 {
            edges.push((i, (i * 7 + 1) % n as u32));
            edges.push((i, (i * 3 + 11) % n as u32));
        }
        let g = DiGraph::from_edges(n, &edges);
        let seq = batch_simrank_detailed(
            &g,
            &cfg(5),
            &BatchOptions {
                threads: 1,
                ..Default::default()
            },
        );
        let par = batch_simrank_detailed(
            &g,
            &cfg(5),
            &BatchOptions {
                threads: 4,
                ..Default::default()
            },
        );
        assert!(seq.scores.max_abs_diff(&par.scores) < 1e-12);
    }

    #[test]
    fn early_stopping_reports_fewer_iterations() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = batch_simrank_detailed(
            &g,
            &cfg(50),
            &BatchOptions {
                early_stop_tol: 1e-10,
                ..Default::default()
            },
        );
        assert!(r.iterations < 50, "iterations={}", r.iterations);
        assert!(r.final_delta <= 1e-10);
    }

    #[test]
    fn empty_graph_is_scaled_identity() {
        let g = DiGraph::new(3);
        let s = batch_simrank(&g, &cfg(5));
        let mut expect = DenseMatrix::identity(3);
        expect.scale(0.4);
        assert!(s.max_abs_diff(&expect) < 1e-15);
    }

    #[test]
    fn iterates_monotonically_toward_fixed_point() {
        let g = DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 0)]);
        // The series form is a sum of nonnegative terms: S_K grows with K.
        let s5 = batch_simrank(&g, &cfg(5));
        let s10 = batch_simrank(&g, &cfg(10));
        for i in 0..4 {
            for j in 0..4 {
                assert!(s10.get(i, j) + 1e-14 >= s5.get(i, j));
            }
        }
    }
}

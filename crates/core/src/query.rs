//! Query helpers over maintained score matrices.
//!
//! The engines keep the full `n × n` matrix current (modulo a pending
//! deferred ΔS); these helpers answer the queries applications actually
//! ask (single pair, single source, top-k for a node) without re-deriving
//! anything. They are extensions beyond the paper, which stops at
//! producing `S̃`.
//!
//! [`ScoreView`] is the one read path for engine state: it composes
//! `S_base + Δ` over any pending [`LowRankDelta`] factor buffer, so the
//! same call returns identical answers in every
//! [`ApplyMode`](crate::maintainer::ApplyMode) — a pair query costs
//! `O(r)` factor dot-products and a per-node query one `O(r·n)` row
//! reconstruction inside a lazy window, and plain contiguous reads when
//! nothing is pending. Obtain one with
//! [`MatrixAccess::view`](crate::MatrixAccess::view).
//!
//! The free functions ([`pair_score`], [`single_source`],
//! [`top_k_for_node`], [`similar_above`]) serve raw matrices that are
//! known to be fully materialised (e.g. decoded snapshots).

use incsim_linalg::{DenseMatrix, LowRankDelta};

/// A neighbor of the query node ranked by similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedNode {
    /// The similar node.
    pub node: u32,
    /// Its SimRank score with the query node.
    pub score: f64,
}

/// Similarity of a single node pair (symmetric).
///
/// # Panics
/// Panics if either node is out of range.
pub fn pair_score(scores: &DenseMatrix, a: u32, b: u32) -> f64 {
    scores.get(a as usize, b as usize)
}

/// All similarities of one node (its row of `S`), excluding itself.
pub fn single_source(scores: &DenseMatrix, a: u32) -> Vec<RankedNode> {
    scores
        .row(a as usize)
        .iter()
        .copied()
        .enumerate()
        .filter(|&(v, _)| v != a as usize)
        .map(|(v, score)| RankedNode {
            node: v as u32,
            score,
        })
        .collect()
}

/// Sorts candidates score-descending (ties by node id) and keeps the top
/// `k` — the one ranking rule shared by every top-k helper here (and by
/// the matrix-free probe engine, so rankings agree across engines).
pub(crate) fn rank_and_truncate(mut all: Vec<RankedNode>, k: usize) -> Vec<RankedNode> {
    all.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.node.cmp(&y.node))
    });
    all.truncate(k);
    all
}

/// The `k` most similar nodes to `a`, descending (ties by node id).
pub fn top_k_for_node(scores: &DenseMatrix, a: u32, k: usize) -> Vec<RankedNode> {
    rank_and_truncate(single_source(scores, a), k)
}

/// Nodes whose similarity to `a` is at least `threshold`, unordered.
pub fn similar_above(scores: &DenseMatrix, a: u32, threshold: f64) -> Vec<RankedNode> {
    single_source(scores, a)
        .into_iter()
        .filter(|r| r.score >= threshold)
        .collect()
}

/// A transparent, mode-agnostic read view over engine state
/// `S_eff = S_base + Δ`, where Δ is the (possibly empty) pending
/// [`LowRankDelta`] factor buffer of a deferred apply regime.
///
/// Every query answers against `S_eff`, so callers never need to know —
/// or branch on — the engine's
/// [`ApplyMode`](crate::maintainer::ApplyMode). When Δ is empty the view
/// degenerates to plain matrix reads with no overhead beyond one branch.
///
/// ```
/// use incsim_core::query::ScoreView;
/// use incsim_linalg::{DenseMatrix, LowRankDelta};
///
/// let base = DenseMatrix::zeros(3, 3);
/// let mut delta = LowRankDelta::new(3);
/// delta.push_dense(vec![1.0, 0.0, 0.0], vec![0.0, 2.0, 0.0]);
/// let view = ScoreView::new(&base, Some(&delta));
/// assert_eq!(view.pair(0, 1), 2.0); // composes S_base + Δ, no apply
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ScoreView<'a> {
    base: &'a DenseMatrix,
    delta: Option<&'a LowRankDelta>,
}

impl<'a> ScoreView<'a> {
    /// Creates a view over `base` plus an optional pending Δ. An empty
    /// buffer is normalised to `None`, so the fast path stays branch-cheap.
    pub fn new(base: &'a DenseMatrix, delta: Option<&'a LowRankDelta>) -> Self {
        ScoreView {
            base,
            delta: delta.filter(|d| !d.is_empty()),
        }
    }

    /// Node count `n` of the viewed `n × n` state.
    pub fn n(&self) -> usize {
        self.base.rows()
    }

    /// The base matrix (excluding Δ). For consumers that need raw rows and
    /// handle the deferred part themselves (e.g. the top-k tracker).
    pub fn base(&self) -> &'a DenseMatrix {
        self.base
    }

    /// The pending Δ, if any survives [`Self::new`]'s empty-normalisation.
    pub fn delta(&self) -> Option<&'a LowRankDelta> {
        self.delta
    }

    /// `true` when the view composes a non-empty pending Δ (i.e. the base
    /// matrix alone would be stale).
    pub fn is_deferred(&self) -> bool {
        self.delta.is_some()
    }

    /// Similarity of one node pair: `O(1)` materialised, `O(r)` deferred.
    ///
    /// # Panics
    /// Panics if either node is out of range.
    pub fn pair(&self, a: u32, b: u32) -> f64 {
        let direct = self.base.get(a as usize, b as usize);
        match self.delta {
            None => direct,
            Some(d) => direct + d.pair_delta(a as usize, b as usize),
        }
    }

    /// Effective row `a` of `S_eff` (the single-source primitive): one
    /// contiguous row read plus `O(r·n)` factor AXPYs when deferred.
    pub fn row(&self, a: u32) -> Vec<f64> {
        let mut row = self.base.row(a as usize).to_vec();
        if let Some(d) = self.delta {
            d.add_row_delta(a as usize, &mut row);
        }
        row
    }

    /// All similarities of node `a`, excluding itself.
    pub fn single_source(&self, a: u32) -> Vec<RankedNode> {
        self.row(a)
            .into_iter()
            .enumerate()
            .filter(|&(v, _)| v != a as usize)
            .map(|(v, score)| RankedNode {
                node: v as u32,
                score,
            })
            .collect()
    }

    /// The `k` most similar nodes to `a`, descending (ties by node id).
    pub fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        rank_and_truncate(self.single_source(a), k)
    }

    /// Nodes whose similarity to `a` is at least `threshold`, unordered.
    pub fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.single_source(a)
            .into_iter()
            .filter(|r| r.score >= threshold)
            .collect()
    }

    /// The fully-composed `S_eff` as a fresh matrix (an `n²` copy; for
    /// exports and tests — queries never need this).
    pub fn materialise(&self) -> DenseMatrix {
        let mut s = self.base.clone();
        if let Some(d) = self.delta {
            d.clone().apply_to(&mut s);
        }
        s
    }

    /// An **owned** copy of this view — snapshot material for concurrent
    /// serving: the result is `Clone + Send + Sync` and stays frozen at
    /// the state observed now, no matter how the engine evolves after.
    /// Costs one `n²` base copy plus the pending factor columns; the
    /// deferred Δ is *not* materialised (reads through the snapshot keep
    /// composing `S_base + Δ`, exactly like the live view).
    pub fn to_snapshot(&self) -> ScoreSnapshot {
        ScoreSnapshot {
            base: self.base.clone(),
            delta: self.delta.cloned(),
        }
    }
}

/// An owned, immutable `S_eff = S_base + Δ` snapshot — the epoch material
/// of the concurrent serving layer (`incsim::serve`).
///
/// Where [`ScoreView`] borrows live engine state, `ScoreSnapshot` *owns*
/// a frozen copy: it is `Clone + Send + Sync`, can be parked behind an
/// `Arc` and read from any number of threads while the engine that
/// produced it keeps mutating. Query it through [`Self::view`], which
/// yields a regular [`ScoreView`] over the frozen state.
#[derive(Clone, Debug)]
pub struct ScoreSnapshot {
    base: DenseMatrix,
    delta: Option<LowRankDelta>,
}

impl ScoreSnapshot {
    /// Node count `n` of the frozen `n × n` state.
    pub fn n(&self) -> usize {
        self.base.rows()
    }

    /// A [`ScoreView`] over the frozen state — the same query surface as
    /// a live engine view, answering from the snapshot forever.
    pub fn view(&self) -> ScoreView<'_> {
        ScoreView::new(&self.base, self.delta.as_ref())
    }

    /// Similarity of one node pair (see [`ScoreView::pair`]).
    ///
    /// # Panics
    /// Panics if either node is out of range.
    pub fn pair(&self, a: u32, b: u32) -> f64 {
        self.view().pair(a, b)
    }

    /// All similarities of node `a`, excluding itself.
    pub fn single_source(&self, a: u32) -> Vec<RankedNode> {
        self.view().single_source(a)
    }

    /// The `k` most similar nodes to `a`, descending (ties by node id).
    pub fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        self.view().top_k(a, k)
    }

    /// Nodes whose similarity to `a` is at least `threshold`, unordered.
    pub fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.view().similar_above(a, threshold)
    }

    /// Heap bytes held by the frozen state (base matrix + factor buffer).
    pub fn heap_bytes(&self) -> usize {
        self.base.heap_bytes()
            + self
                .delta
                .as_ref()
                .map_or(0, incsim_linalg::LowRankDelta::heap_bytes)
    }
}

/// An owned, engine-agnostic frozen query surface — what the concurrent
/// serving layer (`incsim::serve`) parks behind an epoch.
///
/// Matrix engines implement it via [`ScoreSnapshot`] (a frozen
/// `S_base + Δ` copy); matrix-free engines (the probe engine) implement
/// it over a frozen graph copy plus their sampling parameters. Either
/// way the object is `Send + Sync`, answers forever at the state
/// observed when it was taken, and costs no `n²` memory unless the
/// engine itself holds `n²` state.
pub trait SnapshotQuery: std::fmt::Debug + Send + Sync {
    /// Node count `n` of the frozen state.
    fn n(&self) -> usize;

    /// Similarity of one node pair.
    ///
    /// # Panics
    /// Panics if either node is out of range.
    fn pair(&self, a: u32, b: u32) -> f64;

    /// Similarities of node `a`, excluding itself. Matrix snapshots list
    /// every other node; sampling snapshots list only nodes with a
    /// nonzero estimate (absent ⇒ score 0).
    fn single_source(&self, a: u32) -> Vec<RankedNode>;

    /// The `k` most similar nodes to `a`, descending (ties by node id).
    fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode>;

    /// Nodes whose similarity to `a` is at least `threshold`, unordered.
    fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode>;

    /// Heap bytes held by the frozen state.
    fn heap_bytes(&self) -> usize;

    /// The underlying [`ScoreSnapshot`], when this epoch material is a
    /// frozen matrix (`None` for matrix-free snapshots). Lets consumers
    /// that genuinely need dense rows (exports, diagnostics) recover
    /// them without downcasting.
    fn score_snapshot(&self) -> Option<&ScoreSnapshot> {
        None
    }
}

/// An **epoch-addressed** snapshot handle: a successor epoch's frozen
/// query surface plus a stacked factor delta rolling it *back* to an
/// earlier epoch — the reconstruction material of the temporal epoch
/// ring (`incsim::serve`).
///
/// The ring stores each retained epoch as factor pairs of
/// `S_next − S_this` (`O(r·n)` instead of `n²`); reconstructing epoch
/// `i` stacks the **negated** deltas from `i` up to the ring head onto
/// the head's view. A pair query costs the head's pair read plus `O(r)`
/// factor dot-products; row queries reconstruct through the head's
/// dense rows when available and fall back to per-entry reads
/// otherwise. `n` is pinned to the node count *at the reconstructed
/// epoch*, so nodes added later are out of range here — exactly as they
/// were live.
#[derive(Debug)]
pub struct DeltaSnapshot {
    base: std::sync::Arc<dyn SnapshotQuery>,
    delta: LowRankDelta,
    n: usize,
}

impl DeltaSnapshot {
    /// Wraps a successor view and a rollback delta into an
    /// earlier-epoch handle with `n` nodes.
    ///
    /// # Panics
    /// Panics if the delta's dimension differs from the base view's `n`
    /// or `n` exceeds it.
    pub fn new(base: std::sync::Arc<dyn SnapshotQuery>, delta: LowRankDelta, n: usize) -> Self {
        assert_eq!(
            delta.dim(),
            base.n(),
            "DeltaSnapshot: delta dim must match the base view"
        );
        assert!(n <= base.n(), "DeltaSnapshot: n exceeds the base view");
        DeltaSnapshot { base, delta, n }
    }

    /// Effective row `a` at the reconstructed epoch (length `n`).
    fn row(&self, a: u32) -> Vec<f64> {
        assert!((a as usize) < self.n, "node {a} out of range");
        let mut row = match self.base.score_snapshot() {
            Some(ss) => ss.view().row(a),
            // Matrix-free base: reconstruct per entry, O(n·r).
            None => (0..self.base.n() as u32)
                .map(|b| self.base.pair(a, b))
                .collect(),
        };
        self.delta.add_row_delta(a as usize, &mut row);
        row.truncate(self.n);
        row
    }
}

impl SnapshotQuery for DeltaSnapshot {
    fn n(&self) -> usize {
        self.n
    }

    fn pair(&self, a: u32, b: u32) -> f64 {
        assert!(
            (a as usize) < self.n && (b as usize) < self.n,
            "pair ({a},{b}) out of range for epoch n={}",
            self.n
        );
        self.base.pair(a, b) + self.delta.pair_delta(a as usize, b as usize)
    }

    fn single_source(&self, a: u32) -> Vec<RankedNode> {
        self.row(a)
            .into_iter()
            .enumerate()
            .filter(|&(v, _)| v != a as usize)
            .map(|(v, score)| RankedNode {
                node: v as u32,
                score,
            })
            .collect()
    }

    fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        rank_and_truncate(self.single_source(a), k)
    }

    fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.single_source(a)
            .into_iter()
            .filter(|r| r.score >= threshold)
            .collect()
    }

    fn heap_bytes(&self) -> usize {
        // The base view is shared with the live epoch; only the rollback
        // factors are attributable to this handle.
        self.delta.heap_bytes()
    }
}

impl SnapshotQuery for ScoreSnapshot {
    fn n(&self) -> usize {
        ScoreSnapshot::n(self)
    }

    fn pair(&self, a: u32, b: u32) -> f64 {
        ScoreSnapshot::pair(self, a, b)
    }

    fn single_source(&self, a: u32) -> Vec<RankedNode> {
        ScoreSnapshot::single_source(self, a)
    }

    fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        ScoreSnapshot::top_k(self, a, k)
    }

    fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        ScoreSnapshot::similar_above(self, a, threshold)
    }

    fn heap_bytes(&self) -> usize {
        ScoreSnapshot::heap_bytes(self)
    }

    fn score_snapshot(&self) -> Option<&ScoreSnapshot> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            &[1.0, 0.5, 0.0, 0.7],
            &[0.5, 1.0, 0.2, 0.0],
            &[0.0, 0.2, 1.0, 0.1],
            &[0.7, 0.0, 0.1, 1.0],
        ])
    }

    #[test]
    fn pair_and_single_source() {
        let s = sample();
        assert_eq!(pair_score(&s, 0, 3), 0.7);
        let row = single_source(&s, 0);
        assert_eq!(row.len(), 3);
        assert!(row.iter().all(|r| r.node != 0));
    }

    #[test]
    fn top_k_orders_descending_with_stable_ties() {
        let s = sample();
        let top = top_k_for_node(&s, 0, 2);
        assert_eq!(
            top[0],
            RankedNode {
                node: 3,
                score: 0.7
            }
        );
        assert_eq!(
            top[1],
            RankedNode {
                node: 1,
                score: 0.5
            }
        );
        // k larger than candidates truncates gracefully.
        assert_eq!(top_k_for_node(&s, 0, 10).len(), 3);
    }

    #[test]
    fn view_without_delta_matches_free_functions() {
        let s = sample();
        let view = ScoreView::new(&s, None);
        assert!(!view.is_deferred());
        assert_eq!(view.n(), 4);
        for a in 0..4u32 {
            for b in 0..4u32 {
                assert_eq!(view.pair(a, b), pair_score(&s, a, b));
            }
            assert_eq!(view.single_source(a), single_source(&s, a));
            assert_eq!(view.top_k(a, 2), top_k_for_node(&s, a, 2));
            assert_eq!(view.similar_above(a, 0.5), similar_above(&s, a, 0.5));
        }
    }

    #[test]
    fn deferred_view_matches_materialized_matrix() {
        let s = sample();
        let mut delta = LowRankDelta::new(4);
        delta.push_dense(vec![0.5, 0.0, -1.0, 0.0], vec![0.0, 2.0, 0.0, 1.0]);
        delta.push_sparse(vec![(0, 1.0)], vec![(3, -0.5)]);

        let mut applied = s.clone();
        delta.clone().apply_to(&mut applied);

        let view = ScoreView::new(&s, Some(&delta));
        assert!(view.is_deferred());
        assert!(view.materialise().max_abs_diff(&applied) < 1e-15);
        for a in 0..4u32 {
            for b in 0..4u32 {
                let lazy = view.pair(a, b);
                assert!((lazy - pair_score(&applied, a, b)).abs() < 1e-12);
            }
            let lazy_top = view.top_k(a, 3);
            let full_top = top_k_for_node(&applied, a, 3);
            for (l, f) in lazy_top.iter().zip(&full_top) {
                assert_eq!(l.node, f.node);
                assert!((l.score - f.score).abs() < 1e-12);
            }
            assert_eq!(
                view.single_source(a).len(),
                single_source(&applied, a).len()
            );
        }
    }

    #[test]
    fn snapshot_freezes_state_and_is_send_sync() {
        fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
        assert_send_sync_clone::<ScoreSnapshot>();

        let mut s = sample();
        let mut delta = LowRankDelta::new(4);
        delta.push_dense(vec![0.5, 0.0, -1.0, 0.0], vec![0.0, 2.0, 0.0, 1.0]);
        let snap = ScoreView::new(&s, Some(&delta)).to_snapshot();
        assert_eq!(snap.n(), 4);
        assert!(snap.view().is_deferred(), "pending Δ travels with it");
        let before: Vec<f64> = (0..4u32).map(|b| snap.pair(0, b)).collect();
        // Mutate the source; the snapshot must not move.
        s.set(0, 1, 99.0);
        delta.push_dense(vec![9.0; 4], vec![9.0; 4]);
        let after: Vec<f64> = (0..4u32).map(|b| snap.pair(0, b)).collect();
        assert_eq!(before, after);
        // Snapshot queries agree with an equivalent live view.
        let live = snap.view();
        assert_eq!(snap.top_k(1, 3), live.top_k(1, 3));
        assert_eq!(snap.single_source(2), live.single_source(2));
        assert_eq!(snap.similar_above(3, 0.4), live.similar_above(3, 0.4));
        assert!(snap.heap_bytes() > 0);
    }

    #[test]
    fn delta_snapshot_rolls_a_view_back_to_an_earlier_epoch() {
        // "Later" epoch has 5 nodes; "earlier" had 4.
        let later = DenseMatrix::from_rows(&[
            &[1.0, 0.4, 0.1, 0.7, 0.2],
            &[0.4, 1.0, 0.3, 0.0, 0.0],
            &[0.1, 0.3, 1.0, 0.1, 0.5],
            &[0.7, 0.0, 0.1, 1.0, 0.0],
            &[0.2, 0.0, 0.5, 0.0, 1.0],
        ]);
        let mut earlier = DenseMatrix::from_rows(&[
            &[1.0, 0.5, 0.0, 0.7],
            &[0.5, 1.0, 0.2, 0.0],
            &[0.0, 0.2, 1.0, 0.1],
            &[0.7, 0.0, 0.1, 1.0],
        ]);
        // Forward delta (later − earlier) as the ring stores it …
        let (forward, dropped) = LowRankDelta::between(&earlier, &later, 0.0);
        assert!(dropped < 1e-14);
        // … stacked negated for reconstruction.
        let mut back = LowRankDelta::new(5);
        back.extend_negated(&forward);
        let head: std::sync::Arc<dyn SnapshotQuery> =
            std::sync::Arc::new(ScoreView::new(&later, None).to_snapshot());
        let snap = DeltaSnapshot::new(head, back, 4);

        assert_eq!(snap.n(), 4);
        for a in 0..4u32 {
            for b in 0..4u32 {
                let want = earlier.get(a as usize, b as usize);
                assert!((snap.pair(a, b) - want).abs() < 1e-12, "({a},{b})");
            }
            let got = snap.single_source(a);
            let want = single_source(&earlier, a);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.node, w.node);
                assert!((g.score - w.score).abs() < 1e-12);
            }
            let tk = snap.top_k(a, 2);
            let wk = top_k_for_node(&earlier, a, 2);
            assert_eq!(tk.len(), wk.len());
            for (g, w) in tk.iter().zip(&wk) {
                assert_eq!(g.node, w.node);
            }
        }
        assert!(snap.heap_bytes() > 0);
        // Mutating the "earlier" source cannot move the handle.
        earlier.set(0, 1, 9.0);
        assert!((snap.pair(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delta_snapshot_rejects_nodes_born_after_the_epoch() {
        let later = DenseMatrix::identity(3);
        let head: std::sync::Arc<dyn SnapshotQuery> =
            std::sync::Arc::new(ScoreView::new(&later, None).to_snapshot());
        let snap = DeltaSnapshot::new(head, LowRankDelta::new(3), 2);
        let _ = snap.pair(0, 2);
    }

    #[test]
    fn empty_delta_is_normalised_away() {
        let s = sample();
        let delta = LowRankDelta::new(4);
        let view = ScoreView::new(&s, Some(&delta));
        assert!(!view.is_deferred());
        assert!(view.delta().is_none());
    }

    #[test]
    fn threshold_filter() {
        let s = sample();
        let hits = similar_above(&s, 0, 0.5);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().any(|r| r.node == 1));
        assert!(hits.iter().any(|r| r.node == 3));
    }
}

//! Query helpers over maintained score matrices.
//!
//! The engines keep the full `n × n` matrix current; these helpers answer
//! the queries applications actually ask (single pair, single source,
//! top-k for a node) without re-deriving anything. They are extensions
//! beyond the paper, which stops at producing `S̃`.
//!
//! The `*_lazy` variants answer the same queries against a **deferred**
//! engine state `S_base + Δ`, where Δ is a pending
//! [`LowRankDelta`] factor buffer (see
//! [`crate::maintainer::ApplyMode::Lazy`]): a pair query costs `O(r)`
//! factor dot-products and a per-node query one `O(r·n)` row
//! reconstruction — never an `n²` apply.

use incsim_linalg::{DenseMatrix, LowRankDelta};

/// A neighbor of the query node ranked by similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedNode {
    /// The similar node.
    pub node: u32,
    /// Its SimRank score with the query node.
    pub score: f64,
}

/// Similarity of a single node pair (symmetric).
///
/// # Panics
/// Panics if either node is out of range.
pub fn pair_score(scores: &DenseMatrix, a: u32, b: u32) -> f64 {
    scores.get(a as usize, b as usize)
}

/// All similarities of one node (its row of `S`), excluding itself.
pub fn single_source(scores: &DenseMatrix, a: u32) -> Vec<RankedNode> {
    scores
        .row(a as usize)
        .iter()
        .copied()
        .enumerate()
        .filter(|&(v, _)| v != a as usize)
        .map(|(v, score)| RankedNode {
            node: v as u32,
            score,
        })
        .collect()
}

/// Sorts candidates score-descending (ties by node id) and keeps the top
/// `k` — the one ranking rule shared by every top-k helper here.
fn rank_and_truncate(mut all: Vec<RankedNode>, k: usize) -> Vec<RankedNode> {
    all.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.node.cmp(&y.node))
    });
    all.truncate(k);
    all
}

/// The `k` most similar nodes to `a`, descending (ties by node id).
pub fn top_k_for_node(scores: &DenseMatrix, a: u32, k: usize) -> Vec<RankedNode> {
    rank_and_truncate(single_source(scores, a), k)
}

/// Nodes whose similarity to `a` is at least `threshold`, unordered.
pub fn similar_above(scores: &DenseMatrix, a: u32, threshold: f64) -> Vec<RankedNode> {
    single_source(scores, a)
        .into_iter()
        .filter(|r| r.score >= threshold)
        .collect()
}

/// [`pair_score`] against `S_base + Δ`: `O(r)` factor dot-products, no
/// materialisation of the pending update.
pub fn pair_score_lazy(scores: &DenseMatrix, delta: &LowRankDelta, a: u32, b: u32) -> f64 {
    pair_score(scores, a, b) + delta.pair_delta(a as usize, b as usize)
}

/// Effective row `a` of `S_base + Δ` (the lazy single-source primitive):
/// one contiguous row read plus `O(r·n)` factor AXPYs.
fn effective_row(scores: &DenseMatrix, delta: &LowRankDelta, a: u32) -> Vec<f64> {
    let mut row = scores.row(a as usize).to_vec();
    delta.add_row_delta(a as usize, &mut row);
    row
}

/// [`single_source`] against `S_base + Δ`.
pub fn single_source_lazy(scores: &DenseMatrix, delta: &LowRankDelta, a: u32) -> Vec<RankedNode> {
    effective_row(scores, delta, a)
        .into_iter()
        .enumerate()
        .filter(|&(v, _)| v != a as usize)
        .map(|(v, score)| RankedNode {
            node: v as u32,
            score,
        })
        .collect()
}

/// [`top_k_for_node`] against `S_base + Δ`.
pub fn top_k_for_node_lazy(
    scores: &DenseMatrix,
    delta: &LowRankDelta,
    a: u32,
    k: usize,
) -> Vec<RankedNode> {
    rank_and_truncate(single_source_lazy(scores, delta, a), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            &[1.0, 0.5, 0.0, 0.7],
            &[0.5, 1.0, 0.2, 0.0],
            &[0.0, 0.2, 1.0, 0.1],
            &[0.7, 0.0, 0.1, 1.0],
        ])
    }

    #[test]
    fn pair_and_single_source() {
        let s = sample();
        assert_eq!(pair_score(&s, 0, 3), 0.7);
        let row = single_source(&s, 0);
        assert_eq!(row.len(), 3);
        assert!(row.iter().all(|r| r.node != 0));
    }

    #[test]
    fn top_k_orders_descending_with_stable_ties() {
        let s = sample();
        let top = top_k_for_node(&s, 0, 2);
        assert_eq!(
            top[0],
            RankedNode {
                node: 3,
                score: 0.7
            }
        );
        assert_eq!(
            top[1],
            RankedNode {
                node: 1,
                score: 0.5
            }
        );
        // k larger than candidates truncates gracefully.
        assert_eq!(top_k_for_node(&s, 0, 10).len(), 3);
    }

    #[test]
    fn lazy_queries_match_materialized_matrix() {
        let s = sample();
        let mut delta = LowRankDelta::new(4);
        delta.push_dense(vec![0.5, 0.0, -1.0, 0.0], vec![0.0, 2.0, 0.0, 1.0]);
        delta.push_sparse(vec![(0, 1.0)], vec![(3, -0.5)]);

        let mut applied = s.clone();
        delta.clone().apply_to(&mut applied);

        for a in 0..4u32 {
            for b in 0..4u32 {
                let lazy = pair_score_lazy(&s, &delta, a, b);
                assert!((lazy - pair_score(&applied, a, b)).abs() < 1e-12);
            }
            let lazy_top = top_k_for_node_lazy(&s, &delta, a, 3);
            let full_top = top_k_for_node(&applied, a, 3);
            for (l, f) in lazy_top.iter().zip(&full_top) {
                assert_eq!(l.node, f.node);
                assert!((l.score - f.score).abs() < 1e-12);
            }
            assert_eq!(
                single_source_lazy(&s, &delta, a).len(),
                single_source(&applied, a).len()
            );
        }
    }

    #[test]
    fn threshold_filter() {
        let s = sample();
        let hits = similar_above(&s, 0, 0.5);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().any(|r| r.node == 1));
        assert!(hits.iter().any(|r| r.node == 3));
    }
}

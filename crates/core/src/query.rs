//! Query helpers over maintained score matrices.
//!
//! The engines keep the full `n × n` matrix current; these helpers answer
//! the queries applications actually ask (single pair, single source,
//! top-k for a node) without re-deriving anything. They are extensions
//! beyond the paper, which stops at producing `S̃`.

use incsim_linalg::DenseMatrix;

/// A neighbor of the query node ranked by similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedNode {
    /// The similar node.
    pub node: u32,
    /// Its SimRank score with the query node.
    pub score: f64,
}

/// Similarity of a single node pair (symmetric).
///
/// # Panics
/// Panics if either node is out of range.
pub fn pair_score(scores: &DenseMatrix, a: u32, b: u32) -> f64 {
    scores.get(a as usize, b as usize)
}

/// All similarities of one node (its row of `S`), excluding itself.
pub fn single_source(scores: &DenseMatrix, a: u32) -> Vec<RankedNode> {
    scores
        .row(a as usize)
        .iter()
        .copied()
        .enumerate()
        .filter(|&(v, _)| v != a as usize)
        .map(|(v, score)| RankedNode {
            node: v as u32,
            score,
        })
        .collect()
}

/// The `k` most similar nodes to `a`, descending (ties by node id).
pub fn top_k_for_node(scores: &DenseMatrix, a: u32, k: usize) -> Vec<RankedNode> {
    let mut all = single_source(scores, a);
    all.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.node.cmp(&y.node))
    });
    all.truncate(k);
    all
}

/// Nodes whose similarity to `a` is at least `threshold`, unordered.
pub fn similar_above(scores: &DenseMatrix, a: u32, threshold: f64) -> Vec<RankedNode> {
    single_source(scores, a)
        .into_iter()
        .filter(|r| r.score >= threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            &[1.0, 0.5, 0.0, 0.7],
            &[0.5, 1.0, 0.2, 0.0],
            &[0.0, 0.2, 1.0, 0.1],
            &[0.7, 0.0, 0.1, 1.0],
        ])
    }

    #[test]
    fn pair_and_single_source() {
        let s = sample();
        assert_eq!(pair_score(&s, 0, 3), 0.7);
        let row = single_source(&s, 0);
        assert_eq!(row.len(), 3);
        assert!(row.iter().all(|r| r.node != 0));
    }

    #[test]
    fn top_k_orders_descending_with_stable_ties() {
        let s = sample();
        let top = top_k_for_node(&s, 0, 2);
        assert_eq!(
            top[0],
            RankedNode {
                node: 3,
                score: 0.7
            }
        );
        assert_eq!(
            top[1],
            RankedNode {
                node: 1,
                score: 0.5
            }
        );
        // k larger than candidates truncates gracefully.
        assert_eq!(top_k_for_node(&s, 0, 10).len(), 3);
    }

    #[test]
    fn threshold_filter() {
        let s = sample();
        let hits = similar_above(&s, 0, 0.5);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().any(|r| r.node == 1));
        assert!(hits.iter().any(|r| r.node == 3));
    }
}

//! Theorem 1–3: the rank-one machinery behind the incremental algorithms.
//!
//! * [`rank_one_decomposition`] — Theorem 1: for every unit link update the
//!   transition-matrix change factors as `ΔQ = u·vᵀ`, with `u` always a
//!   scalar multiple of `e_j` and `v` supported on `{i} ∪ I(j)`.
//! * [`gamma_vector`] — Theorem 3 / Algorithm 1 lines 3–12: the auxiliary
//!   vector γ and scalar λ (Eq. 27–29) such that the SimRank update matrix
//!   satisfies `ΔS = M + Mᵀ` with
//!   `M = Σ_k C^{k+1}·Q̃ᵏ·e_j·γᵀ·(Q̃ᵀ)ᵏ` (Eq. 26).
//!
//! All quantities are taken from the **old** graph (`d_j`, `[Q]_{j,:}`, `S`),
//! exactly as the theorems require.

use incsim_graph::transition::q_row;
use incsim_graph::DiGraph;
use incsim_linalg::{CsrMatrix, DenseMatrix};

/// Whether the unit update inserts or deletes the edge `(i, j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Insert edge `(i, j)`.
    Insert,
    /// Delete edge `(i, j)`.
    Delete,
}

/// The rank-one factorisation `ΔQ = u·vᵀ` of a unit update (Theorem 1).
///
/// `u = u_coeff · e_j` in all four cases, so it is stored as a coefficient;
/// `v` is sparse with support `⊆ {i} ∪ I_old(j)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RankOneUpdate {
    /// Source endpoint `i` of the updated edge.
    pub i: u32,
    /// Destination endpoint `j` (the node whose `Q`-row changes).
    pub j: u32,
    /// Insert or delete.
    pub kind: UpdateKind,
    /// In-degree of `j` in the old graph.
    pub dj_old: usize,
    /// `u = u_coeff · e_j`.
    pub u_coeff: f64,
    /// Sparse `v` as sorted `(index, value)` pairs.
    pub v: Vec<(u32, f64)>,
}

impl RankOneUpdate {
    /// Sparse dot product `vᵀ·x` against a dense slice.
    #[inline]
    pub fn v_dot(&self, x: &[f64]) -> f64 {
        self.v.iter().map(|&(idx, val)| val * x[idx as usize]).sum()
    }

    /// Sparse dot product `vᵀ·x` against an accessor closure (used by the
    /// pruned engine, whose vectors live in sparse accumulators).
    #[inline]
    pub fn v_dot_with<F: Fn(usize) -> f64>(&self, get: F) -> f64 {
        self.v
            .iter()
            .map(|&(idx, val)| val * get(idx as usize))
            .sum()
    }

    /// Materialises `ΔQ = u·vᵀ` densely (test/diagnostic helper).
    pub fn to_dense_delta(&self, n: usize) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(n, n);
        for &(idx, val) in &self.v {
            d.set(self.j as usize, idx as usize, self.u_coeff * val);
        }
        d
    }
}

/// Computes the Theorem 1 factorisation for updating edge `(i, j)` on the
/// **old** graph `g`.
///
/// For insertions, `(i, j)` must not exist in `g`; for deletions it must.
/// (Callers validate; this function `debug_assert`s.)
///
/// | case | `u` | `v` |
/// |------|------|------|
/// | insert, `d_j = 0` | `e_j` | `e_i` |
/// | insert, `d_j > 0` | `e_j/(d_j+1)` | `e_i − [Q]_{j,:}ᵀ` |
/// | delete, `d_j = 1` | `e_j` | `−e_i` |
/// | delete, `d_j > 1` | `e_j/(d_j−1)` | `[Q]_{j,:}ᵀ − e_i` |
pub fn rank_one_decomposition(g: &DiGraph, i: u32, j: u32, kind: UpdateKind) -> RankOneUpdate {
    let dj = g.in_degree(j);
    match kind {
        UpdateKind::Insert => {
            debug_assert!(!g.has_edge(i, j), "insert of existing edge ({i},{j})");
            if dj == 0 {
                RankOneUpdate {
                    i,
                    j,
                    kind,
                    dj_old: 0,
                    u_coeff: 1.0,
                    v: vec![(i, 1.0)],
                }
            } else {
                let mut v: Vec<(u32, f64)> = q_row(g, j)
                    .into_iter()
                    .map(|(idx, val)| (idx, -val))
                    .collect();
                merge_entry(&mut v, i, 1.0);
                RankOneUpdate {
                    i,
                    j,
                    kind,
                    dj_old: dj,
                    u_coeff: 1.0 / (dj as f64 + 1.0),
                    v,
                }
            }
        }
        UpdateKind::Delete => {
            debug_assert!(g.has_edge(i, j), "delete of missing edge ({i},{j})");
            if dj == 1 {
                RankOneUpdate {
                    i,
                    j,
                    kind,
                    dj_old: 1,
                    u_coeff: 1.0,
                    v: vec![(i, -1.0)],
                }
            } else {
                let mut v: Vec<(u32, f64)> = q_row(g, j);
                merge_entry(&mut v, i, -1.0);
                RankOneUpdate {
                    i,
                    j,
                    kind,
                    dj_old: dj,
                    u_coeff: 1.0 / (dj as f64 - 1.0),
                    v,
                }
            }
        }
    }
}

/// Adds `delta` to the `idx` entry of a sorted sparse vector, inserting or
/// removing as needed.
fn merge_entry(v: &mut Vec<(u32, f64)>, idx: u32, delta: f64) {
    match v.binary_search_by_key(&idx, |&(k, _)| k) {
        Ok(pos) => {
            v[pos].1 += delta;
            if v[pos].1 == 0.0 {
                v.remove(pos);
            }
        }
        Err(pos) => v.insert(pos, (idx, delta)),
    }
}

/// The auxiliary vector γ and the intermediate quantities of Algorithm 1
/// lines 3–12 / Theorem 3.
#[derive(Debug, Clone)]
pub struct GammaVector {
    /// Dense γ (length `n`): `M = Σ_k C^{k+1}·Q̃ᵏ·e_j·γᵀ·(Q̃ᵀ)ᵏ`.
    pub gamma: Vec<f64>,
    /// The memoised `w = Q·[S]_{:,i}` (reused by callers for diagnostics).
    pub w: Vec<f64>,
    /// The scalar λ of Eq. 29 (only meaningful for the `d_j > 0` insertion
    /// and `d_j > 1` deletion branches, as in Algorithm 1).
    pub lambda: f64,
}

/// Computes γ (Theorem 3) for a unit update, given the old `Q` and old `S`.
///
/// This is the faithful Algorithm 1 preprocessing: it performs **one**
/// sparse matrix–vector product (`w = Q·[S]_{:,i}`, line 3) plus `O(n)`
/// vector arithmetic — no matrix–matrix work.
pub fn gamma_vector(q: &CsrMatrix, s: &DenseMatrix, upd: &RankOneUpdate, c: f64) -> GammaVector {
    let s_col_i = s.col(upd.i as usize);
    let s_col_j = s.col(upd.j as usize);
    gamma_vector_from_cols(q, &s_col_i, &s_col_j, upd, c)
}

/// [`gamma_vector`] reading `S` through its columns `i` and `j` only.
///
/// γ depends on `S` solely through `[S]_{:,i}` and `[S]_{:,j}` (Theorem 3's
/// closed forms), so callers that maintain `S` as a base matrix plus a
/// pending [`incsim_linalg::LowRankDelta`] can pass *effective* columns
/// (`base + Δ`) without materialising the deferred update — this is what
/// lets the fused/lazy engines chain updates with no `n²` work in between.
/// It also lets the eager engine reuse column scratch buffers instead of
/// allocating per update (the old `DenseMatrix::col` hot path).
///
/// # Panics
/// Panics if the column slices differ in length.
pub fn gamma_vector_from_cols(
    q: &CsrMatrix,
    s_col_i: &[f64],
    s_col_j: &[f64],
    upd: &RankOneUpdate,
    c: f64,
) -> GammaVector {
    let n = s_col_i.len();
    assert_eq!(s_col_j.len(), n, "gamma_vector_from_cols: column mismatch");
    let j = upd.j as usize;
    let i = upd.i as usize;
    let s_ii = s_col_i[i];
    let s_jj = s_col_j[j];

    // Line 3: w := Q · [S]_{:,i}
    let mut w = vec![0.0; n];
    q.matvec(s_col_i, &mut w);

    // Line 4 (Eq. 29): λ := S[i,i] + S[j,j]/C − 2·[w]_j − 1/C + 1.
    let lambda = s_ii + s_jj / c - 2.0 * w[j] - 1.0 / c + 1.0;

    let mut gamma = vec![0.0; n];
    match (upd.kind, upd.dj_old) {
        // Line 6: γ := w + ½·S[i,i]·e_j       (insert, d_j = 0)
        (UpdateKind::Insert, 0) => {
            gamma.copy_from_slice(&w);
            gamma[j] += 0.5 * s_ii;
        }
        // Line 8: γ := (w − S[:,j]/C + (λ/(2(d_j+1)) + 1/C − 1)·e_j)/(d_j+1)
        (UpdateKind::Insert, dj) => {
            let djf = dj as f64;
            let coeff = lambda / (2.0 * (djf + 1.0)) + 1.0 / c - 1.0;
            for b in 0..n {
                gamma[b] = w[b] - s_col_j[b] / c;
            }
            gamma[j] += coeff;
            for gb in gamma.iter_mut() {
                *gb /= djf + 1.0;
            }
        }
        // Line 10: γ := ½·S[i,i]·e_j − w      (delete, d_j = 1)
        (UpdateKind::Delete, 1) => {
            for (gb, &wb) in gamma.iter_mut().zip(&w) {
                *gb = -wb;
            }
            gamma[j] += 0.5 * s_ii;
        }
        // Line 12: γ := (S[:,j]/C − w + (λ/(2(d_j−1)) − 1/C + 1)·e_j)/(d_j−1)
        (UpdateKind::Delete, dj) => {
            debug_assert!(dj > 1, "delete with d_j = 0 is impossible (edge exists)");
            let djf = dj as f64;
            let coeff = lambda / (2.0 * (djf - 1.0)) - 1.0 / c + 1.0;
            for b in 0..n {
                gamma[b] = s_col_j[b] / c - w[b];
            }
            gamma[j] += coeff;
            for gb in gamma.iter_mut() {
                *gb /= djf - 1.0;
            }
        }
    }

    GammaVector { gamma, w, lambda }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incsim_graph::transition::backward_transition;

    /// Verifies Theorem 1 numerically: Q̃ − Q == u·vᵀ.
    fn assert_rank_one_exact(g: &DiGraph, i: u32, j: u32, kind: UpdateKind) {
        let n = g.node_count();
        let q_old = backward_transition(g).to_dense();
        let upd = rank_one_decomposition(g, i, j, kind);
        let mut g_new = g.clone();
        match kind {
            UpdateKind::Insert => g_new.insert_edge(i, j).unwrap(),
            UpdateKind::Delete => g_new.remove_edge(i, j).unwrap(),
        }
        let q_new = backward_transition(&g_new).to_dense();
        let mut delta = q_new;
        delta.add_scaled(-1.0, &q_old);
        let uv = upd.to_dense_delta(n);
        assert!(
            delta.max_abs_diff(&uv) < 1e-12,
            "ΔQ ≠ u·vᵀ for ({i},{j}) {kind:?}: diff={}",
            delta.max_abs_diff(&uv)
        );
    }

    fn fixture() -> DiGraph {
        DiGraph::from_edges(6, &[(0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 2), (1, 4)])
    }

    #[test]
    fn theorem1_insert_dj_zero() {
        // Node 0 has in-degree 0.
        assert_rank_one_exact(&fixture(), 3, 0, UpdateKind::Insert);
    }

    #[test]
    fn theorem1_insert_dj_positive() {
        // Node 2 has in-degree 3.
        assert_rank_one_exact(&fixture(), 4, 2, UpdateKind::Insert);
    }

    #[test]
    fn theorem1_delete_dj_one() {
        // Node 3 has in-degree 1 (only 2→3).
        assert_rank_one_exact(&fixture(), 2, 3, UpdateKind::Delete);
    }

    #[test]
    fn theorem1_delete_dj_many() {
        // Node 2 has in-degree 3; delete 1→2.
        assert_rank_one_exact(&fixture(), 1, 2, UpdateKind::Delete);
    }

    #[test]
    fn theorem1_self_loop_insert() {
        assert_rank_one_exact(&fixture(), 2, 2, UpdateKind::Insert);
    }

    #[test]
    fn theorem1_exhaustive_over_small_graph() {
        let g = fixture();
        let n = g.node_count() as u32;
        for i in 0..n {
            for j in 0..n {
                if g.has_edge(i, j) {
                    assert_rank_one_exact(&g, i, j, UpdateKind::Delete);
                } else {
                    assert_rank_one_exact(&g, i, j, UpdateKind::Insert);
                }
            }
        }
    }

    #[test]
    fn example_4_from_the_paper_shape() {
        // Paper's Example 4: inserting (i,j) where d_j = 2 with
        // [Q]_{j,:} having entries 1/2 at two in-neighbors gives
        // u = e_j/3 and v = e_i − [Q]_{j,:}ᵀ.
        let mut g = DiGraph::new(5);
        // Nodes: i=0, j=1, in-neighbors of j: 2 and 3.
        g.insert_edge(2, 1).unwrap();
        g.insert_edge(3, 1).unwrap();
        let upd = rank_one_decomposition(&g, 0, 1, UpdateKind::Insert);
        assert_eq!(upd.dj_old, 2);
        assert!((upd.u_coeff - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(
            upd.v,
            vec![(0, 1.0), (2, -0.5), (3, -0.5)],
            "v = e_i − [Q]_j,:ᵀ"
        );
    }

    #[test]
    fn v_dot_matches_dense() {
        let g = fixture();
        let upd = rank_one_decomposition(&g, 4, 2, UpdateKind::Insert);
        let x: Vec<f64> = (0..6).map(|t| (t as f64 + 1.0) * 0.3).collect();
        let mut dense_v = [0.0; 6];
        for &(idx, val) in &upd.v {
            dense_v[idx as usize] = val;
        }
        let expect: f64 = dense_v.iter().zip(&x).map(|(a, b)| a * b).sum();
        assert!((upd.v_dot(&x) - expect).abs() < 1e-14);
        assert!((upd.v_dot_with(|k| x[k]) - expect).abs() < 1e-14);
    }

    #[test]
    fn gamma_lambda_consistent_with_theorem2_construction() {
        // Theorem 2 builds w = Q·S·v + (λ/2)·u with λ = vᵀ·S·v; Theorem 3's
        // γ (scaled by u_coeff) must match when S satisfies the SimRank
        // equation. Use a converged S so Eq. 31/32 hold tightly.
        let g = fixture();
        let c = 0.6;
        let cfg = crate::SimRankConfig::new(c, 120).unwrap();
        let s = crate::batch::batch_simrank(&g, &cfg);
        let q = backward_transition(&g);
        for (i, j, kind) in [
            (3u32, 0u32, UpdateKind::Insert),
            (4, 2, UpdateKind::Insert),
            (2, 3, UpdateKind::Delete),
            (1, 2, UpdateKind::Delete),
        ] {
            let upd = rank_one_decomposition(&g, i, j, kind);
            let gv = gamma_vector(&q, &s, &upd, c);

            // Theorem 2 route: z = S·v, y = Q·z, λ₂ = vᵀ·z, w₂ = y + (λ₂/2)·u.
            let n = g.node_count();
            let mut z = vec![0.0; n];
            for &(idx, val) in &upd.v {
                for (row, zr) in z.iter_mut().enumerate() {
                    *zr += val * s.get(row, idx as usize);
                }
            }
            let mut y = vec![0.0; n];
            q.matvec(&z, &mut y);
            let lambda2: f64 = upd.v_dot(&z);
            let mut w2 = y;
            w2[j as usize] += 0.5 * lambda2 * upd.u_coeff;
            // γ = u_coeff · w₂  (folding u = u_coeff·e_j into e_j·γᵀ).
            for wv in w2.iter_mut() {
                *wv *= upd.u_coeff;
            }
            for b in 0..n {
                assert!(
                    (gv.gamma[b] - w2[b]).abs() < 1e-9,
                    "γ mismatch at b={b} for ({i},{j}) {kind:?}: {} vs {}",
                    gv.gamma[b],
                    w2[b]
                );
            }
        }
    }

    #[test]
    fn merge_entry_inserts_and_cancels() {
        let mut v = vec![(1u32, 0.5), (4, -1.0)];
        merge_entry(&mut v, 2, 3.0);
        assert_eq!(v, vec![(1, 0.5), (2, 3.0), (4, -1.0)]);
        merge_entry(&mut v, 2, -3.0);
        assert_eq!(v, vec![(1, 0.5), (4, -1.0)]);
        merge_entry(&mut v, 1, 0.25);
        assert_eq!(v[0], (1, 0.75));
    }
}

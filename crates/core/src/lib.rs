//! # incsim-core
//!
//! The primary contribution of *"Fast Incremental SimRank on Link-Evolving
//! Graphs"* (Yu, Lin & Zhang, ICDE 2014), implemented from scratch:
//!
//! * [`batch_simrank`] — matrix-form batch SimRank
//!   `S = C·Q·S·Qᵀ + (1−C)·Iₙ` (Eq. 2) with sparse kernels and partial-sum
//!   row sharing, the `O(K·d·n²)`-class batch computation the paper uses
//!   both as the precomputation step and as the `Batch` comparator.
//! * [`rankone`] — Theorem 1: the rank-one decomposition `ΔQ = u·vᵀ` of
//!   every unit link update, plus the Theorem 2/3 construction of the
//!   auxiliary vector γ and scalar λ.
//! * [`IncUSr`] — Algorithm 1 (*Inc-uSR*): exact incremental all-pairs
//!   update in `O(K·n²)` time per link update via the rank-one Sylvester
//!   characterisation of ΔS (Eq. 13), using only matrix–vector and
//!   vector–vector operations.
//! * [`IncSr`] — Algorithm 2 (*Inc-SR*): Inc-uSR plus the lossless pruning
//!   of Theorem 4, confining work to the affected area of ΔS —
//!   `O(K(n·d + |AFF|))` time.
//! * [`SimRankMaintainer`] — the engine *composition*: a supertrait bundle
//!   of the capability traits [`GraphSink`] (mutate the graph),
//!   [`PairQuery`] / [`SingleSourceQuery`] / [`TopKQuery`] (answer
//!   queries), plus optional dense-state access via
//!   [`SimRankMaintainer::matrix`] → [`MatrixAccess`]. Matrix engines get
//!   the query capabilities for free from blanket impls over their
//!   [`MatrixAccess::view`]; matrix-free engines implement them directly.
//! * [`ProbeSim`] — the first matrix-free engine: ProbeSim-style
//!   Monte-Carlo sampling over the graph alone (`O(n + m)` state, zero
//!   `n²` allocations), answering within a documented `(1 ± ε)` of the
//!   K-truncated batch scores.
//! * [`ApplyMode`] — how the per-update `ξηᵀ + ηξᵀ` terms reach the score
//!   matrix: `Eager` (the paper's K+1 sweeps), `Fused` (one buffered,
//!   cache-blocked, parallel sweep per mutation call), or `Lazy` (no sweep
//!   at all). Reads are mode-agnostic: [`query::ScoreView`] (obtained via
//!   [`MatrixAccess::view`]) composes `S_base + Δ` over the pending
//!   [`incsim_linalg::LowRankDelta`], and [`MatrixAccess::scores`]
//!   materialises pending ΔS before returning — stale reads are
//!   impossible through the trait.
//!
//! ## Semantics
//!
//! Scores follow the paper's **matrix form** of SimRank. Its diagonal is
//! *not* pinned to 1: a node `j` with in-degree 0 has `S[j,j] = 1−C`. The
//! incremental theorems (Eq. 29/31/32) are identities of this form. The
//! classic Jeh–Widom iterative form (diagonal forced to 1) is provided by
//! `incsim-baselines` for comparison.
//!
//! ## Example
//!
//! ```
//! use incsim_graph::DiGraph;
//! use incsim_core::{batch_simrank, GraphSink, IncSr, SimRankConfig};
//!
//! let g = DiGraph::from_edges(5, &[(0, 2), (1, 2), (2, 3), (3, 4)]);
//! let cfg = SimRankConfig::new(0.6, 12).unwrap();
//! let s = batch_simrank(&g, &cfg);
//! let mut engine = IncSr::new(g, s, cfg);
//! let stats = engine.insert_edge(0, 3).unwrap();
//! assert!(stats.affected_pairs > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops mirror the paper's per-node formulas; keep them literal.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod detorder;
mod fxhash;
pub mod grouped;
pub mod incsr;
pub mod incusr;
pub mod maintainer;
pub mod probe;
pub mod query;
pub mod rankone;
pub mod snapshot;
pub mod topk_tracker;

pub use batch::{batch_simrank, batch_simrank_detailed, BatchOptions, BatchResult};
pub use grouped::{group_by_row, GroupedStats, RowChange};
pub use incsr::IncSr;
pub use incusr::IncUSr;
pub use maintainer::{
    validate_update, ApplyMode, CapabilityError, GraphSink, MatrixAccess, PairQuery,
    SimRankMaintainer, SingleSourceQuery, TopKQuery, UpdateError, UpdateStats, WalkStats,
};
pub use probe::{ProbeOptions, ProbeSim, ProbeSnapshot};
pub use query::{DeltaSnapshot, RankedNode, ScoreSnapshot, ScoreView, SnapshotQuery};
pub use rankone::{
    gamma_vector, gamma_vector_from_cols, rank_one_decomposition, RankOneUpdate, UpdateKind,
};

/// Configuration shared by every SimRank algorithm in the workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimRankConfig {
    /// Damping factor `C ∈ (0, 1)`; the paper uses 0.6 (experiments) and
    /// 0.8 (running example), following Jeh & Widom's 0.6–0.8 guidance.
    pub c: f64,
    /// Number of iterations `K`; residual decays as `C^{K+1}` (the paper
    /// uses K=15 for `C^K ≤ 0.0005`, and K=5 on the largest dataset).
    pub iterations: usize,
    /// Entries with `|x| <= zero_tol` are treated as zero when detecting
    /// supports/affected areas. `0.0` reproduces the paper's exact-zero
    /// pruning semantics.
    pub zero_tol: f64,
}

impl SimRankConfig {
    /// Creates a configuration, validating `0 < c < 1` and `iterations ≥ 1`.
    pub fn new(c: f64, iterations: usize) -> Result<Self, ConfigError> {
        if !(c > 0.0 && c < 1.0) {
            return Err(ConfigError::DampingOutOfRange { c });
        }
        if iterations == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        Ok(SimRankConfig {
            c,
            iterations,
            zero_tol: 0.0,
        })
    }

    /// Sets the support-detection tolerance (see [`SimRankConfig::zero_tol`]).
    pub fn with_zero_tol(mut self, tol: f64) -> Self {
        self.zero_tol = tol;
        self
    }

    /// The paper's default experimental setting: `C = 0.6`, `K = 15`.
    pub fn paper_default() -> Self {
        SimRankConfig {
            c: 0.6,
            iterations: 15,
            zero_tol: 0.0,
        }
    }

    /// A-priori truncation bound `‖M − M_K‖_max ≤ C^{K+1}` (footnote 18).
    pub fn truncation_bound(&self) -> f64 {
        self.c.powi(self.iterations as i32 + 1)
    }
}

/// Configuration validation errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The damping factor must lie strictly between 0 and 1.
    DampingOutOfRange {
        /// The rejected value.
        c: f64,
    },
    /// At least one iteration is required.
    ZeroIterations,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::DampingOutOfRange { c } => {
                write!(f, "damping factor must be in (0,1), got {c}")
            }
            ConfigError::ZeroIterations => write!(f, "iteration count must be >= 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(SimRankConfig::new(0.6, 15).is_ok());
        assert!(matches!(
            SimRankConfig::new(0.0, 15),
            Err(ConfigError::DampingOutOfRange { .. })
        ));
        assert!(matches!(
            SimRankConfig::new(1.0, 15),
            Err(ConfigError::DampingOutOfRange { .. })
        ));
        assert!(matches!(
            SimRankConfig::new(-0.3, 15),
            Err(ConfigError::DampingOutOfRange { .. })
        ));
        assert!(matches!(
            SimRankConfig::new(0.5, 0),
            Err(ConfigError::ZeroIterations)
        ));
    }

    #[test]
    fn paper_default_matches_experiments_section() {
        let cfg = SimRankConfig::paper_default();
        assert_eq!(cfg.c, 0.6);
        assert_eq!(cfg.iterations, 15);
    }

    #[test]
    fn truncation_bound_decays() {
        let cfg = SimRankConfig::new(0.6, 15).unwrap();
        // C^16 ≈ 2.8e-4 — the "high accuracy C^K ≤ 0.0005" the paper cites.
        assert!(cfg.truncation_bound() < 5e-4);
        let few = SimRankConfig::new(0.6, 2).unwrap();
        assert!(few.truncation_bound() > cfg.truncation_bound());
    }
}

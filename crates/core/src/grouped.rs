//! Row-grouped batch updates — an extension beyond the paper.
//!
//! The paper processes a batch update `ΔG` as a sequence of unit updates
//! (§V: "batch update … can be decomposed into a sequence of unit
//! updates"). But Theorem 2's rank-one Sylvester characterisation only
//! requires `ΔQ = u·vᵀ` — it never requires the change to be a *single*
//! edge. Since any set of edge changes with the same destination `j`
//! perturbs only **row j** of `Q`, the whole group is one rank-one update:
//!
//! ```text
//! ΔQ = e_j · (Q̃_{j,:} − Q_{j,:})   —  rank one, any number of edges.
//! ```
//!
//! A batch of `b` edges touching `r ≤ b` distinct destinations therefore
//! needs only `r` Sylvester iterations instead of `b`. The auxiliary
//! vector comes from the Theorem 2 construction directly (`z = S·v`,
//! `y = Q·z`, `λ = vᵀ·z`, `w = y + (λ/2)·u`), which is exact for arbitrary
//! rank-one `ΔQ`; the Theorem 3 closed forms (Eq. 27–28) are unit-update
//! specialisations and are not used here.

use crate::maintainer::UpdateError;
use incsim_graph::transition::q_row;
use incsim_graph::{DiGraph, GraphError, UpdateOp};
use incsim_linalg::DenseMatrix;

/// Summary of a grouped batch application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedStats {
    /// Unit edge ops in the input batch.
    pub unit_ops: usize,
    /// Rank-one (per-row) Sylvester updates actually performed.
    pub row_updates: usize,
}

/// The net change to one row of `Q`: node `j`'s in-neighbourhood going
/// from its current state to `new_in_neighbors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowChange {
    /// The destination node whose `Q`-row changes.
    pub j: u32,
    /// The in-neighbour set after the change (sorted).
    pub new_in_neighbors: Vec<u32>,
    /// The edge ops contributing to this row (in input order).
    pub ops: Vec<UpdateOp>,
}

/// Groups a batch update into net per-row changes (Theorem 2 units).
///
/// Validates the ops by replaying them on a shadow graph: the same
/// errors a sequential application would produce are reported, and rows
/// whose net change is empty (e.g. insert-then-delete) are dropped.
pub fn group_by_row(g: &DiGraph, ops: &[UpdateOp]) -> Result<Vec<RowChange>, UpdateError> {
    let mut shadow = g.clone();
    let mut touched: Vec<u32> = Vec::new();
    for &op in ops {
        match op {
            UpdateOp::Insert(u, v) => shadow.insert_edge(u, v).map_err(UpdateError::Graph)?,
            UpdateOp::Delete(u, v) => shadow.remove_edge(u, v).map_err(UpdateError::Graph)?,
        }
        let (_, j) = op.endpoints();
        if !touched.contains(&j) {
            touched.push(j);
        }
    }
    let mut rows = Vec::new();
    for j in touched {
        let old = g.in_neighbors(j);
        let new = shadow.in_neighbors(j);
        if old == new {
            continue; // net no-op row
        }
        rows.push(RowChange {
            j,
            new_in_neighbors: new.to_vec(),
            ops: ops
                .iter()
                .copied()
                .filter(|op| op.endpoints().1 == j)
                .collect(),
        });
    }
    Ok(rows)
}

/// The rank-one data for a net row change: `ΔQ = e_j·vᵀ` plus the dense
/// auxiliary vector γ (Theorem 2 route), computed against the *current*
/// graph and scores.
pub struct RowRankOne {
    /// The changed row.
    pub j: u32,
    /// Sparse `v = Q̃_{j,:} − Q_{j,:}` as sorted `(index, value)` pairs.
    pub v: Vec<(u32, f64)>,
    /// Dense γ with `M = Σ_k C^{k+1}·Q̃ᵏ·e_j·γᵀ·(Q̃ᵀ)ᵏ`.
    pub gamma: Vec<f64>,
}

/// Builds the [`RowRankOne`] for a row change.
///
/// `q_matvec` must apply the **old** `Q` (`y = Q·z`); it is abstracted so
/// both the CSR-backed and the graph-backed engines can share this code.
pub fn row_rank_one<F>(
    g: &DiGraph,
    s: &DenseMatrix,
    change: &RowChange,
    q_matvec: F,
) -> Result<RowRankOne, UpdateError>
where
    F: FnOnce(&[f64], &mut [f64]),
{
    let n = g.node_count();
    if change.j as usize >= n {
        return Err(UpdateError::Graph(GraphError::NodeOutOfRange {
            node: change.j,
            node_count: n,
        }));
    }
    // v = new row − old row (both rows are uniform over their in-sets).
    let mut v: Vec<(u32, f64)> = Vec::new();
    let add = |list: &mut Vec<(u32, f64)>, idx: u32, val: f64| match list
        .binary_search_by_key(&idx, |&(k, _)| k)
    {
        Ok(pos) => {
            list[pos].1 += val;
            if list[pos].1 == 0.0 {
                list.remove(pos);
            }
        }
        Err(pos) => list.insert(pos, (idx, val)),
    };
    if !change.new_in_neighbors.is_empty() {
        let w_new = 1.0 / change.new_in_neighbors.len() as f64;
        for &y in &change.new_in_neighbors {
            add(&mut v, y, w_new);
        }
    }
    for (y, w_old) in q_row(g, change.j) {
        add(&mut v, y, -w_old);
    }
    if v.is_empty() {
        return Err(UpdateError::Numerical("row change is a net no-op"));
    }

    // Theorem 2: z = S·v, y = Q·z, λ = vᵀ·z, γ = y + (λ/2)·e_j
    // (u = e_j with coefficient 1 — the row difference is absorbed in v).
    let mut z = vec![0.0; n];
    for &(idx, val) in &v {
        incsim_linalg::vecops::axpy(val, s.row(idx as usize), &mut z);
        // S is symmetric: row idx doubles as column idx.
    }
    let lambda: f64 = v.iter().map(|&(idx, val)| val * z[idx as usize]).sum();
    let mut gamma = vec![0.0; n];
    q_matvec(&z, &mut gamma);
    gamma[change.j as usize] += 0.5 * lambda;
    Ok(RowRankOne {
        j: change.j,
        v,
        gamma,
    })
}

/// `y = Q·x` evaluated straight from the graph (no CSR): the Inc-SR engine
/// keeps no materialised `Q`, reading in-neighbourhoods on demand.
pub fn graph_q_matvec(g: &DiGraph, x: &[f64], y: &mut [f64]) {
    let n = g.node_count();
    assert_eq!(x.len(), n, "graph_q_matvec: x length mismatch");
    assert_eq!(y.len(), n, "graph_q_matvec: y length mismatch");
    for a in 0..n as u32 {
        let innb = g.in_neighbors(a);
        y[a as usize] = if innb.is_empty() {
            0.0
        } else {
            let sum: f64 = innb.iter().map(|&t| x[t as usize]).sum();
            sum / innb.len() as f64
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incsim_graph::transition::backward_transition;

    fn fixture() -> DiGraph {
        DiGraph::from_edges(6, &[(0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 2)])
    }

    #[test]
    fn grouping_merges_ops_per_destination() {
        let g = fixture();
        let ops = vec![
            UpdateOp::Insert(4, 2), // row 2
            UpdateOp::Insert(0, 4), // row 4
            UpdateOp::Delete(1, 2), // row 2 again
        ];
        let rows = group_by_row(&g, &ops).unwrap();
        assert_eq!(rows.len(), 2);
        let row2 = rows.iter().find(|r| r.j == 2).unwrap();
        assert_eq!(row2.new_in_neighbors, vec![0, 4, 5]);
        assert_eq!(row2.ops.len(), 2);
    }

    #[test]
    fn net_noop_rows_are_dropped() {
        let g = fixture();
        let ops = vec![UpdateOp::Insert(4, 2), UpdateOp::Delete(4, 2)];
        let rows = group_by_row(&g, &ops).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn invalid_sequences_are_rejected() {
        let g = fixture();
        // Second insert duplicates the first.
        let ops = vec![UpdateOp::Insert(4, 2), UpdateOp::Insert(4, 2)];
        assert!(group_by_row(&g, &ops).is_err());
        // Deleting a missing edge.
        assert!(group_by_row(&g, &[UpdateOp::Delete(0, 5)]).is_err());
    }

    #[test]
    fn row_rank_one_matches_q_difference() {
        let g = fixture();
        let cfg = crate::SimRankConfig::new(0.6, 80).unwrap();
        let s = crate::batch::batch_simrank(&g, &cfg);
        let q = backward_transition(&g);
        let ops = vec![UpdateOp::Insert(4, 2), UpdateOp::Delete(1, 2)];
        let rows = group_by_row(&g, &ops).unwrap();
        assert_eq!(rows.len(), 1);
        let rro = row_rank_one(&g, &s, &rows[0], |x, y| q.matvec(x, y)).unwrap();

        // e_j·vᵀ must equal Q̃ − Q exactly.
        let mut g_new = g.clone();
        for op in &ops {
            op.apply(&mut g_new).unwrap();
        }
        let q_new = backward_transition(&g_new).to_dense();
        let mut delta = q_new;
        delta.add_scaled(-1.0, &q.to_dense());
        let mut uv = DenseMatrix::zeros(6, 6);
        for &(idx, val) in &rro.v {
            uv.set(2, idx as usize, val);
        }
        assert!(delta.max_abs_diff(&uv) < 1e-12);
    }

    #[test]
    fn gamma_matches_unit_update_for_single_edge() {
        // For a single-edge group, the Theorem 2 route must agree with the
        // Theorem 3 closed form used by the unit-update engines.
        let g = fixture();
        let cfg = crate::SimRankConfig::new(0.6, 120).unwrap();
        let s = crate::batch::batch_simrank(&g, &cfg);
        let q = backward_transition(&g);
        let ops = vec![UpdateOp::Insert(4, 2)];
        let rows = group_by_row(&g, &ops).unwrap();
        let rro = row_rank_one(&g, &s, &rows[0], |x, y| q.matvec(x, y)).unwrap();

        let upd = crate::rankone::rank_one_decomposition(&g, 4, 2, crate::UpdateKind::Insert);
        let gv = crate::rankone::gamma_vector(&q, &s, &upd, 0.6);
        // The unit path folds u = e_j/(d_j+1) into γ; the grouped path uses
        // u = e_j with the scale inside v. γ_grouped == γ_unit as the
        // product u·γᵀ is what matters — compare e_j·γᵀ forms directly:
        for b in 0..6 {
            assert!(
                (rro.gamma[b] - gv.gamma[b]).abs() < 1e-9,
                "γ mismatch at {b}: {} vs {}",
                rro.gamma[b],
                gv.gamma[b]
            );
        }
    }
}

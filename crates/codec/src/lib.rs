//! Shared binary codec for every persistent incsim artifact.
//!
//! Three on-disk formats grew up independently in this workspace — the
//! `INCSIM01` engine snapshot, the `INCSWAL1` write-ahead log, and the
//! serialized epoch-ring records that ride inside v2 checkpoints. They
//! all need the same four things, collected here so each format layers
//! its schema on one audited substrate instead of re-rolling it:
//!
//! * **Integrity framing** — `[len u32 LE][crc32 u32 LE][payload]`
//!   frames ([`put_frame`], [`frame_at`], [`frame_offsets`]) with an
//!   IEEE [`crc32`] so torn tails and bit flips are detected, never
//!   silently replayed.
//! * **Little-endian primitives** — fixed-width writers
//!   ([`put_u32`]/[`put_u64`]/[`put_f64`]) and the matching
//!   [`Cursor`] reader for in-memory payloads.
//! * **Varints** — LEB128 ([`put_uvarint`]/[`Cursor::uvarint`]) for
//!   counts and sparse indices where fixed width would dominate the
//!   record (epoch-ring factor pairs are mostly small integers).
//! * **Versioned record envelopes** — `[version u8][body…]`
//!   ([`put_record`], [`record`]) so formats can evolve while old
//!   bytes stay readable.
//!
//! Payload decoding is `Option`-based: a `None` from [`Cursor`] means
//! "these bytes do not parse", and the caller owns the policy (truncate
//! a torn tail, quarantine a record, surface a typed error). Streaming
//! decoding ([`CountingReader`]) is `Result`-based and tracks the byte
//! offset so failures can be pinned for forensics.
//!
//! The crate is dependency-free and does no I/O of its own beyond the
//! `std::io` traits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{self, Read, Write};

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB8_8320)
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (the zlib/PNG variant; check value for
/// `b"123456789"` is `0xCBF4_3926`).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Little-endian writers
// ---------------------------------------------------------------------------

/// Appends a single byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends `v` as 4 little-endian bytes.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` as 8 little-endian bytes.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` as 8 little-endian bytes (IEEE-754 bit pattern, so the
/// round trip is bit-exact — NaN payloads and signed zeros included).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Maximum encoded length of a LEB128 `u64` (ceil(64 / 7) groups).
pub const MAX_UVARINT_LEN: usize = 10;

/// Appends `v` as an unsigned LEB128 varint (1–10 bytes; values below
/// 128 take a single byte).
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

// ---------------------------------------------------------------------------
// Streaming little-endian writers (std::io)
// ---------------------------------------------------------------------------

/// Writes `v` as 4 little-endian bytes.
///
/// # Errors
/// Propagates writer errors.
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes `v` as 8 little-endian bytes.
///
/// # Errors
/// Propagates writer errors.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes `v` as 8 little-endian bytes (bit-exact IEEE-754).
///
/// # Errors
/// Propagates writer errors.
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

// ---------------------------------------------------------------------------
// Cursor: Option-based reader over an in-memory payload
// ---------------------------------------------------------------------------

/// A bounds-checked reader over a byte slice.
///
/// Every accessor returns `None` once the slice is exhausted (or a
/// varint is malformed) instead of panicking; [`Cursor::pos`] reports
/// how far decoding got, for error offsets.
#[derive(Clone, Copy)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Byte offset of the next read.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed — decoders use this to
    /// reject trailing garbage.
    #[must_use]
    pub fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Consumes exactly `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = self.take(1)?;
        Some(b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    /// Reads a little-endian `f64` (bit-exact IEEE-754).
    pub fn f64(&mut self) -> Option<f64> {
        let b = self.take(8)?;
        Some(f64::from_le_bytes(b.try_into().ok()?))
    }

    /// Reads an unsigned LEB128 varint. Rejects encodings longer than
    /// [`MAX_UVARINT_LEN`] bytes and ones that overflow 64 bits, so a
    /// corrupt length can never decode to a plausible value.
    pub fn uvarint(&mut self) -> Option<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            let group = u64::from(byte & 0x7F);
            if shift == 63 && group > 1 {
                return None; // overflows u64
            }
            value |= group << shift;
            if byte & 0x80 == 0 {
                return Some(value);
            }
            shift += 7;
            if shift > 63 {
                return None; // longer than 10 bytes
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Record envelopes
// ---------------------------------------------------------------------------

/// Appends a versioned record envelope: `[version u8][body…]`.
///
/// The envelope is how a format revs in place: readers inspect the
/// version byte first and route to the matching body decoder (or
/// degrade gracefully for versions from the future).
pub fn put_record(out: &mut Vec<u8>, version: u8, body: &[u8]) {
    out.push(version);
    out.extend_from_slice(body);
}

/// Splits a record envelope into `(version, body)`. `None` on empty
/// input.
#[must_use]
pub fn record(bytes: &[u8]) -> Option<(u8, &[u8])> {
    let (&version, body) = bytes.split_first()?;
    Some((version, body))
}

// ---------------------------------------------------------------------------
// Length/CRC framing
// ---------------------------------------------------------------------------

/// Bytes of frame overhead: `[len u32 LE][crc32 u32 LE]`.
pub const FRAME_HEADER: usize = 8;

/// Appends one `[len][crc][payload]` frame.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Reads a little-endian `u32` at `offset`, or `None` past the end.
#[must_use]
pub fn le_u32_at(bytes: &[u8], offset: usize) -> Option<u32> {
    let end = offset.checked_add(4)?;
    let slice = bytes.get(offset..end)?;
    Some(u32::from_le_bytes(slice.try_into().ok()?))
}

/// Decodes the frame starting at `offset`: returns `(payload,
/// next_offset)` when the frame is complete and its CRC matches,
/// `None` for a torn or corrupt frame.
#[must_use]
pub fn frame_at(bytes: &[u8], offset: usize) -> Option<(&[u8], usize)> {
    let len = le_u32_at(bytes, offset)? as usize;
    let stored_crc = le_u32_at(bytes, offset + 4)?;
    let start = offset.checked_add(FRAME_HEADER)?;
    let end = start.checked_add(len)?;
    let payload = bytes.get(start..end)?;
    if crc32(payload) != stored_crc {
        return None;
    }
    Some((payload, end))
}

/// Offsets of every intact frame in `bytes` starting at `start`
/// (typically just past a file magic). The final element is the byte
/// offset one past the last intact frame — the "valid length" a
/// recovery pass truncates a torn log to.
#[must_use]
pub fn frame_offsets(bytes: &[u8], start: usize) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut pos = start;
    while let Some((_, next)) = frame_at(bytes, pos) {
        offsets.push(pos);
        pos = next;
    }
    offsets.push(pos);
    offsets
}

// ---------------------------------------------------------------------------
// CountingReader: streaming decode with offset tracking
// ---------------------------------------------------------------------------

/// Errors from streaming decode via [`CountingReader`].
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed (anything but clean truncation).
    Io(io::Error),
    /// The stream ended mid-structure. `offset` is the byte position
    /// the failed read started at.
    Truncated {
        /// Byte position of the read that hit end-of-stream.
        offset: u64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream I/O error: {e}"),
            StreamError::Truncated { offset } => {
                write!(f, "stream truncated at byte {offset}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// A reader that tracks its byte offset so every decode failure can be
/// pinned to the position it happened at. Truncation is reported as
/// [`StreamError::Truncated`], not `Io`: a short stream is a structural
/// defect of the artifact, not a transport failure of the reader.
pub struct CountingReader<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> CountingReader<R> {
    /// Wraps `inner` with the offset at zero.
    pub fn new(inner: R) -> Self {
        CountingReader { inner, offset: 0 }
    }

    /// Byte offset of the next read (advances only on success, so on
    /// error it pins where the failed read began).
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Fills `buf` exactly.
    ///
    /// # Errors
    /// [`StreamError::Truncated`] at the current offset when the stream
    /// ends early; [`StreamError::Io`] for other reader failures.
    pub fn fill(&mut self, buf: &mut [u8]) -> Result<(), StreamError> {
        match self.inner.read_exact(buf) {
            Ok(()) => {
                self.offset += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(StreamError::Truncated {
                offset: self.offset,
            }),
            Err(e) => Err(StreamError::Io(e)),
        }
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// As [`CountingReader::fill`].
    pub fn read_u64(&mut self) -> Result<u64, StreamError> {
        let mut buf = [0u8; 8];
        self.fill(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a little-endian `f64` (bit-exact IEEE-754).
    ///
    /// # Errors
    /// As [`CountingReader::fill`].
    pub fn read_f64(&mut self) -> Result<f64, StreamError> {
        let mut buf = [0u8; 8];
        self.fill(&mut buf)?;
        Ok(f64::from_le_bytes(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8(), Some(0xAB));
        assert_eq!(c.u32(), Some(0xDEAD_BEEF));
        assert_eq!(c.u64(), Some(u64::MAX - 7));
        assert_eq!(c.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(c.f64().map(f64::to_bits), Some(0x7FF8_0000_0000_1234));
        assert!(c.at_end());
        assert_eq!(c.u8(), None);
    }

    #[test]
    fn uvarint_round_trips_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert!(buf.len() <= MAX_UVARINT_LEN);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.uvarint(), Some(v), "value {v}");
            assert!(c.at_end());
        }
    }

    #[test]
    fn uvarint_rejects_overflow_and_overlength() {
        // 11 continuation groups: longer than any valid u64 encoding.
        let over_length = [0x80u8; 10];
        let mut long = over_length.to_vec();
        long.push(0x01);
        assert_eq!(Cursor::new(&long).uvarint(), None);
        // 10 bytes but the top group carries bits past 2^64.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert_eq!(Cursor::new(&overflow).uvarint(), None);
        // Truncated mid-varint.
        assert_eq!(Cursor::new(&[0x80u8]).uvarint(), None);
    }

    #[test]
    fn record_envelope_round_trips() {
        let mut buf = Vec::new();
        put_record(&mut buf, 2, b"body");
        assert_eq!(record(&buf), Some((2u8, &b"body"[..])));
        assert_eq!(record(&[]), None);
    }

    #[test]
    fn frames_walk_and_stop_at_corruption() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"alpha");
        put_frame(&mut buf, b"");
        put_frame(&mut buf, b"beta");
        let offs = frame_offsets(&buf, 0);
        assert_eq!(offs.len(), 4);
        assert_eq!(*offs.last().unwrap(), buf.len());
        let (p0, _) = frame_at(&buf, offs[0]).unwrap();
        assert_eq!(p0, b"alpha");
        let (p1, _) = frame_at(&buf, offs[1]).unwrap();
        assert_eq!(p1, b"");

        // Flip a payload bit in the middle frame: walking stops there.
        let mut bad = buf.clone();
        bad[offs[2] + FRAME_HEADER] ^= 0x10;
        let offs2 = frame_offsets(&bad, 0);
        assert_eq!(offs2.len(), 3);
        assert_eq!(*offs2.last().unwrap(), offs[2]);

        // A torn tail (frame header promises more bytes than exist).
        let torn = &buf[..buf.len() - 2];
        let offs3 = frame_offsets(torn, 0);
        assert_eq!(*offs3.last().unwrap(), offs[2]);
    }

    #[test]
    fn counting_reader_pins_truncation_offset() {
        let bytes = 42u64.to_le_bytes();
        let mut r = CountingReader::new(&bytes[..]);
        assert_eq!(r.read_u64().unwrap(), 42);
        assert_eq!(r.offset(), 8);
        match r.read_u64() {
            Err(StreamError::Truncated { offset: 8 }) => {}
            other => panic!("expected truncation at 8, got {other:?}"),
        }
        // Offset does not advance on failure.
        assert_eq!(r.offset(), 8);
    }

    #[test]
    fn counting_reader_reads_f64_bits() {
        let mut buf = Vec::new();
        write_f64(&mut buf, 1.5).unwrap();
        write_u64(&mut buf, 7).unwrap();
        write_u32(&mut buf, 9).unwrap();
        let mut r = CountingReader::new(&buf[..]);
        assert_eq!(r.read_f64().unwrap().to_bits(), 1.5f64.to_bits());
        assert_eq!(r.read_u64().unwrap(), 7);
        assert_eq!(r.offset(), 16);
    }
}

//! LU factorisation with partial pivoting and linear solves.
//!
//! The Inc-SVD baseline (Li et al., reproduced in `incsim-baselines`)
//! computes SimRank from SVD factors through the Kronecker-product closed
//! form, which requires solving an explicit `r² × r²` linear system — that
//! solve is this module. The `r⁴` memory of the system matrix is exactly the
//! blow-up the paper measures in its Fig. 3 memory experiment.

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result};

/// An LU factorisation `P·A = L·U` with partial (row) pivoting.
pub struct LuFactors {
    /// Combined L (strict lower, unit diagonal implied) and U (upper).
    lu: DenseMatrix,
    /// Row permutation: `perm[k]` is the original row moved to position `k`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

impl LuFactors {
    /// Factorises a square matrix.
    ///
    /// Returns [`LinalgError::Singular`] if a pivot is exactly zero; callers
    /// that can tolerate near-singularity should pre-scale or regularise.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        let n = a.rows();
        if n != a.cols() {
            return Err(LinalgError::ShapeMismatch {
                context: format!("LU requires a square matrix, got {}x{}", a.rows(), a.cols()),
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val == 0.0 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let t = lu.get(k, j);
                    lu.set(k, j, lu.get(pivot_row, j));
                    lu.set(pivot_row, j, t);
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let v = lu.get(i, j) - factor * lu.get(k, j);
                        lu.set(i, j, v);
                    }
                }
            }
        }
        Ok(LuFactors { lu, perm, sign })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                context: format!("solve: rhs length {} != {}", b.len(), n),
            });
        }
        // Forward substitution on P·b with unit-diagonal L.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu.get(i, j) * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu.get(i, j) * x[j];
            }
            x[i] = acc / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Determinant of the factorised matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu.get(i, i);
        }
        d
    }

    /// Heap bytes held (for the paper's memory experiment).
    pub fn heap_bytes(&self) -> usize {
        self.lu.heap_bytes() + self.perm.capacity() * std::mem::size_of::<usize>()
    }
}

/// Convenience one-shot solve of `A·x = b`.
pub fn solve(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>> {
    LuFactors::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // Leading zero forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn residual_is_small_on_random_like_matrix() {
        let n = 12;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                // Deterministic pseudo-random fill, diagonally dominant.
                let v = (((i * 31 + j * 17 + 7) % 23) as f64 - 11.0) / 11.0;
                a.set(i, j, v);
            }
            a.add_to(i, i, 4.0);
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = solve(&a, &b).unwrap();
        let mut ax = vec![0.0; n];
        a.matvec(&x, &mut ax);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-10, "residual too large at {i}");
        }
    }

    #[test]
    fn detects_singular_matrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match LuFactors::new(&a) {
            Err(LinalgError::Singular { .. }) => {}
            other => panic!("expected Singular, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn determinant_matches_manual() {
        let a = DenseMatrix::from_rows(&[&[3.0, 1.0], &[4.0, 2.0]]);
        let lu = LuFactors::new(&a).unwrap();
        assert!((lu.det() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            LuFactors::new(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_rhs_length() {
        let a = DenseMatrix::identity(3);
        let lu = LuFactors::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}

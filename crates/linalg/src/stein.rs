//! Fixed-point solver for the discrete Sylvester ("Stein") equation
//! `X = A·X·Bᵀ + C`.
//!
//! Both forms of SimRank in the paper are Stein equations:
//!
//! * the score matrix itself, `S = C·Q·S·Qᵀ + (1−C)·Iₙ` (Eq. 2), and
//! * the update matrix, `M = C·Q̃·M·Q̃ᵀ + C·u·wᵀ` (Eq. 13) — the rank-one
//!   right-hand side is exactly the structure Inc-uSR exploits.
//!
//! The closed form is the convergent series `X = Σ_k Aᵏ·C·(Bᵀ)ᵏ` (Eq. 25),
//! which this module evaluates by iteration. It is used for ground truth in
//! tests and for the small `r × r` Stein system inside the Inc-SVD closed
//! form; the production incremental path in `incsim-core` never builds
//! matrices this way.

use crate::dense::DenseMatrix;
use crate::{LinalgError, Result};

/// Solves `X = A·X·Bᵀ + C` by Picard iteration `X_{k+1} = A·X_k·Bᵀ + C`,
/// starting from `X_0 = C`.
///
/// Converges when the spectral radii satisfy `ρ(A)·ρ(B) < 1` (always true
/// for SimRank, where `A = √C·Q̃`, `B = √C·Q̃` and `Q̃` is sub-stochastic).
/// Returns an error if `tol` is not reached within `max_iters`.
pub fn solve_stein(
    a: &DenseMatrix,
    b: &DenseMatrix,
    c: &DenseMatrix,
    tol: f64,
    max_iters: usize,
) -> Result<DenseMatrix> {
    if a.rows() != a.cols() || b.rows() != b.cols() {
        return Err(LinalgError::ShapeMismatch {
            context: "solve_stein: A and B must be square".into(),
        });
    }
    if c.rows() != a.rows() || c.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            context: format!(
                "solve_stein: C is {}x{}, expected {}x{}",
                c.rows(),
                c.cols(),
                a.rows(),
                b.rows()
            ),
        });
    }
    let mut x = c.clone();
    for _ in 0..max_iters {
        // X' = A·X·Bᵀ + C
        let ax = a.matmul(&x);
        let mut next = ax.matmul_nt(b);
        next.add_scaled(1.0, c);
        let delta = next.max_abs_diff(&x);
        x = next;
        if delta <= tol {
            return Ok(x);
        }
    }
    Err(LinalgError::NoConvergence {
        routine: "solve_stein",
        iterations: max_iters,
    })
}

/// Evaluates the truncated series `X_K = Σ_{k=0}^{K} Aᵏ·C·(Bᵀ)ᵏ` exactly.
///
/// This matches the `K`-iteration semantics of the paper's algorithms
/// (their "exactness" means convergence to the true solution as `K → ∞`).
pub fn stein_series(a: &DenseMatrix, b: &DenseMatrix, c: &DenseMatrix, k: usize) -> DenseMatrix {
    let mut term = c.clone();
    let mut x = c.clone();
    for _ in 0..k {
        term = a.matmul(&term).matmul_nt(b);
        x.add_scaled(1.0, &term);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_scalar_case() {
        // x = 0.5·x·0.5 + 1  ⇒  x = 1/(1-0.25) = 4/3.
        let a = DenseMatrix::from_diag(&[0.5]);
        let c = DenseMatrix::from_diag(&[1.0]);
        let x = solve_stein(&a, &a, &c, 1e-14, 1000).unwrap();
        assert!((x.get(0, 0) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_point_satisfies_equation() {
        let a = DenseMatrix::from_rows(&[&[0.3, 0.1], &[0.0, 0.4]]);
        let b = DenseMatrix::from_rows(&[&[0.2, 0.0], &[0.3, 0.1]]);
        let c = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = solve_stein(&a, &b, &c, 1e-14, 10_000).unwrap();
        let mut rhs = a.matmul(&x).matmul_nt(&b);
        rhs.add_scaled(1.0, &c);
        assert!(x.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn series_matches_fixed_point_in_the_limit() {
        let a = DenseMatrix::from_rows(&[&[0.5, 0.2], &[0.1, 0.4]]);
        let c = DenseMatrix::identity(2);
        let x_series = stein_series(&a, &a, &c, 200);
        let x_fp = solve_stein(&a, &a, &c, 1e-15, 10_000).unwrap();
        assert!(x_series.max_abs_diff(&x_fp) < 1e-12);
    }

    #[test]
    fn series_truncation_error_bound() {
        // For SimRank-shaped series with ‖A‖ ≤ √C, the tail after K terms is
        // bounded by C^{K+1}/(1−C) in max norm (footnote 18 of the paper has
        // the per-entry bound C^{K+1} for the specific M series).
        let cdamp: f64 = 0.6;
        let a = DenseMatrix::from_diag(&[cdamp.sqrt(), cdamp.sqrt()]);
        let c = DenseMatrix::identity(2);
        let k = 10;
        let xk = stein_series(&a, &a, &c, k);
        let xinf = solve_stein(&a, &a, &c, 1e-16, 100_000).unwrap();
        let bound = cdamp.powi(k as i32 + 1) / (1.0 - cdamp);
        assert!(xk.max_abs_diff(&xinf) <= bound + 1e-12);
    }

    #[test]
    fn divergent_system_reports_no_convergence() {
        let a = DenseMatrix::from_diag(&[1.5]);
        let c = DenseMatrix::from_diag(&[1.0]);
        assert!(matches!(
            solve_stein(&a, &a, &c, 1e-12, 50),
            Err(LinalgError::NoConvergence { .. })
        ));
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = DenseMatrix::zeros(2, 3);
        let c = DenseMatrix::zeros(2, 2);
        assert!(matches!(
            solve_stein(&a, &a, &c, 1e-12, 10),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}

//! Gustavson-style sparse vector accumulator.
//!
//! The pruned Inc-SR iteration (Algorithm 2 of the paper) computes only the
//! entries `[ξ_k]_a` for `a ∈ A_k` and `[η_k]_b` for `b ∈ B_k`. A
//! [`SparseAccumulator`] holds one n-length dense scratch array plus an
//! explicit support list, so that
//!
//! * random-access reads/writes are `O(1)`,
//! * iterating the support is `O(|support|)` (not `O(n)`), and
//! * clearing is `O(|support|)`, letting the workspace be reused across the
//!   `K` iterations without reallocation.
//!
//! This is the standard sparse accumulator ("SPA") from sparse matrix
//! multiplication literature, and is what makes Inc-SR's
//! `O(K(n·d + |AFF|))` bound real in this implementation.

/// A sparse vector of fixed dimension `n` with `O(1)` accumulation and
/// `O(|support|)` iteration/clearing.
#[derive(Clone, Debug)]
pub struct SparseAccumulator {
    values: Vec<f64>,
    occupied: Vec<bool>,
    support: Vec<u32>,
}

impl SparseAccumulator {
    /// Creates an all-zero accumulator of dimension `n`.
    pub fn new(n: usize) -> Self {
        SparseAccumulator {
            values: vec![0.0; n],
            occupied: vec![false; n],
            support: Vec::new(),
        }
    }

    /// Dimension of the vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Number of indices currently in the support.
    ///
    /// Note: entries that were added and later cancelled to exactly `0.0`
    /// remain in the support until [`Self::clear`] or [`Self::prune`];
    /// the affected-area accounting of the paper counts them the same way
    /// (a touched pair stays in `A_k × B_k`).
    #[inline]
    pub fn support_len(&self) -> usize {
        self.support.len()
    }

    /// Current value at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Adds `v` to entry `i`, extending the support if needed.
    #[inline]
    pub fn add(&mut self, i: usize, v: f64) {
        if !self.occupied[i] {
            self.occupied[i] = true;
            self.support.push(i as u32);
        }
        self.values[i] += v;
    }

    /// Sets entry `i` to `v`, extending the support if needed.
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        if !self.occupied[i] {
            self.occupied[i] = true;
            self.support.push(i as u32);
        }
        self.values[i] = v;
    }

    /// Iterates `(index, value)` over the support in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.support
            .iter()
            .map(move |&i| (i, self.values[i as usize]))
    }

    /// The support indices (insertion order, may contain exact zeros).
    #[inline]
    pub fn support(&self) -> &[u32] {
        &self.support
    }

    /// Dot product with a dense slice.
    pub fn dot_dense(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "dot_dense: length mismatch");
        self.iter().map(|(i, v)| v * x[i as usize]).sum()
    }

    /// Copies the sparse contents into `(indices, values)` pairs, dropping
    /// entries with `|v| <= tol`.
    pub fn to_pairs(&self, tol: f64) -> Vec<(u32, f64)> {
        self.iter().filter(|(_, v)| v.abs() > tol).collect()
    }

    /// Resets to the zero vector in `O(|support|)`.
    pub fn clear(&mut self) {
        for &i in &self.support {
            self.values[i as usize] = 0.0;
            self.occupied[i as usize] = false;
        }
        self.support.clear();
    }

    /// Removes support entries whose magnitude is `<= tol` (keeps values).
    pub fn prune(&mut self, tol: f64) {
        let values = &self.values;
        let occupied = &mut self.occupied;
        self.support.retain(|&i| {
            if values[i as usize].abs() > tol {
                true
            } else {
                occupied[i as usize] = false;
                false
            }
        });
        for i in 0..self.values.len() {
            if !self.occupied[i] {
                self.values[i] = 0.0;
            }
        }
    }

    /// Sorts the support indices ascending.
    ///
    /// Scatter/gather loops over the support then touch memory in address
    /// order — on large score matrices this turns random-stride writes into
    /// prefetch-friendly sweeps (the difference between Inc-SR merely
    /// matching and clearly beating Inc-uSR on dense-ish affected areas).
    pub fn sort_support(&mut self) {
        self.support.sort_unstable();
    }

    /// Clones the current contents into a plain dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        self.values.clone()
    }

    /// Heap bytes held (for the paper's memory experiment). The dense
    /// scratch arrays are shared workspace; they are charged once.
    pub fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<f64>()
            + self.occupied.capacity()
            + self.support.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_set_get_roundtrip() {
        let mut s = SparseAccumulator::new(5);
        assert_eq!(s.dim(), 5);
        s.add(3, 1.5);
        s.add(3, 0.5);
        s.set(1, -2.0);
        assert_eq!(s.get(3), 2.0);
        assert_eq!(s.get(1), -2.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.support_len(), 2);
    }

    #[test]
    fn support_tracks_insertion_order_without_duplicates() {
        let mut s = SparseAccumulator::new(4);
        s.add(2, 1.0);
        s.add(0, 1.0);
        s.add(2, 1.0);
        assert_eq!(s.support(), &[2, 0]);
    }

    #[test]
    fn clear_is_complete() {
        let mut s = SparseAccumulator::new(4);
        s.add(1, 3.0);
        s.add(2, 4.0);
        s.clear();
        assert_eq!(s.support_len(), 0);
        for i in 0..4 {
            assert_eq!(s.get(i), 0.0);
        }
        // Reusable after clear.
        s.add(1, 7.0);
        assert_eq!(s.get(1), 7.0);
        assert_eq!(s.support(), &[1]);
    }

    #[test]
    fn dot_dense_matches_manual() {
        let mut s = SparseAccumulator::new(3);
        s.add(0, 2.0);
        s.add(2, -1.0);
        assert_eq!(s.dot_dense(&[1.0, 10.0, 4.0]), 2.0 - 4.0);
    }

    #[test]
    fn prune_drops_tiny_entries() {
        let mut s = SparseAccumulator::new(3);
        s.add(0, 1e-16);
        s.add(1, 1.0);
        s.prune(1e-12);
        assert_eq!(s.support(), &[1]);
        assert_eq!(s.get(0), 0.0);
    }

    #[test]
    fn to_pairs_filters_by_tolerance() {
        let mut s = SparseAccumulator::new(3);
        s.add(0, 1e-16);
        s.add(2, 2.0);
        let pairs = s.to_pairs(1e-12);
        assert_eq!(pairs, vec![(2, 2.0)]);
    }

    #[test]
    fn cancelled_entry_stays_in_support() {
        let mut s = SparseAccumulator::new(3);
        s.add(1, 1.0);
        s.add(1, -1.0);
        assert_eq!(s.get(1), 0.0);
        assert_eq!(s.support_len(), 1, "touched entries count toward AFF");
    }
}

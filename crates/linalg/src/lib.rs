//! # incsim-linalg
//!
//! Dense and sparse linear-algebra substrate for the `incsim` workspace, the
//! reproduction of *"Fast Incremental SimRank on Link-Evolving Graphs"*
//! (Yu, Lin & Zhang, ICDE 2014).
//!
//! Everything here is built from scratch because the reproduction depends on
//! primitives no offline crate provides together:
//!
//! * [`DenseMatrix`] — row-major dense matrices with cache-friendly products,
//!   used for SimRank score matrices `S` and the SVD factors of the Inc-SVD
//!   baseline.
//! * [`CsrMatrix`] — compressed sparse row matrices for the backward
//!   transition matrix `Q`, with the `Q·x`, `Qᵀ·x` and `Q·S` kernels every
//!   SimRank algorithm in the paper is built on.
//! * [`SparseAccumulator`] — Gustavson-style sparse vector workspace used by
//!   the pruned Inc-SR iteration (Algorithm 2).
//! * [`LowRankDelta`] — buffered `ΔS = U·Vᵀ + V·Uᵀ` factors with a fused,
//!   cache-blocked, thread-parallel apply, `O(r)` lazy entry reads (the
//!   deferred update path of the incremental engines), and in-place
//!   rank-truncating recompression ([`LowRankDelta::recompress`]) so long
//!   lazy windows stay at the numerical rank of Δ.
//! * [`qr::qr_thin`] / [`qr::rank_qrcp`] — Householder QR and rank-revealing
//!   QR with column pivoting (numerical rank for the paper's Fig. 2b).
//! * [`svd::jacobi_svd`] / [`svd::truncated_svd`] / [`svd::sym_eigen`] —
//!   one-sided Jacobi SVD, a Halko-style randomized truncated SVD (the
//!   Inc-SVD baseline of Li et al. requires both), and a signed symmetric
//!   Jacobi eigensolver (the ΔS recompression core).
//! * [`lu::LuFactors`] — LU with partial pivoting (the explicit r²×r² solve
//!   in the Inc-SVD closed form).
//! * [`stein::solve_stein`] — fixed-point solver for the (rank-one) Sylvester
//!   / Stein equation `X = A·X·Bᵀ + C` that characterises the SimRank update
//!   matrix ΔS (Eq. 13 of the paper).
//!
//! The crate is deliberately free of `unsafe` code; hot kernels rely on
//! iterator-based inner loops so bounds checks vanish in release builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops over matrix dimensions are the natural idiom in the
// factorisation kernels below; iterator rewrites obscure the mathematics.
#![allow(clippy::needless_range_loop)]

pub mod dense;
pub mod lowrank;
pub mod lu;
pub mod norms;
pub mod qr;
pub mod sparse;
pub mod spvec;
pub mod stein;
pub mod svd;
pub mod vecops;

pub use dense::DenseMatrix;
pub use lowrank::{LowRankDelta, Recompression};
pub use sparse::{CooBuilder, CsrMatrix};
pub use spvec::SparseAccumulator;
pub use svd::{LinOp, Svd};

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// A factorization met a (numerically) singular matrix.
    Singular {
        /// Index of the pivot where singularity was detected.
        pivot: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine that failed.
        routine: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { context } => {
                write!(f, "shape mismatch: {context}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "singular matrix encountered at pivot {pivot}")
            }
            LinalgError::NoConvergence {
                routine,
                iterations,
            } => {
                write!(
                    f,
                    "{routine} failed to converge after {iterations} iterations"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for results of linear-algebra routines.
pub type Result<T> = std::result::Result<T, LinalgError>;

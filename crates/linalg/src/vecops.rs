//! Primitive operations on dense `f64` vectors (slices).
//!
//! SimRank's incremental iteration (Algorithm 1 of the paper) is deliberately
//! phrased in matrix–vector and vector–vector operations; these are the
//! vector–vector half: dot products, SAXPY, scaling, norms.

/// Dot product `xᵀ·y`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// SAXPY update `y ← y + alpha·x`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if alpha == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x ← alpha·x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return max;
    }
    let sum: f64 = x.iter().map(|v| (v / max) * (v / max)).sum();
    max * sum.sqrt()
}

/// Maximum absolute entry `‖x‖_∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Sets every entry of `x` to zero.
#[inline]
pub fn zero(x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi = 0.0;
    }
}

/// Standard basis vector `e_i` of dimension `n`.
///
/// # Panics
/// Panics if `i >= n`.
pub fn unit_vector(n: usize, i: usize) -> Vec<f64> {
    assert!(
        i < n,
        "unit_vector: index {i} out of range for dimension {n}"
    );
    let mut e = vec![0.0; n];
    e[i] = 1.0;
    e
}

/// Returns the indices whose absolute value exceeds `tol` (the *support*).
pub fn support(x: &[f64], tol: f64) -> Vec<usize> {
    x.iter()
        .enumerate()
        .filter(|(_, v)| v.abs() > tol)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn axpy_zero_alpha_is_noop() {
        let mut y = vec![f64::NAN; 0];
        axpy(0.0, &[], &mut y); // must not touch anything
        let mut y = vec![1.0, 2.0];
        axpy(0.0, &[f64::INFINITY, f64::NAN], &mut y);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn norm2_is_scale_safe() {
        let big = 1e200;
        let x = [big, big];
        assert!((norm2(&x) - big * 2f64.sqrt()).abs() < 1e186);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm_inf_basic() {
        assert_eq!(norm_inf(&[1.0, -3.0, 2.0]), 3.0);
    }

    #[test]
    fn unit_vector_basic() {
        let e = unit_vector(4, 2);
        assert_eq!(e, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn support_respects_tolerance() {
        let x = [0.0, 1e-14, -0.5, 2.0];
        assert_eq!(support(&x, 1e-12), vec![2, 3]);
    }

    #[test]
    fn scale_and_zero() {
        let mut x = vec![1.0, -2.0];
        scale(-2.0, &mut x);
        assert_eq!(x, vec![-2.0, 4.0]);
        zero(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}

//! Compressed sparse row (CSR) matrices.
//!
//! The backward transition matrix `Q` of the paper (row-normalised transpose
//! of the adjacency matrix, `[Q]_{i,j} = 1/|I(i)|` iff edge `j → i` exists)
//! is stored in CSR so that the kernels of Algorithm 1 — `Q·x`, `Qᵀ·x`,
//! per-row dot products `[Q]_{b,:}·x`, and the batch kernel `Q·S` — all run
//! in `O(nnz)`.

use crate::dense::DenseMatrix;
use crate::vecops;

/// A sparse `rows × cols` matrix in compressed sparse row format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `indptr[i]..indptr[i+1]` indexes the entries of row `i`.
    indptr: Vec<usize>,
    /// Column indices, sorted within each row.
    indices: Vec<u32>,
    /// Nonzero values, parallel to `indices`.
    values: Vec<f64>,
}

/// Coordinate-format builder that assembles a [`CsrMatrix`].
///
/// Duplicate `(row, col)` entries are summed, matching the usual sparse
/// assembly convention.
#[derive(Clone, Debug, Default)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooBuilder {
    /// Creates a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `v` at `(i, j)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "CooBuilder::push out of bounds"
        );
        self.entries.push((i as u32, j as u32, v));
    }

    /// Number of accumulated (possibly duplicate) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries were pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Assembles the CSR matrix, summing duplicates and dropping exact zeros.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|&(i, j, _)| (i, j));
        let mut indptr = vec![0usize; self.rows + 1];
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut last: Option<(u32, u32)> = None;
        for (i, j, v) in self.entries {
            if last == Some((i, j)) {
                *values.last_mut().expect("non-empty on duplicate") += v;
            } else {
                indptr[i as usize + 1] += 1;
                indices.push(j);
                values.push(v);
                last = Some((i, j));
            }
        }
        for i in 0..self.rows {
            indptr[i + 1] += indptr[i];
        }
        let mut csr = CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        };
        csr.drop_zeros(0.0);
        csr
    }
}

impl CsrMatrix {
    /// Creates an empty (all-zero) `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix directly from per-row `(col, value)` lists.
    ///
    /// # Panics
    /// Panics if any column index is out of range or a row is unsorted.
    pub fn from_rows(rows: usize, cols: usize, row_entries: &[Vec<(u32, f64)>]) -> Self {
        assert_eq!(row_entries.len(), rows, "from_rows: row count mismatch");
        let nnz: usize = row_entries.iter().map(Vec::len).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for row in row_entries {
            let mut prev: Option<u32> = None;
            for &(j, v) in row {
                assert!((j as usize) < cols, "from_rows: column out of range");
                assert!(prev.is_none_or(|p| p < j), "from_rows: unsorted row");
                prev = Some(j);
                indices.push(j);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The `(column, value)` entries of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let span = self.indptr[i]..self.indptr[i + 1];
        self.indices[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// Number of nonzeros in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Value at `(i, j)` (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let span = self.indptr[i]..self.indptr[i + 1];
        match self.indices[span.clone()].binary_search(&(j as u32)) {
            Ok(pos) => self.values[span.start + pos],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `y = A·x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.rows, "matvec: y length mismatch");
        for i in 0..self.rows {
            let span = self.indptr[i]..self.indptr[i + 1];
            let mut acc = 0.0;
            for (&j, &v) in self.indices[span.clone()].iter().zip(&self.values[span]) {
                acc += v * x[j as usize];
            }
            y[i] = acc;
        }
    }

    /// Transposed sparse matrix–vector product `y = Aᵀ·x`.
    pub fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t: y length mismatch");
        vecops::zero(y);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let span = self.indptr[i]..self.indptr[i + 1];
            for (&j, &v) in self.indices[span.clone()].iter().zip(&self.values[span]) {
                y[j as usize] += v * xi;
            }
        }
    }

    /// Dot product of row `i` with a dense vector: `[A]_{i,:}·x`.
    ///
    /// This is the `[Q]_{b,:}·[S]_{:,i}` memoisation of Algorithm 2, line 3.
    #[inline]
    pub fn row_dot(&self, i: usize, x: &[f64]) -> f64 {
        let span = self.indptr[i]..self.indptr[i + 1];
        self.indices[span.clone()]
            .iter()
            .zip(&self.values[span])
            .map(|(&j, &v)| v * x[j as usize])
            .sum()
    }

    /// Sparse–dense product `C = A·B` (`B`, `C` dense), row-parallel when
    /// `threads > 1`.
    ///
    /// This is the batch-SimRank kernel: with `A = Q` and `B = S` it computes
    /// one half of `Q·S·Qᵀ` in `O(nnz(Q)·n)`.
    pub fn mul_dense(&self, b: &DenseMatrix, threads: usize) -> DenseMatrix {
        assert_eq!(self.cols, b.rows(), "mul_dense: inner dimension mismatch");
        let mut c = DenseMatrix::zeros(self.rows, b.cols());
        let cols = b.cols();
        if threads <= 1 || self.rows < 64 {
            for i in 0..self.rows {
                let span = self.indptr[i]..self.indptr[i + 1];
                let c_row = c.row_mut(i);
                for (&j, &v) in self.indices[span.clone()].iter().zip(&self.values[span]) {
                    vecops::axpy(v, b.row(j as usize), c_row);
                }
            }
            return c;
        }
        let chunk_rows = self.rows.div_ceil(threads);
        std::thread::scope(|scope| {
            for (start_row, chunk) in c.par_row_chunks_mut(chunk_rows) {
                let nrows = chunk.len() / cols;
                scope.spawn(move || {
                    for local in 0..nrows {
                        let i = start_row + local;
                        let span = self.indptr[i]..self.indptr[i + 1];
                        let c_row = &mut chunk[local * cols..(local + 1) * cols];
                        for (&j, &v) in self.indices[span.clone()].iter().zip(&self.values[span]) {
                            vecops::axpy(v, b.row(j as usize), c_row);
                        }
                    }
                });
            }
        });
        c
    }

    /// Materialises the transpose in CSR form.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j as usize + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.rows {
            let span = self.indptr[i]..self.indptr[i + 1];
            for (&j, &v) in self.indices[span.clone()].iter().zip(&self.values[span]) {
                let pos = next[j as usize];
                indices[pos] = i as u32;
                values[pos] = v;
                next[j as usize] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Converts to a dense matrix (test/debug helper; `O(rows·cols)`).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                d.add_to(i, j as usize, v);
            }
        }
        d
    }

    /// Removes stored entries with `|value| <= tol`.
    pub fn drop_zeros(&mut self, tol: f64) {
        let mut indptr = vec![0usize; self.rows + 1];
        let mut w = 0usize;
        let mut read = 0usize;
        for i in 0..self.rows {
            let end = self.indptr[i + 1];
            while read < end {
                if self.values[read].abs() > tol {
                    self.indices[w] = self.indices[read];
                    self.values[w] = self.values[read];
                    w += 1;
                }
                read += 1;
            }
            indptr[i + 1] = w;
        }
        self.indices.truncate(w);
        self.values.truncate(w);
        self.indptr = indptr;
    }

    /// Frobenius norm of the stored entries.
    pub fn norm_fro(&self) -> f64 {
        vecops::norm2(&self.values)
    }

    /// Heap bytes held (for the paper's memory experiment).
    pub fn heap_bytes(&self) -> usize {
        self.indptr.capacity() * std::mem::size_of::<usize>()
            + self.indices.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<f64>()
    }
}

impl crate::svd::LinOp for CsrMatrix {
    fn nrows(&self) -> usize {
        self.rows
    }
    fn ncols(&self) -> usize {
        self.cols
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_t(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(2, 0, 3.0);
        b.push(2, 1, 4.0);
        b.build()
    }

    #[test]
    fn builder_assembles_sorted_rows() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn builder_sums_duplicates_and_drops_zeros() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.0);
        b.push(1, 1, 5.0);
        b.push(1, 1, -5.0);
        let m = b.build();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1, "exact-zero sum should be dropped");
    }

    #[test]
    fn matvec_and_transpose_agree_with_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = [1.0, -2.0, 0.5];
        let mut ys = vec![0.0; 3];
        let mut yd = vec![0.0; 3];
        m.matvec(&x, &mut ys);
        d.matvec(&x, &mut yd);
        assert_eq!(ys, yd);

        let mut ts = vec![0.0; 3];
        let mut td = vec![0.0; 3];
        m.matvec_t(&x, &mut ts);
        d.matvec_t(&x, &mut td);
        assert_eq!(ts, td);

        assert_eq!(m.transpose().to_dense(), d.transpose());
        // Transposing twice round-trips.
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn row_dot_matches_dense_row() {
        let m = sample();
        let x = [2.0, 1.0, -1.0];
        assert_eq!(m.row_dot(0, &x), 1.0 * 2.0 + -2.0);
        assert_eq!(m.row_dot(1, &x), 0.0);
        assert_eq!(m.row_dot(2, &x), 3.0 * 2.0 + 4.0 * 1.0);
    }

    #[test]
    fn mul_dense_single_and_multi_thread_agree() {
        let m = sample();
        let b = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let c1 = m.mul_dense(&b, 1);
        let expected = m.to_dense().matmul(&b);
        assert!(c1.max_abs_diff(&expected) < 1e-14);
        // The threaded path needs >= 64 rows; build a bigger random-ish case.
        let n = 130;
        let mut builder = CooBuilder::new(n, n);
        for i in 0..n {
            builder.push(i, (i * 7 + 3) % n, 1.0 + i as f64 * 0.01);
            builder.push(i, (i * 13 + 1) % n, -0.5);
        }
        let big = builder.build();
        let mut dense = DenseMatrix::zeros(n, 4);
        for i in 0..n {
            for j in 0..4 {
                dense.set(i, j, ((i * 4 + j) % 11) as f64 - 5.0);
            }
        }
        let seq = big.mul_dense(&dense, 1);
        let par = big.mul_dense(&dense, 4);
        assert!(seq.max_abs_diff(&par) < 1e-12);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = CsrMatrix::from_rows(2, 3, &[vec![(0, 1.0), (2, 2.0)], vec![(1, -1.0)]]);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), -1.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "unsorted row")]
    fn from_rows_rejects_unsorted() {
        let _ = CsrMatrix::from_rows(1, 3, &[vec![(2, 1.0), (0, 1.0)]]);
    }

    #[test]
    fn drop_zeros_removes_small_entries() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1e-15);
        b.push(1, 1, 1.0);
        let mut m = b.build();
        assert_eq!(m.nnz(), 2);
        m.drop_zeros(1e-12);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 1), 1.0);
    }

    #[test]
    fn empty_matrix_behaves() {
        let m = CsrMatrix::zeros(3, 3);
        assert_eq!(m.nnz(), 0);
        let mut y = vec![1.0; 3];
        m.matvec(&[1.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }
}

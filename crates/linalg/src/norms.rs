//! Matrix norms and spectral estimates.
//!
//! §IV of the paper quantifies the Inc-SVD approximation error through
//! spectral norms (e.g. `‖Q̃ − Ũ·Σ̃·Ṽᵀ‖₂ = 1` in Example 3); the power
//! iteration here reproduces those measurements without a full SVD.

use crate::dense::DenseMatrix;
use crate::svd::LinOp;
use crate::vecops;

/// Spectral norm `‖A‖₂` estimated by power iteration on `AᵀA`.
///
/// Deterministic start vector, `iters` iterations (30 is plenty for the
/// diagnostics in this workspace; the estimate is a lower bound that
/// converges rapidly unless the top two singular values are nearly equal).
pub fn spectral_norm_est<O: LinOp>(a: &O, iters: usize) -> f64 {
    let n = a.ncols();
    let m = a.nrows();
    if n == 0 || m == 0 {
        return 0.0;
    }
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    let nrm = vecops::norm2(&x);
    vecops::scale(1.0 / nrm, &mut x);
    let mut y = vec![0.0; m];
    let mut sigma = 0.0;
    for _ in 0..iters {
        a.apply(&x, &mut y);
        sigma = vecops::norm2(&y);
        if sigma == 0.0 {
            return 0.0;
        }
        a.apply_t(&y, &mut x);
        let nx = vecops::norm2(&x);
        if nx == 0.0 {
            return sigma;
        }
        vecops::scale(1.0 / nx, &mut x);
    }
    sigma
}

/// Frobenius norm of the difference `‖A − B‖_F`.
pub fn diff_fro(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    assert_eq!(a.rows(), b.rows(), "diff_fro: row mismatch");
    assert_eq!(a.cols(), b.cols(), "diff_fro: col mismatch");
    let mut acc = 0.0;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        let d = x - y;
        acc += d * d;
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectral_norm_of_diagonal() {
        let a = DenseMatrix::from_diag(&[3.0, 1.0, 2.0]);
        let est = spectral_norm_est(&a, 50);
        assert!((est - 3.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn spectral_norm_of_zero_matrix() {
        let a = DenseMatrix::zeros(3, 3);
        assert_eq!(spectral_norm_est(&a, 10), 0.0);
    }

    #[test]
    fn spectral_norm_of_paper_example_3_residual() {
        // Example 3: ‖[0 1; 1 0] − [0 1; 0 0]‖₂ = ‖[0 0; 1 0]‖₂ = 1.
        let d = DenseMatrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0]]);
        let est = spectral_norm_est(&d, 50);
        assert!((est - 1.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn diff_fro_basic() {
        let a = DenseMatrix::identity(2);
        let b = DenseMatrix::zeros(2, 2);
        assert!((diff_fro(&a, &b) - 2f64.sqrt()).abs() < 1e-12);
    }
}

//! Householder QR decomposition and rank-revealing QR with column pivoting.
//!
//! * [`qr_thin`] produces the *thin* factorisation `A = Q·R` with
//!   column-orthonormal `Q` — the orthonormalisation step of the randomized
//!   truncated SVD used by the Inc-SVD baseline.
//! * [`rank_qrcp`] estimates numerical rank through QR with column pivoting.
//!   The paper's Fig. 2b reports `rank/n` of real graphs' transition matrices
//!   to show the lossless-SVD rank is *not* negligibly smaller than `n`;
//!   this routine regenerates that figure without paying for a full SVD.

use crate::dense::DenseMatrix;

/// Thin QR factorisation `A = Q·R` of an `m × n` matrix with `m ≥ n`.
///
/// Returns `(Q, R)` with `Q` of shape `m × n` (column-orthonormal) and `R`
/// of shape `n × n` (upper triangular).
///
/// # Panics
/// Panics if `m < n`.
pub fn qr_thin(a: &DenseMatrix) -> (DenseMatrix, DenseMatrix) {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "qr_thin requires a tall matrix, got {m}x{n}");

    // Work on a copy; store Householder vectors in-place below the diagonal
    // and keep R's diagonal in a side vector.
    let mut work = a.clone();
    let mut betas = vec![0.0; n];
    let mut r_diag = vec![0.0; n];

    for k in 0..n {
        // Build the Householder reflector for column k, rows k..m.
        let mut norm_sq = 0.0;
        for i in k..m {
            let v = work.get(i, k);
            norm_sq += v * v;
        }
        let norm = norm_sq.sqrt();
        if norm == 0.0 {
            betas[k] = 0.0;
            continue;
        }
        let akk = work.get(k, k);
        let alpha = if akk >= 0.0 { -norm } else { norm };
        // v = x - alpha*e1, stored in place (v_k overwrites a_kk).
        let v0 = akk - alpha;
        work.set(k, k, v0);
        // beta = 2 / (vᵀv)
        let mut vtv = 0.0;
        for i in k..m {
            let v = work.get(i, k);
            vtv += v * v;
        }
        if vtv == 0.0 {
            betas[k] = 0.0;
            continue;
        }
        let beta = 2.0 / vtv;
        betas[k] = beta;

        // Apply reflector to the remaining columns: A ← (I - beta v vᵀ) A.
        for j in (k + 1)..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += work.get(i, k) * work.get(i, j);
            }
            let coeff = beta * dot;
            for i in k..m {
                let v = work.get(i, k);
                work.add_to(i, j, -coeff * v);
            }
        }
        r_diag[k] = alpha;
    }

    // Extract R (upper triangle; diagonal from the side vector).
    let mut r = DenseMatrix::zeros(n, n);
    for i in 0..n {
        r.set(i, i, r_diag[i]);
        for j in (i + 1)..n {
            r.set(i, j, work.get(i, j));
        }
    }

    // Accumulate thin Q by applying reflectors to the first n columns of I.
    let mut q = DenseMatrix::zeros(m, n);
    for j in 0..n {
        q.set(j, j, 1.0);
    }
    for k in (0..n).rev() {
        let beta = betas[k];
        if beta == 0.0 {
            continue;
        }
        for j in 0..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += work.get(i, k) * q.get(i, j);
            }
            let coeff = beta * dot;
            for i in k..m {
                let v = work.get(i, k);
                q.add_to(i, j, -coeff * v);
            }
        }
    }
    (q, r)
}

/// Numerical rank via QR with column pivoting.
///
/// Returns the number of diagonal entries of `R` with
/// `|r_kk| > tol · |r_00|`. The tolerance is **relative to the largest
/// pivot magnitude `|r_00|`** — the convention shared with
/// [`crate::svd::Svd::rank`] (relative to `σ_max`), so a scaled matrix
/// `αA` reports the same rank as `A`. With `tol = ε·max(m,n)` this
/// matches the usual SVD-based numerical-rank definition closely on
/// well-behaved matrices.
pub fn rank_qrcp(a: &DenseMatrix, tol: f64) -> usize {
    let m = a.rows();
    let n = a.cols();
    let mut work = a.clone();
    let kmax = m.min(n);

    // Column squared norms for pivot selection.
    let mut col_norms: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| work.get(i, j) * work.get(i, j)).sum())
        .collect();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut first_pivot_mag = 0.0f64;
    let mut rank = 0usize;

    for k in 0..kmax {
        // Select the pivot column with the largest remaining norm.
        let (pivot, &max_norm) = col_norms[k..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("column norms are finite"))
            .map(|(off, v)| (k + off, v))
            .expect("non-empty remaining columns");
        if pivot != k {
            for i in 0..m {
                let t = work.get(i, k);
                work.set(i, k, work.get(i, pivot));
                work.set(i, pivot, t);
            }
            col_norms.swap(k, pivot);
            perm.swap(k, pivot);
        }
        if max_norm <= 0.0 {
            break;
        }

        // Householder on column k.
        let mut norm_sq = 0.0;
        for i in k..m {
            let v = work.get(i, k);
            norm_sq += v * v;
        }
        let norm = norm_sq.sqrt();
        if k == 0 {
            first_pivot_mag = norm;
            if norm == 0.0 {
                return 0;
            }
        }
        if norm <= tol * first_pivot_mag {
            break;
        }
        rank += 1;

        let akk = work.get(k, k);
        let alpha = if akk >= 0.0 { -norm } else { norm };
        let v0 = akk - alpha;
        work.set(k, k, v0);
        let mut vtv = 0.0;
        for i in k..m {
            let v = work.get(i, k);
            vtv += v * v;
        }
        if vtv > 0.0 {
            let beta = 2.0 / vtv;
            for j in (k + 1)..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += work.get(i, k) * work.get(i, j);
                }
                let coeff = beta * dot;
                for i in k..m {
                    let v = work.get(i, k);
                    work.add_to(i, j, -coeff * v);
                }
            }
        }
        // Downdate column norms for the remaining columns.
        for j in (k + 1)..n {
            let r_kj = work.get(k, j);
            col_norms[j] = (col_norms[j] - r_kj * r_kj).max(0.0);
        }
    }
    rank
}

/// Orthonormal range basis via QR with column pivoting.
///
/// Returns `Q_r` of shape `m × r`, whose columns span the column space of
/// `a` up to the truncation tolerance: the factorisation stops at the
/// first pivot column whose remaining norm falls to
/// `tol · |r_00|` (the same relative-to-largest-pivot convention as
/// [`rank_qrcp`]), so `r` is the numerical rank and the cost is
/// `O(m·n·r)` — early termination, never the full `O(m·n²)` unless the
/// matrix genuinely has full rank at `tol`.
///
/// `‖A − Q_r·Q_rᵀ·A‖` is bounded by the trailing column norms at the
/// stopping point, i.e. `≤ tol·|r_00|·√(n−r)`. A zero matrix yields an
/// `m × 0` basis.
pub fn qrcp_range(a: &DenseMatrix, tol: f64) -> DenseMatrix {
    let m = a.rows();
    let n = a.cols();
    let mut work = a.clone();
    let kmax = m.min(n);

    let mut col_norms: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| work.get(i, j) * work.get(i, j)).sum())
        .collect();
    let mut betas = vec![0.0; kmax];
    let mut first_pivot_mag = 0.0f64;
    let mut rank = 0usize;

    for k in 0..kmax {
        let (pivot, &max_norm) = col_norms[k..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("column norms are finite"))
            .map(|(off, v)| (k + off, v))
            .expect("non-empty remaining columns");
        if pivot != k {
            for i in 0..m {
                let t = work.get(i, k);
                work.set(i, k, work.get(i, pivot));
                work.set(i, pivot, t);
            }
            col_norms.swap(k, pivot);
        }
        if max_norm <= 0.0 {
            break;
        }

        let mut norm_sq = 0.0;
        for i in k..m {
            let v = work.get(i, k);
            norm_sq += v * v;
        }
        let norm = norm_sq.sqrt();
        if k == 0 {
            first_pivot_mag = norm;
            if norm == 0.0 {
                break;
            }
        }
        if norm <= tol * first_pivot_mag {
            break;
        }

        let akk = work.get(k, k);
        let alpha = if akk >= 0.0 { -norm } else { norm };
        let v0 = akk - alpha;
        work.set(k, k, v0);
        let mut vtv = 0.0;
        for i in k..m {
            let v = work.get(i, k);
            vtv += v * v;
        }
        if vtv == 0.0 {
            break;
        }
        let beta = 2.0 / vtv;
        betas[k] = beta;
        rank += 1;

        for j in (k + 1)..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += work.get(i, k) * work.get(i, j);
            }
            let coeff = beta * dot;
            for i in k..m {
                let v = work.get(i, k);
                work.add_to(i, j, -coeff * v);
            }
        }
        for j in (k + 1)..n {
            let r_kj = work.get(k, j);
            col_norms[j] = (col_norms[j] - r_kj * r_kj).max(0.0);
        }
    }

    // Accumulate Q_r by applying the reflectors, in reverse, to the
    // leading r columns of the identity.
    let mut q = DenseMatrix::zeros(m, rank);
    for j in 0..rank {
        q.set(j, j, 1.0);
    }
    for k in (0..rank).rev() {
        let beta = betas[k];
        if beta == 0.0 {
            continue;
        }
        for j in 0..rank {
            let mut dot = 0.0;
            for i in k..m {
                dot += work.get(i, k) * q.get(i, j);
            }
            let coeff = beta * dot;
            for i in k..m {
                let v = work.get(i, k);
                q.add_to(i, j, -coeff * v);
            }
        }
    }
    q
}

/// Orthonormality defect `‖QᵀQ − I‖_max` (test/diagnostic helper).
pub fn orthonormality_defect(q: &DenseMatrix) -> f64 {
    let n = q.cols();
    let mut defect = 0.0f64;
    for i in 0..n {
        for j in i..n {
            let mut dot = 0.0;
            for k in 0..q.rows() {
                dot += q.get(k, i) * q.get(k, j);
            }
            let target = if i == j { 1.0 } else { 0.0 };
            defect = defect.max((dot - target).abs());
        }
    }
    defect
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(q: &DenseMatrix, r: &DenseMatrix) -> DenseMatrix {
        q.matmul(r)
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 9.0]]);
        let (q, r) = qr_thin(&a);
        assert_eq!(q.rows(), 4);
        assert_eq!(q.cols(), 2);
        assert!(orthonormality_defect(&q) < 1e-12);
        assert!(reconstruct(&q, &r).max_abs_diff(&a) < 1e-12);
        // R upper triangular.
        assert!(r.get(1, 0).abs() < 1e-14);
    }

    #[test]
    fn qr_handles_square_identity() {
        let a = DenseMatrix::identity(3);
        let (q, r) = qr_thin(&a);
        assert!(orthonormality_defect(&q) < 1e-14);
        assert!(reconstruct(&q, &r).max_abs_diff(&a) < 1e-14);
    }

    #[test]
    fn qr_handles_zero_column() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 0.0]]);
        let (q, r) = qr_thin(&a);
        assert!(reconstruct(&q, &r).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn rank_of_identity_is_full() {
        let a = DenseMatrix::identity(5);
        assert_eq!(rank_qrcp(&a, 1e-10), 5);
    }

    #[test]
    fn rank_of_rank_one_matrix_is_one() {
        // a = x·yᵀ
        let mut a = DenseMatrix::zeros(4, 4);
        a.rank_one_update(1.0, &[1.0, 2.0, 3.0, 4.0], &[2.0, -1.0, 0.5, 3.0]);
        assert_eq!(rank_qrcp(&a, 1e-10), 1);
    }

    #[test]
    fn rank_of_paper_example_2_matrix() {
        // Q = [0 1; 0 0] from Example 2 has rank 1.
        let q = DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        assert_eq!(rank_qrcp(&q, 1e-12), 1);
    }

    #[test]
    fn rank_of_zero_matrix_is_zero() {
        let a = DenseMatrix::zeros(3, 3);
        assert_eq!(rank_qrcp(&a, 1e-12), 0);
    }

    #[test]
    fn qrcp_range_spans_a_low_rank_symmetric_matrix() {
        // Rank-2 symmetric: x·xᵀ + y·yᵀ scaled differently.
        let x = [1.0, -2.0, 0.5, 3.0, 0.0];
        let y = [0.0, 1.0, 1.0, -1.0, 2.0];
        let mut a = DenseMatrix::zeros(5, 5);
        a.rank_one_update(2.0, &x, &x);
        a.rank_one_update(-0.5, &y, &y);
        let q = qrcp_range(&a, 1e-12);
        assert_eq!(q.cols(), 2);
        assert!(orthonormality_defect(&q) < 1e-12);
        // A ≈ Q·Qᵀ·A: the basis captures the whole column space.
        let proj = q.matmul(&q.matmul_tn(&a));
        assert!(proj.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn qrcp_range_of_zero_matrix_is_empty() {
        let a = DenseMatrix::zeros(4, 4);
        let q = qrcp_range(&a, 1e-12);
        assert_eq!(q.cols(), 0);
        assert_eq!(q.rows(), 4);
    }

    #[test]
    fn qrcp_range_full_rank_recovers_everything() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let q = qrcp_range(&a, 1e-14);
        assert_eq!(q.cols(), 3);
        let proj = q.matmul(&q.matmul_tn(&a));
        assert!(proj.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn rank_detects_dependent_columns() {
        // Third column = col0 + col1.
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0], &[2.0, 1.0, 3.0]]);
        assert_eq!(rank_qrcp(&a, 1e-10), 2);
    }
}

//! Row-major dense matrices.
//!
//! [`DenseMatrix`] backs the SimRank score matrix `S`, the update matrix `M`
//! of Algorithm 1 (Inc-uSR keeps `M` dense — that is exactly its `O(n²)`
//! space cost the paper contrasts with Inc-SR), and the factor matrices of
//! the Inc-SVD baseline.

use crate::vecops;

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// Row-major layout keeps the hot SimRank kernels (`Q·S`, outer-product
/// accumulation `M += ξ·ηᵀ`) streaming over contiguous memory.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DenseMatrix({}x{})", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            for j in 0..show_cols {
                write!(f, "{:>9.4}", self.get(i, j))?;
                if j + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "{}]", if self.cols > show_cols { ", …" } else { "" })?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        DenseMatrix { rows, cols, data }
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix::from_vec(r, c, data)
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = DenseMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to entry `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a new vector. Prefer [`Self::col_into`] on
    /// hot paths — it reuses the caller's buffer instead of allocating.
    pub fn col(&self, j: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.col_into(j, &mut out);
        out
    }

    /// Copies column `j` into `out` without allocating (strided gather).
    ///
    /// # Panics
    /// Panics if `out.len() != rows` or `j >= cols`.
    pub fn col_into(&self, j: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows, "col_into: out length mismatch");
        assert!(j < self.cols, "col_into: column out of range");
        for (o, chunk) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *o = chunk[j];
        }
    }

    /// The underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major data, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Splits the matrix into disjoint chunks of whole rows (for
    /// `std::thread::scope`-based parallel kernels). Each chunk holds
    /// `chunk_rows * cols` numbers except possibly the last.
    pub fn par_row_chunks_mut(
        &mut self,
        chunk_rows: usize,
    ) -> impl Iterator<Item = (usize, &mut [f64])> {
        let cols = self.cols;
        self.data
            .chunks_mut(chunk_rows.max(1) * cols)
            .enumerate()
            .map(move |(k, chunk)| (k * chunk_rows.max(1), chunk))
    }

    /// Fills the matrix with zeros, keeping the allocation.
    pub fn fill_zero(&mut self) {
        vecops::zero(&mut self.data);
    }

    /// Matrix transpose (new allocation).
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.rows, "matvec: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = vecops::dot(self.row(i), x);
        }
    }

    /// Transposed matrix–vector product `y = Aᵀ·x`.
    pub fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x length mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t: y length mismatch");
        vecops::zero(y);
        for (i, &xi) in x.iter().enumerate() {
            vecops::axpy(xi, self.row(i), y);
        }
    }

    /// Matrix product `C = A·B` with the cache-friendly i-k-j loop order.
    ///
    /// # Panics
    /// Panics if `self.cols != b.rows`.
    pub fn matmul(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, b.rows,
            "matmul: inner dimensions {}x{} · {}x{}",
            self.rows, self.cols, b.rows, b.cols
        );
        let mut c = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            // SAFETY-free split: write row i of C while reading rows of B.
            let c_row_range = i * c.cols..(i + 1) * c.cols;
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                let c_row = &mut c.data[c_row_range.clone()];
                vecops::axpy(aik, b_row, c_row);
            }
        }
        c
    }

    /// Matrix product with the transpose of `b`: `C = A·Bᵀ`.
    ///
    /// Implemented as dot products of contiguous rows, so it is as
    /// cache-friendly as `matmul`.
    pub fn matmul_nt(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, b.cols,
            "matmul_nt: inner dimensions {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, b.rows, b.cols
        );
        let mut c = DenseMatrix::zeros(self.rows, b.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..b.rows {
                let v = vecops::dot(a_row, b.row(j));
                c.set(i, j, v);
            }
        }
        c
    }

    /// Matrix product with the transpose of `a`: `C = Aᵀ·B`.
    pub fn matmul_tn(&self, b: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.rows, b.rows,
            "matmul_tn: inner dimensions ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, b.rows, b.cols
        );
        let mut c = DenseMatrix::zeros(self.cols, b.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = b.row(k);
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let c_row = c.row_mut(i);
                vecops::axpy(aki, b_row, c_row);
            }
        }
        c
    }

    /// In-place scaled addition `self ← self + alpha·other`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, alpha: f64, other: &DenseMatrix) {
        assert_eq!(self.rows, other.rows, "add_scaled: row mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled: col mismatch");
        vecops::axpy(alpha, &other.data, &mut self.data);
    }

    /// In-place scaling `self ← alpha·self`.
    pub fn scale(&mut self, alpha: f64) {
        vecops::scale(alpha, &mut self.data);
    }

    /// Rank-one update `self ← self + alpha·x·yᵀ`.
    ///
    /// This is the `M_{k+1} = ξ_{k+1}·η_{k+1}ᵀ + M_k` step of Algorithm 1.
    pub fn rank_one_update(&mut self, alpha: f64, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.rows, "rank_one_update: x length mismatch");
        assert_eq!(y.len(), self.cols, "rank_one_update: y length mismatch");
        for (i, &xi) in x.iter().enumerate() {
            let coeff = alpha * xi;
            if coeff == 0.0 {
                continue;
            }
            vecops::axpy(coeff, y, self.row_mut(i));
        }
    }

    /// Symmetric rank-two update `self ← self + alpha·(x·yᵀ + y·xᵀ)`.
    ///
    /// This is how Inc-uSR folds `ΔS = Σ_k (ξ_k·η_kᵀ + η_k·ξ_kᵀ)` directly
    /// into the score matrix without materialising the `n × n` update
    /// matrix `M` — the reason its intermediate memory is `O(n)` vectors
    /// (the paper's Fig. 3 shows Inc-uSR far below Inc-SVD).
    /// Single pass over the rows: row `a` gets `alpha·(x_a·y + y_a·x)`.
    pub fn add_sym_outer(&mut self, alpha: f64, x: &[f64], y: &[f64]) {
        assert_eq!(self.rows, self.cols, "add_sym_outer: not square");
        assert_eq!(x.len(), self.rows, "add_sym_outer: x length mismatch");
        assert_eq!(y.len(), self.rows, "add_sym_outer: y length mismatch");
        for a in 0..self.rows {
            let (xa, ya) = (alpha * x[a], alpha * y[a]);
            let row = self.row_mut(a);
            if xa != 0.0 {
                vecops::axpy(xa, y, row);
            }
            if ya != 0.0 {
                vecops::axpy(ya, x, row);
            }
        }
    }

    /// Adds the transpose of `self` into `self`: `self ← self + selfᵀ`.
    ///
    /// Used for `ΔS = M + Mᵀ` (Eq. 12). Only valid on square matrices.
    pub fn add_transpose_in_place(&mut self) {
        assert_eq!(self.rows, self.cols, "add_transpose_in_place: not square");
        for i in 0..self.rows {
            // Diagonal doubles; off-diagonals symmetrise.
            let d = self.get(i, i);
            self.set(i, i, 2.0 * d);
            for j in (i + 1)..self.cols {
                let s = self.get(i, j) + self.get(j, i);
                self.set(i, j, s);
                self.set(j, i, s);
            }
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        vecops::norm2(&self.data)
    }

    /// Max-absolute-entry norm `‖·‖_max`.
    pub fn norm_max(&self) -> f64 {
        vecops::norm_inf(&self.data)
    }

    /// Maximum absolute entry-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "max_abs_diff: row mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff: col mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Number of entries with absolute value above `tol`.
    pub fn count_nonzero(&self, tol: f64) -> usize {
        self.data.iter().filter(|v| v.abs() > tol).count()
    }

    /// Heap bytes held by this matrix (for the paper's memory experiment).
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn identity_and_get_set() {
        let mut m = DenseMatrix::identity(3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        m.set(0, 1, 5.0);
        m.add_to(0, 1, 1.0);
        assert_eq!(m.get(0, 1), 6.0);
    }

    #[test]
    fn col_and_col_into_agree() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        let mut buf = vec![0.0; 2];
        m.col_into(2, &mut buf);
        assert_eq!(buf, vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "col_into: out length mismatch")]
    fn col_into_rejects_wrong_length() {
        let m = DenseMatrix::zeros(3, 2);
        let mut buf = vec![0.0; 2];
        m.col_into(0, &mut buf);
    }

    #[test]
    fn from_rows_and_transpose() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut y = vec![0.0; 3];
        m.matvec(&[1.0, -1.0], &mut y);
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
        let mut z = vec![0.0; 2];
        m.matvec_t(&[1.0, 1.0, 1.0], &mut z);
        assert_eq!(z, vec![9.0, 12.0]);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_tn_consistent_with_matmul() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 0.5], &[3.0, -4.0, 2.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 1.0, -1.0], &[0.0, 8.0, 2.5]]);
        // A·Bᵀ
        let c1 = a.matmul_nt(&b);
        let c2 = a.matmul(&b.transpose());
        assert!(c1.max_abs_diff(&c2) < 1e-14);
        // Aᵀ·B
        let d1 = a.matmul_tn(&b);
        let d2 = a.transpose().matmul(&b);
        assert!(d1.max_abs_diff(&d2) < 1e-14);
    }

    #[test]
    fn rank_one_update_is_outer_product() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.rank_one_update(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[2.0, 4.0, 6.0]);
        assert_eq!(m.row(1), &[-2.0, -4.0, -6.0]);
    }

    #[test]
    fn add_sym_outer_matches_two_rank_one_updates() {
        let x = [1.0, -2.0, 0.5];
        let y = [3.0, 0.0, 4.0];
        let mut a = DenseMatrix::zeros(3, 3);
        a.add_sym_outer(2.0, &x, &y);
        let mut b = DenseMatrix::zeros(3, 3);
        b.rank_one_update(2.0, &x, &y);
        b.rank_one_update(2.0, &y, &x);
        assert!(a.max_abs_diff(&b) < 1e-14);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn add_transpose_in_place_symmetrises() {
        let mut m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.add_transpose_in_place();
        assert_eq!(m.row(0), &[2.0, 5.0]);
        assert_eq!(m.row(1), &[5.0, 8.0]);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn norms_and_diffs() {
        let m = DenseMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!(approx(m.norm_fro(), 5.0));
        assert!(approx(m.norm_max(), 4.0));
        let z = DenseMatrix::zeros(2, 2);
        assert!(approx(m.max_abs_diff(&z), 4.0));
        assert_eq!(m.count_nonzero(0.0), 2);
    }

    #[test]
    fn symmetry_check() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(m.is_symmetric(0.0));
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.1, 1.0]]);
        assert!(!m.is_symmetric(1e-3));
        assert!(m.is_symmetric(0.2));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1.0));
    }

    #[test]
    fn from_diag_places_diagonal() {
        let d = DenseMatrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = DenseMatrix::identity(2);
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        a.add_scaled(2.0, &b);
        assert_eq!(a.row(0), &[1.0, 2.0]);
        a.scale(0.5);
        assert_eq!(a.row(0), &[0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "matmul: inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn par_row_chunks_cover_all_rows() {
        let mut m = DenseMatrix::zeros(5, 2);
        let mut seen = vec![];
        for (start, chunk) in m.par_row_chunks_mut(2) {
            seen.push((start, chunk.len() / 2));
        }
        assert_eq!(seen, vec![(0, 2), (2, 2), (4, 1)]);
    }
}

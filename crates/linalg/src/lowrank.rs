//! Fused low-rank ΔS buffer: `S += U·Vᵀ + V·Uᵀ` in one pass.
//!
//! The incremental engines characterise every link update as a sum of
//! symmetric rank-two terms `ΔS = Σ_k (ξ_k·η_kᵀ + η_k·ξ_kᵀ)` (Theorem 3 of
//! the paper). Applying each term eagerly costs one full read/write sweep
//! of the `n × n` score matrix — `K+1` sweeps per update, which makes the
//! hot path memory-bound long before it is compute-bound.
//!
//! [`LowRankDelta`] buffers the `(ξ_k, η_k)` pairs as factor columns of
//! `U, V` instead, deferring the matrix work. Three regimes fall out:
//!
//! * **Eager** (no buffer): `K+1` sweeps per update — the baseline.
//! * **Fused**: the buffered pairs are folded into `S` by one
//!   cache-blocked pass ([`LowRankDelta::apply_to`]): each row of `S` is
//!   loaded once, receives all `2·(K+1)` AXPYs while it is cache-resident,
//!   and is stored once. Row blocks are processed in parallel with
//!   `std::thread::scope`; because every row's accumulation order is
//!   independent of the blocking, the parallel result is **bit-for-bit**
//!   identical to the serial one.
//! * **Lazy**: the buffer is never applied; queries read
//!   `S_base[a,b] + Δ[a,b]` through [`LowRankDelta::pair_delta`] /
//!   [`LowRankDelta::add_row_delta`] in `O(r)` / `O(r·n)` — no `n²` work
//!   at all for query-only windows.
//!
//! **When to flush.** Each pending pair costs `2n` floats (dense) or its
//! support size (sparse), i.e. `≈ 2·(K+1)·n·8` bytes per pending unit
//! update. Flush when (a) a consumer needs the materialised matrix,
//! (b) the buffered rank approaches the point where `O(r)` per pair-query
//! rivals a sweep (`r ≈ n / queries`), or (c) memory pressure demands it.
//! The engines in `incsim-core` flush per mutation call in fused mode and
//! on demand in lazy mode.

use crate::dense::DenseMatrix;
use crate::vecops;

/// Rows per cache tile of the fused apply: factor columns are re-read once
/// per tile instead of once per row, while a tile of `S` rows streams
/// through the cache exactly once.
const TILE_ROWS: usize = 32;

/// Dense pairs fused into a single row pass. At `K+1 = 16` buffered pairs
/// this cuts the per-element row loads/stores from 16 (eager) to 2; the
/// factor working set per pass (`2·DENSE_GROUP` columns) still fits L2
/// alongside a [`TILE_ROWS`] tile up to `n ≈ 10⁴`.
const DENSE_GROUP: usize = 8;

/// Default worker count for the fused apply: `INCSIM_THREADS` when set to
/// a positive integer (the knob CI's thread matrix drives so both the
/// serial and parallel sweep paths are exercised), otherwise the host
/// parallelism. Serial and parallel results are bit-for-bit identical, so
/// this only moves work, never answers.
pub fn default_threads() -> usize {
    std::env::var("INCSIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// One buffered symmetric rank-two term `ξ·ηᵀ + η·ξᵀ`.
#[derive(Clone, Debug)]
enum FactorPair {
    /// Dense factors (Inc-uSR pushes these).
    Dense {
        /// ξ, length `n`.
        xi: Vec<f64>,
        /// η, length `n`.
        eta: Vec<f64>,
    },
    /// Sparse factors as sorted `(index, value)` pairs (Inc-SR pushes
    /// these; only `supp(ξ) ∪ supp(η)` rows of `S` are ever touched).
    Sparse {
        /// ξ support, sorted by index, exact zeros dropped.
        xi: Vec<(u32, f64)>,
        /// η support, sorted by index, exact zeros dropped.
        eta: Vec<(u32, f64)>,
    },
}

/// Value at `a` of a sorted sparse factor column.
#[inline]
fn sparse_at(col: &[(u32, f64)], a: usize) -> f64 {
    match col.binary_search_by_key(&(a as u32), |&(k, _)| k) {
        Ok(pos) => col[pos].1,
        Err(_) => 0.0,
    }
}

/// A buffer of pending symmetric rank-two score updates
/// `Δ = U·Vᵀ + V·Uᵀ` with `U = [ξ_0 … ξ_r]`, `V = [η_0 … η_r]`.
///
/// See the [module docs](self) for the eager/fused/lazy trade-off.
///
/// ```
/// use incsim_linalg::{DenseMatrix, LowRankDelta};
///
/// let mut s = DenseMatrix::zeros(3, 3);
/// let mut delta = LowRankDelta::new(3);
/// delta.push_dense(vec![1.0, 0.0, 0.0], vec![0.0, 2.0, 0.0]);
/// assert_eq!(delta.pair_delta(0, 1), 2.0); // lazy read, no apply
/// delta.apply_to(&mut s);                  // one fused sweep, drains
/// assert_eq!(s.get(0, 1), 2.0);
/// assert_eq!(s.get(1, 0), 2.0);
/// assert!(delta.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct LowRankDelta {
    dim: usize,
    pairs: Vec<FactorPair>,
}

impl LowRankDelta {
    /// Creates an empty buffer for `dim × dim` score matrices.
    pub fn new(dim: usize) -> Self {
        LowRankDelta {
            dim,
            pairs: Vec::new(),
        }
    }

    /// Vector dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of buffered `(ξ, η)` pairs (the rank of `U`/`V`).
    #[inline]
    pub fn pending_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when nothing is buffered (Δ is identically zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Buffers a dense term `ξ·ηᵀ + η·ξᵀ`.
    ///
    /// # Panics
    /// Panics if either vector is not of length [`Self::dim`].
    pub fn push_dense(&mut self, xi: Vec<f64>, eta: Vec<f64>) {
        assert_eq!(xi.len(), self.dim, "push_dense: xi length mismatch");
        assert_eq!(eta.len(), self.dim, "push_dense: eta length mismatch");
        self.pairs.push(FactorPair::Dense { xi, eta });
    }

    /// Buffers a sparse term `ξ·ηᵀ + η·ξᵀ` given as `(index, value)`
    /// pairs. Entries are sorted by index, duplicate indices are merged by
    /// summing, and exact zeros are dropped (they contribute nothing to Δ).
    ///
    /// # Panics
    /// Panics if any index is `>=` [`Self::dim`].
    pub fn push_sparse(&mut self, mut xi: Vec<(u32, f64)>, mut eta: Vec<(u32, f64)>) {
        for col in [&mut xi, &mut eta] {
            for &(i, _) in col.iter() {
                assert!((i as usize) < self.dim, "push_sparse: index out of range");
            }
            col.sort_unstable_by_key(|&(i, _)| i);
            col.dedup_by(|next, prev| {
                if next.0 == prev.0 {
                    prev.1 += next.1;
                    true
                } else {
                    false
                }
            });
            col.retain(|&(_, v)| v != 0.0);
        }
        self.pairs.push(FactorPair::Sparse { xi, eta });
    }

    /// Drops all buffered pairs without applying them.
    pub fn clear(&mut self) {
        self.pairs.clear();
    }

    /// Lazy single-entry read: `Δ[a, b] = Σ_t ξ_t[a]·η_t[b] + η_t[a]·ξ_t[b]`
    /// in `O(r)` (times `O(log s)` for sparse pairs) — no `n²` work.
    pub fn pair_delta(&self, a: usize, b: usize) -> f64 {
        let mut acc = 0.0;
        for pair in &self.pairs {
            match pair {
                FactorPair::Dense { xi, eta } => {
                    acc += xi[a] * eta[b] + eta[a] * xi[b];
                }
                FactorPair::Sparse { xi, eta } => {
                    acc +=
                        sparse_at(xi, a) * sparse_at(eta, b) + sparse_at(eta, a) * sparse_at(xi, b);
                }
            }
        }
        acc
    }

    /// Lazy row read: adds `Δ[a, :]` into `out` (Δ is symmetric, so this is
    /// also column `a`). `O(r·n)` for dense pairs, `O(r·s)` for sparse.
    ///
    /// # Panics
    /// Panics if `out.len() != dim`.
    pub fn add_row_delta(&self, a: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "add_row_delta: length mismatch");
        for pair in &self.pairs {
            apply_pair_to_row(pair, a, out);
        }
    }

    /// Rows of `S` with a nonzero Δ row: `None` means "potentially all"
    /// (at least one dense pair is buffered), otherwise the sorted union
    /// of the sparse supports.
    pub fn touched_rows(&self) -> Option<Vec<u32>> {
        let mut rows: Vec<u32> = Vec::new();
        for pair in &self.pairs {
            match pair {
                FactorPair::Dense { .. } => return None,
                FactorPair::Sparse { xi, eta } => {
                    rows.extend(xi.iter().map(|&(i, _)| i));
                    rows.extend(eta.iter().map(|&(i, _)| i));
                }
            }
        }
        rows.sort_unstable();
        rows.dedup();
        Some(rows)
    }

    /// The exact sorted union of rows where Δ is nonzero, scanning dense
    /// factors for their true support in `O(r·n)` (unlike
    /// [`Self::touched_rows`], which conservatively gives up on any dense
    /// pair). Row `a` is included iff some buffered `ξ_t[a]` or `η_t[a]`
    /// is nonzero — exactly the rows (and, by symmetry, columns) of `S` a
    /// fused apply could change.
    pub fn support_rows(&self) -> Vec<u32> {
        let mut nonzero = vec![false; self.dim];
        for pair in &self.pairs {
            match pair {
                FactorPair::Dense { xi, eta } => {
                    for (a, flag) in nonzero.iter_mut().enumerate() {
                        *flag |= xi[a] != 0.0 || eta[a] != 0.0;
                    }
                }
                FactorPair::Sparse { xi, eta } => {
                    for &(i, _) in xi.iter().chain(eta.iter()) {
                        nonzero[i as usize] = true;
                    }
                }
            }
        }
        (0..self.dim as u32)
            .filter(|&a| nonzero[a as usize])
            .collect()
    }

    /// Applies and drains the buffer: `S += U·Vᵀ + V·Uᵀ` in **one** fused
    /// pass over `S`, parallelised over row blocks when the matrix is
    /// large enough to pay for thread spawns.
    ///
    /// # Panics
    /// Panics if `s` is not `dim × dim`.
    pub fn apply_to(&mut self, s: &mut DenseMatrix) {
        let threads = if self.dim >= 256 {
            default_threads()
        } else {
            1
        };
        self.apply_to_with_threads(s, threads);
    }

    /// [`Self::apply_to`] with an explicit thread count (1 = serial). The
    /// result is bit-for-bit identical for every thread count: each row's
    /// AXPY sequence is pair 0 … pair r in order, regardless of how rows
    /// are partitioned into blocks. (A sparse-only buffer visits just its
    /// touched rows serially — the affected set is small by construction,
    /// so neither a full-row sweep nor thread spawns would pay.)
    pub fn apply_to_with_threads(&mut self, s: &mut DenseMatrix, threads: usize) {
        assert_eq!(s.rows(), self.dim, "apply_to: row mismatch");
        assert_eq!(s.cols(), self.dim, "apply_to: col mismatch");
        if self.pairs.is_empty() {
            return;
        }
        if let Some(rows) = self.touched_rows() {
            // Sparse-only buffer: every other row of Δ is identically zero,
            // and every schedule unit would be a single sparse pair.
            for &a in &rows {
                let row = s.row_mut(a as usize);
                for pair in &self.pairs {
                    apply_pair_to_row(pair, a as usize, row);
                }
            }
            self.pairs.clear();
            return;
        }
        // Group runs of dense pairs [`DENSE_GROUP`] at a time: the fused
        // row kernel then does one load + `2·DENSE_GROUP` multiply-adds +
        // one store per element instead of that many separate
        // read-modify-write sweeps of the row.
        let schedule = self.schedule();

        let threads = threads.max(1);
        let cols = s.cols();
        let this: &LowRankDelta = self;
        let schedule = &schedule[..];
        if threads == 1 {
            this.apply_chunk(0, s.as_mut_slice(), cols, schedule);
        } else {
            let chunk_rows = this.dim.div_ceil(threads);
            std::thread::scope(|scope| {
                for (start_row, chunk) in s.par_row_chunks_mut(chunk_rows) {
                    scope.spawn(move || this.apply_chunk(start_row, chunk, cols, schedule));
                }
            });
        }
        self.pairs.clear();
    }

    /// Partitions `self.pairs` into kernel units, in order: each range is
    /// either one sparse pair or a run of up to [`DENSE_GROUP`] consecutive
    /// dense pairs (fused into a single row pass).
    fn schedule(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.pairs.len() {
            match self.pairs[i] {
                FactorPair::Sparse { .. } => {
                    out.push(i..i + 1);
                    i += 1;
                }
                FactorPair::Dense { .. } => {
                    let mut j = i + 1;
                    while j < self.pairs.len()
                        && j - i < DENSE_GROUP
                        && matches!(self.pairs[j], FactorPair::Dense { .. })
                    {
                        j += 1;
                    }
                    out.push(i..j);
                    i = j;
                }
            }
        }
        out
    }

    /// Fused kernel over one block of whole rows: tiles of [`TILE_ROWS`]
    /// rows, schedule units swept per tile so each factor column is read
    /// once per tile while the tile's `S` rows stay cache-resident.
    fn apply_chunk(
        &self,
        start_row: usize,
        chunk: &mut [f64],
        cols: usize,
        schedule: &[std::ops::Range<usize>],
    ) {
        let nrows = chunk.len() / cols;
        let mut tile = 0;
        while tile < nrows {
            let tile_end = (tile + TILE_ROWS).min(nrows);
            let rows = &mut chunk[tile * cols..tile_end * cols];
            for unit in schedule {
                let pairs = &self.pairs[unit.clone()];
                match pairs {
                    [pair @ FactorPair::Sparse { .. }] => {
                        for (local, row) in rows.chunks_exact_mut(cols).enumerate() {
                            apply_pair_to_row(pair, start_row + tile + local, row);
                        }
                    }
                    dense => dense_unit_rows(dense, start_row + tile, rows, cols),
                }
            }
            tile = tile_end;
        }
    }

    /// Heap bytes held by the buffered factors (the paper-style
    /// intermediate-memory accounting: `≈ 2·(K+1)·n·8` bytes per pending
    /// dense update).
    pub fn heap_bytes(&self) -> usize {
        let per_dense = std::mem::size_of::<f64>();
        let per_sparse = std::mem::size_of::<(u32, f64)>();
        self.pairs
            .iter()
            .map(|p| match p {
                FactorPair::Dense { xi, eta } => (xi.capacity() + eta.capacity()) * per_dense,
                FactorPair::Sparse { xi, eta } => (xi.capacity() + eta.capacity()) * per_sparse,
            })
            .sum()
    }
}

/// Applies one dense schedule unit (1–[`DENSE_GROUP`] consecutive dense
/// pairs) to a tile of whole rows starting at global row `start_a`. The
/// arity dispatch happens once per (tile, unit) — not per row — and each
/// arity gets a fully unrolled inner loop.
fn dense_unit_rows(pairs: &[FactorPair], start_a: usize, rows: &mut [f64], cols: usize) {
    fn refs<const K: usize>(pairs: &[FactorPair]) -> ([&[f64]; K], [&[f64]; K]) {
        let pick = |t: usize| match &pairs[t] {
            FactorPair::Dense { xi, eta } => (xi.as_slice(), eta.as_slice()),
            FactorPair::Sparse { .. } => unreachable!("schedule() groups only dense pairs"),
        };
        (
            std::array::from_fn(|t| pick(t).0),
            std::array::from_fn(|t| pick(t).1),
        )
    }
    macro_rules! dispatch {
        ($($k:literal),*) => {
            match pairs.len() {
                $($k => {
                    let (xis, etas) = refs::<$k>(pairs);
                    dense_group_rows::<$k>(&xis, &etas, start_a, rows, cols);
                })*
                _ => {
                    // Unreachable via `schedule()`, but stay correct regardless.
                    for (local, row) in rows.chunks_exact_mut(cols).enumerate() {
                        for pair in pairs {
                            apply_pair_to_row(pair, start_a + local, row);
                        }
                    }
                }
            }
        };
    }
    dispatch!(1, 2, 3, 4, 5, 6, 7, 8);
}

/// Rows advanced together by the fused dense kernel. Each factor element
/// `ξ_t[b]`/`η_t[b]` is loaded once and feeds [`ROW_UNROLL`] independent
/// accumulator chains — the per-element chain of `2K` dependent adds is
/// what bounds a single-row sweep, not bandwidth, so overlapping rows is
/// worth ~1.4× on its own (more with wide registers).
const ROW_UNROLL: usize = 4;

/// The fused dense row kernel over a tile:
/// `row_a += Σ_t ξ_t[a]·η_t + η_t[a]·ξ_t` for a group of `K` pairs, one
/// load/store of each row element for all `2K` multiply-adds, processing
/// [`ROW_UNROLL`] rows per factor-stream pass. Per element the
/// accumulation order is exactly the eager one — pair `t`'s ξ-side then
/// η-side, then pair `t+1` — and rows never mix, so every regime,
/// grouping, unroll, and thread count produces the same floating-point
/// result.
fn dense_group_rows<const K: usize>(
    xis: &[&[f64]; K],
    etas: &[&[f64]; K],
    start_a: usize,
    rows: &mut [f64],
    cols: usize,
) {
    const R: usize = ROW_UNROLL;
    let mut blocks = rows.chunks_exact_mut(R * cols);
    let mut base = start_a;
    for block in blocks.by_ref() {
        let mut xa = [[0.0f64; K]; R];
        let mut ya = [[0.0f64; K]; R];
        let mut all_zero = true;
        for r in 0..R {
            for t in 0..K {
                xa[r][t] = xis[t][base + r];
                ya[r][t] = etas[t][base + r];
                all_zero &= xa[r][t] == 0.0 && ya[r][t] == 0.0;
            }
        }
        base += R;
        if all_zero {
            continue;
        }
        // Re-slice to the row length so the inner loops elide bounds checks.
        let xs: [&[f64]; K] = std::array::from_fn(|t| &xis[t][..cols]);
        let es: [&[f64]; K] = std::array::from_fn(|t| &etas[t][..cols]);
        let mut rest = &mut *block;
        let mut row_refs: [&mut [f64]; R] = std::array::from_fn(|_| Default::default());
        for slot in row_refs.iter_mut() {
            let (head, tail) = rest.split_at_mut(cols);
            *slot = head;
            rest = tail;
        }
        for b in 0..cols {
            let x_b: [f64; K] = std::array::from_fn(|t| xs[t][b]);
            let e_b: [f64; K] = std::array::from_fn(|t| es[t][b]);
            for r in 0..R {
                let mut acc = row_refs[r][b];
                for t in 0..K {
                    acc += xa[r][t] * e_b[t];
                    acc += ya[r][t] * x_b[t];
                }
                row_refs[r][b] = acc;
            }
        }
    }
    // Remainder rows (tile size not a multiple of R) one at a time.
    for (local, row) in blocks.into_remainder().chunks_exact_mut(cols).enumerate() {
        let a = base + local;
        let mut xa = [0.0f64; K];
        let mut ya = [0.0f64; K];
        let mut all_zero = true;
        for t in 0..K {
            xa[t] = xis[t][a];
            ya[t] = etas[t][a];
            all_zero &= xa[t] == 0.0 && ya[t] == 0.0;
        }
        if all_zero {
            continue;
        }
        let xs: [&[f64]; K] = std::array::from_fn(|t| &xis[t][..cols]);
        let es: [&[f64]; K] = std::array::from_fn(|t| &etas[t][..cols]);
        for (b, rb) in row.iter_mut().enumerate() {
            let mut acc = *rb;
            for t in 0..K {
                acc += xa[t] * es[t][b];
                acc += ya[t] * xs[t][b];
            }
            *rb = acc;
        }
    }
}

/// Adds row `a` of one pair's `ξ·ηᵀ + η·ξᵀ` into `row`: ξ-side first,
/// then η-side — the same order as the eager `add_sym_outer` /
/// affected-area loops, so fused results match eager ones exactly.
#[inline]
fn apply_pair_to_row(pair: &FactorPair, a: usize, row: &mut [f64]) {
    match pair {
        FactorPair::Dense { xi, eta } => {
            let (xa, ya) = (xi[a], eta[a]);
            if xa != 0.0 {
                vecops::axpy(xa, eta, row);
            }
            if ya != 0.0 {
                vecops::axpy(ya, xi, row);
            }
        }
        FactorPair::Sparse { xi, eta } => {
            let xa = sparse_at(xi, a);
            if xa != 0.0 {
                for &(b, v) in eta {
                    row[b as usize] += xa * v;
                }
            }
            let ya = sparse_at(eta, a);
            if ya != 0.0 {
                for &(b, v) in xi {
                    row[b as usize] += ya * v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_pair(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let f = |i: usize, s: u64| (((i as u64 + 1) * (s + 3)) % 17) as f64 * 0.25 - 1.0;
        (
            (0..n).map(|i| f(i, seed)).collect(),
            (0..n).map(|i| f(i, seed * 7 + 1)).collect(),
        )
    }

    fn eager_reference(n: usize, pairs: &[(Vec<f64>, Vec<f64>)]) -> DenseMatrix {
        let mut s = DenseMatrix::zeros(n, n);
        for (xi, eta) in pairs {
            s.add_sym_outer(1.0, xi, eta);
        }
        s
    }

    #[test]
    fn fused_dense_apply_matches_eager_exactly() {
        let n = 37;
        let pairs: Vec<_> = (0..5).map(|t| dense_pair(n, t)).collect();
        let expect = eager_reference(n, &pairs);

        let mut delta = LowRankDelta::new(n);
        for (xi, eta) in &pairs {
            delta.push_dense(xi.clone(), eta.clone());
        }
        assert_eq!(delta.pending_pairs(), 5);
        let mut s = DenseMatrix::zeros(n, n);
        delta.apply_to_with_threads(&mut s, 1);
        assert!(delta.is_empty(), "apply drains the buffer");
        assert_eq!(s.max_abs_diff(&expect), 0.0, "fused == eager, bitwise");
    }

    #[test]
    fn parallel_apply_is_bit_identical_to_serial() {
        let n = 101; // not a multiple of the tile or chunk sizes
        let pairs: Vec<_> = (0..7).map(|t| dense_pair(n, t + 11)).collect();
        let mut serial = DenseMatrix::zeros(n, n);
        let mut parallel = DenseMatrix::zeros(n, n);
        for threads in [2, 3, 5] {
            let mut d1 = LowRankDelta::new(n);
            let mut d2 = LowRankDelta::new(n);
            for (xi, eta) in &pairs {
                d1.push_dense(xi.clone(), eta.clone());
                d2.push_dense(xi.clone(), eta.clone());
            }
            // Mix in a sparse pair so both kinds cross chunk boundaries.
            d1.push_sparse(vec![(3, 1.5), (90, -0.25)], vec![(0, 2.0), (55, 1.0)]);
            d2.push_sparse(vec![(3, 1.5), (90, -0.25)], vec![(0, 2.0), (55, 1.0)]);
            d1.apply_to_with_threads(&mut serial, 1);
            d2.apply_to_with_threads(&mut parallel, threads);
            assert_eq!(
                serial.max_abs_diff(&parallel),
                0.0,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn sparse_apply_touches_only_active_rows() {
        let n = 20;
        let mut delta = LowRankDelta::new(n);
        delta.push_sparse(vec![(2, 1.0)], vec![(5, 3.0)]);
        assert_eq!(delta.touched_rows(), Some(vec![2, 5]));
        let mut s = DenseMatrix::zeros(n, n);
        delta.apply_to(&mut s);
        assert_eq!(s.get(2, 5), 3.0);
        assert_eq!(s.get(5, 2), 3.0);
        assert_eq!(s.count_nonzero(0.0), 2);
    }

    #[test]
    fn support_rows_is_exact_for_dense_and_sparse() {
        let n = 6;
        let mut delta = LowRankDelta::new(n);
        delta.push_dense(vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0], vec![0.0; 6]);
        delta.push_sparse(vec![(4, 2.0)], vec![(2, -1.0)]);
        // touched_rows gives up on the dense pair; support_rows does not.
        assert_eq!(delta.touched_rows(), None);
        assert_eq!(delta.support_rows(), vec![1, 2, 4]);
        assert!(LowRankDelta::new(n).support_rows().is_empty());
    }

    #[test]
    fn dense_pair_makes_touched_rows_unknown() {
        let n = 4;
        let mut delta = LowRankDelta::new(n);
        delta.push_sparse(vec![(1, 1.0)], vec![(2, 1.0)]);
        delta.push_dense(vec![0.0; n], vec![0.0; n]);
        assert_eq!(delta.touched_rows(), None);
    }

    #[test]
    fn lazy_reads_match_applied_matrix() {
        let n = 23;
        let pairs: Vec<_> = (0..4).map(|t| dense_pair(n, t + 5)).collect();
        let mut delta = LowRankDelta::new(n);
        for (xi, eta) in &pairs {
            delta.push_dense(xi.clone(), eta.clone());
        }
        delta.push_sparse(vec![(1, 0.5), (7, -2.0)], vec![(0, 1.0), (19, 0.75)]);

        let mut applied = DenseMatrix::zeros(n, n);
        {
            let mut d = delta.clone();
            d.apply_to_with_threads(&mut applied, 1);
        }
        for a in 0..n {
            let mut row = vec![0.0; n];
            delta.add_row_delta(a, &mut row);
            for b in 0..n {
                assert!((applied.get(a, b) - row[b]).abs() < 1e-12);
                assert!((applied.get(a, b) - delta.pair_delta(a, b)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn push_sparse_sorts_and_drops_zeros() {
        let mut delta = LowRankDelta::new(10);
        delta.push_sparse(vec![(7, 1.0), (2, 0.0), (1, -1.0)], vec![(4, 2.0)]);
        // The zero entry at index 2 contributes nothing anywhere.
        assert_eq!(delta.pair_delta(2, 4), 0.0);
        assert_eq!(delta.pair_delta(7, 4), 2.0);
        assert_eq!(delta.pair_delta(4, 1), -2.0);
    }

    #[test]
    fn clear_and_bookkeeping() {
        let mut delta = LowRankDelta::new(6);
        assert!(delta.is_empty());
        assert_eq!(delta.dim(), 6);
        delta.push_dense(vec![1.0; 6], vec![2.0; 6]);
        assert!(delta.heap_bytes() >= 2 * 6 * 8);
        delta.clear();
        assert!(delta.is_empty());
        let mut s = DenseMatrix::zeros(6, 6);
        delta.apply_to(&mut s); // empty apply is a no-op
        assert_eq!(s.count_nonzero(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "push_dense: xi length mismatch")]
    fn push_dense_rejects_wrong_length() {
        let mut delta = LowRankDelta::new(4);
        delta.push_dense(vec![1.0; 3], vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "push_sparse: index out of range")]
    fn push_sparse_rejects_out_of_range() {
        let mut delta = LowRankDelta::new(4);
        delta.push_sparse(vec![(4, 1.0)], vec![]);
    }
}

//! Fused low-rank ΔS buffer: `S += U·Vᵀ + V·Uᵀ` in one pass.
//!
//! The incremental engines characterise every link update as a sum of
//! symmetric rank-two terms `ΔS = Σ_k (ξ_k·η_kᵀ + η_k·ξ_kᵀ)` (Theorem 3 of
//! the paper). Applying each term eagerly costs one full read/write sweep
//! of the `n × n` score matrix — `K+1` sweeps per update, which makes the
//! hot path memory-bound long before it is compute-bound.
//!
//! [`LowRankDelta`] buffers the `(ξ_k, η_k)` pairs as factor columns of
//! `U, V` instead, deferring the matrix work. Three regimes fall out:
//!
//! * **Eager** (no buffer): `K+1` sweeps per update — the baseline.
//! * **Fused**: the buffered pairs are folded into `S` by one
//!   cache-blocked pass ([`LowRankDelta::apply_to`]): each row of `S` is
//!   loaded once, receives all `2·(K+1)` AXPYs while it is cache-resident,
//!   and is stored once. Row blocks are processed in parallel with
//!   `std::thread::scope`; because every row's accumulation order is
//!   independent of the blocking, the parallel result is **bit-for-bit**
//!   identical to the serial one.
//! * **Lazy**: the buffer is never applied; queries read
//!   `S_base[a,b] + Δ[a,b]` through [`LowRankDelta::pair_delta`] /
//!   [`LowRankDelta::add_row_delta`] in `O(r)` / `O(r·n)` — no `n²` work
//!   at all for query-only windows.
//!
//! **When to flush.** Each pending pair costs `2n` floats (dense) or its
//! support size (sparse), i.e. `≈ 2·(K+1)·n·8` bytes per pending unit
//! update. Flush when (a) a consumer needs the materialised matrix,
//! (b) the buffered rank approaches the point where `O(r)` per pair-query
//! rivals a sweep (`r ≈ n / queries`), or (c) memory pressure demands it.
//! The engines in `incsim-core` flush per mutation call in fused mode and
//! on demand in lazy mode.
//!
//! **Recompression instead of flushing.** A long lazy window accumulates
//! `r = b·(K+1)` pairs over `b` updates, but the *numerical* rank of Δ is
//! usually far smaller — consecutive updates perturb overlapping
//! subspaces and the per-iteration terms decay geometrically in `C`.
//! [`LowRankDelta::recompress`] rewrites the buffer in place at that
//! numerical rank: stack `W = [U V]` (support-compacted), thin-QR it,
//! eigendecompose the small symmetric core `M = R·J·Rᵀ` (where
//! `Δ = W·J·Wᵀ` with `J` the block swap), truncate at a tolerance
//! **relative to the largest `|λ|`** (the [`crate::qr::rank_qrcp`] /
//! [`crate::svd::Svd::rank`] convention), and re-express the kept
//! eigendirections as ordinary pairs `ξ·ηᵀ + η·ξᵀ` — packed two per
//! pair, one of each sign, falling back to `ξ = (λ/2)·q`, `η = q` for an
//! unmatched direction. Compressed buffers therefore stay plain
//! [`LowRankDelta`] state: every consumer (fused apply, lazy reads,
//! snapshots) works unchanged, queries drop from `O(r)` to `O(ρ)` with
//! `ρ` the numerical rank, and the buffer's memory plateaus instead of
//! growing linearly in the window length.

use crate::dense::DenseMatrix;
use crate::qr::{qr_thin, qrcp_range};
use crate::svd::sym_eigen;
use crate::vecops;
use incsim_codec as codec;

/// Rows per cache tile of the fused apply: factor columns are re-read once
/// per tile instead of once per row, while a tile of `S` rows streams
/// through the cache exactly once.
const TILE_ROWS: usize = 32;

/// Dense pairs fused into a single row pass. At `K+1 = 16` buffered pairs
/// this cuts the per-element row loads/stores from 16 (eager) to 2; the
/// factor working set per pass (`2·DENSE_GROUP` columns) still fits L2
/// alongside a [`TILE_ROWS`] tile up to `n ≈ 10⁴`.
const DENSE_GROUP: usize = 8;

/// Default worker count for the fused apply: `INCSIM_THREADS` when set to
/// a positive integer (the knob CI's thread matrix drives so both the
/// serial and parallel sweep paths are exercised), otherwise the host
/// parallelism. Serial and parallel results are bit-for-bit identical, so
/// this only moves work, never answers.
pub fn default_threads() -> usize {
    std::env::var("INCSIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

/// One buffered symmetric rank-two term `ξ·ηᵀ + η·ξᵀ`.
#[derive(Clone, Debug)]
enum FactorPair {
    /// Dense factors (Inc-uSR pushes these).
    Dense {
        /// ξ, length `n`.
        xi: Vec<f64>,
        /// η, length `n`.
        eta: Vec<f64>,
    },
    /// Sparse factors as sorted `(index, value)` pairs (Inc-SR pushes
    /// these; only `supp(ξ) ∪ supp(η)` rows of `S` are ever touched).
    Sparse {
        /// ξ support, sorted by index, exact zeros dropped.
        xi: Vec<(u32, f64)>,
        /// η support, sorted by index, exact zeros dropped.
        eta: Vec<(u32, f64)>,
    },
}

/// Value at `a` of a sorted sparse factor column.
#[inline]
fn sparse_at(col: &[(u32, f64)], a: usize) -> f64 {
    match col.binary_search_by_key(&(a as u32), |&(k, _)| k) {
        Ok(pos) => col[pos].1,
        Err(_) => 0.0,
    }
}

/// A buffer of pending symmetric rank-two score updates
/// `Δ = U·Vᵀ + V·Uᵀ` with `U = [ξ_0 … ξ_r]`, `V = [η_0 … η_r]`.
///
/// See the [module docs](self) for the eager/fused/lazy trade-off.
///
/// ```
/// use incsim_linalg::{DenseMatrix, LowRankDelta};
///
/// let mut s = DenseMatrix::zeros(3, 3);
/// let mut delta = LowRankDelta::new(3);
/// delta.push_dense(vec![1.0, 0.0, 0.0], vec![0.0, 2.0, 0.0]);
/// assert_eq!(delta.pair_delta(0, 1), 2.0); // lazy read, no apply
/// delta.apply_to(&mut s);                  // one fused sweep, drains
/// assert_eq!(s.get(0, 1), 2.0);
/// assert_eq!(s.get(1, 0), 2.0);
/// assert!(delta.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct LowRankDelta {
    dim: usize,
    pairs: Vec<FactorPair>,
}

impl LowRankDelta {
    /// Creates an empty buffer for `dim × dim` score matrices.
    pub fn new(dim: usize) -> Self {
        LowRankDelta {
            dim,
            pairs: Vec::new(),
        }
    }

    /// Vector dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of buffered `(ξ, η)` pairs (the rank of `U`/`V`).
    #[inline]
    pub fn pending_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when nothing is buffered (Δ is identically zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Buffers a dense term `ξ·ηᵀ + η·ξᵀ`. A pair with an identically
    /// zero factor contributes nothing to Δ and is dropped — buffering it
    /// would only inflate [`Self::pending_pairs`] and trigger spurious
    /// rank-cap flushes in the adaptive apply policy.
    ///
    /// # Panics
    /// Panics if either vector is not of length [`Self::dim`].
    pub fn push_dense(&mut self, xi: Vec<f64>, eta: Vec<f64>) {
        assert_eq!(xi.len(), self.dim, "push_dense: xi length mismatch");
        assert_eq!(eta.len(), self.dim, "push_dense: eta length mismatch");
        if xi.iter().all(|&v| v == 0.0) || eta.iter().all(|&v| v == 0.0) {
            return;
        }
        self.pairs.push(FactorPair::Dense { xi, eta });
    }

    /// Buffers a sparse term `ξ·ηᵀ + η·ξᵀ` given as `(index, value)`
    /// pairs. Entries are sorted by index, duplicate indices are merged by
    /// summing, and exact zeros are dropped (they contribute nothing to Δ).
    /// A pair left with an **empty** factor after that cleanup — e.g. a
    /// toggle whose γ cancels exactly, or a pruned iteration whose support
    /// died out — is a no-op term and is dropped entirely, so it cannot
    /// inflate [`Self::pending_pairs`] or trip rank-cap flushes.
    ///
    /// # Panics
    /// Panics if any index is `>=` [`Self::dim`].
    pub fn push_sparse(&mut self, mut xi: Vec<(u32, f64)>, mut eta: Vec<(u32, f64)>) {
        for col in [&mut xi, &mut eta] {
            for &(i, _) in col.iter() {
                assert!((i as usize) < self.dim, "push_sparse: index out of range");
            }
            col.sort_unstable_by_key(|&(i, _)| i);
            col.dedup_by(|next, prev| {
                if next.0 == prev.0 {
                    prev.1 += next.1;
                    true
                } else {
                    false
                }
            });
            col.retain(|&(_, v)| v != 0.0);
        }
        if xi.is_empty() || eta.is_empty() {
            return;
        }
        self.pairs.push(FactorPair::Sparse { xi, eta });
    }

    /// Drops all buffered pairs without applying them.
    pub fn clear(&mut self) {
        self.pairs.clear();
    }

    /// Lazy single-entry read: `Δ[a, b] = Σ_t ξ_t[a]·η_t[b] + η_t[a]·ξ_t[b]`
    /// in `O(r)` (times `O(log s)` for sparse pairs) — no `n²` work.
    pub fn pair_delta(&self, a: usize, b: usize) -> f64 {
        let mut acc = 0.0;
        for pair in &self.pairs {
            match pair {
                FactorPair::Dense { xi, eta } => {
                    acc += xi[a] * eta[b] + eta[a] * xi[b];
                }
                FactorPair::Sparse { xi, eta } => {
                    acc +=
                        sparse_at(xi, a) * sparse_at(eta, b) + sparse_at(eta, a) * sparse_at(xi, b);
                }
            }
        }
        acc
    }

    /// Lazy row read: adds `Δ[a, :]` into `out` (Δ is symmetric, so this is
    /// also column `a`). `O(r·n)` for dense pairs, `O(r·s)` for sparse.
    ///
    /// # Panics
    /// Panics if `out.len() != dim`.
    pub fn add_row_delta(&self, a: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim, "add_row_delta: length mismatch");
        for pair in &self.pairs {
            apply_pair_to_row(pair, a, out);
        }
    }

    /// Rows of `S` with a nonzero Δ row: `None` means "potentially all"
    /// (at least one dense pair is buffered), otherwise the sorted union
    /// of the sparse supports.
    pub fn touched_rows(&self) -> Option<Vec<u32>> {
        let mut rows: Vec<u32> = Vec::new();
        for pair in &self.pairs {
            match pair {
                FactorPair::Dense { .. } => return None,
                FactorPair::Sparse { xi, eta } => {
                    rows.extend(xi.iter().map(|&(i, _)| i));
                    rows.extend(eta.iter().map(|&(i, _)| i));
                }
            }
        }
        rows.sort_unstable();
        rows.dedup();
        Some(rows)
    }

    /// The exact sorted union of rows where Δ is nonzero, scanning dense
    /// factors for their true support in `O(r·n)` (unlike
    /// [`Self::touched_rows`], which conservatively gives up on any dense
    /// pair). Row `a` is included iff some buffered `ξ_t[a]` or `η_t[a]`
    /// is nonzero — exactly the rows (and, by symmetry, columns) of `S` a
    /// fused apply could change.
    pub fn support_rows(&self) -> Vec<u32> {
        let mut nonzero = vec![false; self.dim];
        for pair in &self.pairs {
            match pair {
                FactorPair::Dense { xi, eta } => {
                    for (a, flag) in nonzero.iter_mut().enumerate() {
                        *flag |= xi[a] != 0.0 || eta[a] != 0.0;
                    }
                }
                FactorPair::Sparse { xi, eta } => {
                    for &(i, _) in xi.iter().chain(eta.iter()) {
                        nonzero[i as usize] = true;
                    }
                }
            }
        }
        (0..self.dim as u32)
            .filter(|&a| nonzero[a as usize])
            .collect()
    }

    /// Applies and drains the buffer: `S += U·Vᵀ + V·Uᵀ` in **one** fused
    /// pass over `S`, parallelised over row blocks when the matrix is
    /// large enough to pay for thread spawns.
    ///
    /// # Panics
    /// Panics if `s` is not `dim × dim`.
    pub fn apply_to(&mut self, s: &mut DenseMatrix) {
        let threads = if self.dim >= 256 {
            default_threads()
        } else {
            1
        };
        self.apply_to_with_threads(s, threads);
    }

    /// [`Self::apply_to`] with an explicit thread count (1 = serial). The
    /// result is bit-for-bit identical for every thread count: each row's
    /// AXPY sequence is pair 0 … pair r in order, regardless of how rows
    /// are partitioned into blocks. (A sparse-only buffer visits just its
    /// touched rows serially — the affected set is small by construction,
    /// so neither a full-row sweep nor thread spawns would pay.)
    pub fn apply_to_with_threads(&mut self, s: &mut DenseMatrix, threads: usize) {
        assert_eq!(s.rows(), self.dim, "apply_to: row mismatch");
        assert_eq!(s.cols(), self.dim, "apply_to: col mismatch");
        if self.pairs.is_empty() {
            return;
        }
        if let Some(rows) = self.touched_rows() {
            // Sparse-only buffer: every other row of Δ is identically zero,
            // and every schedule unit would be a single sparse pair.
            for &a in &rows {
                let row = s.row_mut(a as usize);
                for pair in &self.pairs {
                    apply_pair_to_row(pair, a as usize, row);
                }
            }
            self.pairs.clear();
            return;
        }
        // Group runs of dense pairs [`DENSE_GROUP`] at a time: the fused
        // row kernel then does one load + `2·DENSE_GROUP` multiply-adds +
        // one store per element instead of that many separate
        // read-modify-write sweeps of the row.
        let schedule = self.schedule();

        let threads = threads.max(1);
        let cols = s.cols();
        let this: &LowRankDelta = self;
        let schedule = &schedule[..];
        if threads == 1 {
            this.apply_chunk(0, s.as_mut_slice(), cols, schedule);
        } else {
            let chunk_rows = this.dim.div_ceil(threads);
            std::thread::scope(|scope| {
                for (start_row, chunk) in s.par_row_chunks_mut(chunk_rows) {
                    scope.spawn(move || this.apply_chunk(start_row, chunk, cols, schedule));
                }
            });
        }
        self.pairs.clear();
    }

    /// Partitions `self.pairs` into kernel units, in order: each range is
    /// either one sparse pair or a run of up to [`DENSE_GROUP`] consecutive
    /// dense pairs (fused into a single row pass).
    fn schedule(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.pairs.len() {
            match self.pairs[i] {
                FactorPair::Sparse { .. } => {
                    out.push(i..i + 1);
                    i += 1;
                }
                FactorPair::Dense { .. } => {
                    let mut j = i + 1;
                    while j < self.pairs.len()
                        && j - i < DENSE_GROUP
                        && matches!(self.pairs[j], FactorPair::Dense { .. })
                    {
                        j += 1;
                    }
                    out.push(i..j);
                    i = j;
                }
            }
        }
        out
    }

    /// Fused kernel over one block of whole rows: tiles of [`TILE_ROWS`]
    /// rows, schedule units swept per tile so each factor column is read
    /// once per tile while the tile's `S` rows stay cache-resident.
    fn apply_chunk(
        &self,
        start_row: usize,
        chunk: &mut [f64],
        cols: usize,
        schedule: &[std::ops::Range<usize>],
    ) {
        let nrows = chunk.len() / cols;
        let mut tile = 0;
        while tile < nrows {
            let tile_end = (tile + TILE_ROWS).min(nrows);
            let rows = &mut chunk[tile * cols..tile_end * cols];
            for unit in schedule {
                let pairs = &self.pairs[unit.clone()];
                match pairs {
                    [pair @ FactorPair::Sparse { .. }] => {
                        for (local, row) in rows.chunks_exact_mut(cols).enumerate() {
                            apply_pair_to_row(pair, start_row + tile + local, row);
                        }
                    }
                    dense => dense_unit_rows(dense, start_row + tile, rows, cols),
                }
            }
            tile = tile_end;
        }
    }

    /// Heap bytes held by the buffer (the paper-style intermediate-memory
    /// accounting: `≈ 2·(K+1)·n·8` bytes per pending dense update). This
    /// is the memory-pressure signal the adaptive policy and serve
    /// telemetry read, so it accounts *allocation*, not content: dense
    /// factors at 8 B per `f64` slot, sparse factors at 16 B per
    /// `(u32, f64)` slot — both by `Vec` **capacity** (reserve growth is
    /// real memory even before it is filled) — plus the pair container
    /// itself (one `FactorPair` header per slot of `pairs`' capacity).
    pub fn heap_bytes(&self) -> usize {
        let per_dense = std::mem::size_of::<f64>();
        let per_sparse = std::mem::size_of::<(u32, f64)>();
        let container = self.pairs.capacity() * std::mem::size_of::<FactorPair>();
        container
            + self
                .pairs
                .iter()
                .map(|p| match p {
                    FactorPair::Dense { xi, eta } => (xi.capacity() + eta.capacity()) * per_dense,
                    FactorPair::Sparse { xi, eta } => (xi.capacity() + eta.capacity()) * per_sparse,
                })
                .sum::<usize>()
    }

    /// Recompresses the buffer **in place** to the numerical rank of Δ:
    /// stack `W = [U V]` over the union support, thin-QR it, eigendecompose
    /// the small symmetric core `M = R·J·Rᵀ` (`Δ = W·J·Wᵀ`, `J` the block
    /// swap), truncate every eigendirection with `|λ| ≤ tol·|λ|_max` (the
    /// tolerance is relative to the largest magnitude, matching
    /// [`crate::qr::rank_qrcp`] / [`crate::svd::Svd::rank`]), and rewrite
    /// the survivors as ordinary factor pairs — two directions per pair,
    /// one of each sign (a symmetric rank-two term holds exactly one
    /// `λ₊ ≥ 0` and one `λ₋ ≤ 0`), so the pair count lands at
    /// `max(#λ₊, #λ₋) ≈ rank/2` and a compressed buffer is
    /// indistinguishable from a freshly pushed one to every consumer.
    ///
    /// Cost: with `2r ≤ s` (support size `s`, buffered rank `r`) the
    /// thin-QR route runs in `O(s·r²)` with `O(s·r)` scratch; a buffer
    /// already wider than its support (`2r > s`) instead eigendecomposes
    /// the support-compacted `s × s` Δ directly — `O(s²·r + s³)` with a
    /// transient `s²` scratch, exact at rank ≤ `s`. Neither route touches
    /// the `n × n` score matrix, and a sparse window never pays `n`
    /// (drivers should still trigger compression at rank thresholds well
    /// below `n/2` so dense windows stay on the QR route).
    /// Sparse-supported results are re-emitted as sparse pairs (when the
    /// support is under half the dimension), so Inc-SR windows keep their
    /// touched-rows flush path.
    ///
    /// Returns the before/after pair counts and the total discarded
    /// spectral mass `Σ|λ_dropped|`, which bounds the max-abs entrywise
    /// change of Δ. With `tol = 0` only exact zeros are dropped.
    ///
    /// # Examples
    /// ```
    /// use incsim_linalg::LowRankDelta;
    ///
    /// let mut delta = LowRankDelta::new(4);
    /// // Two pushes along the same direction: rank 2, not 4.
    /// delta.push_dense(vec![1.0, 0.0, 2.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]);
    /// delta.push_dense(vec![1.0, 0.0, 2.0, 0.0], vec![0.0, 3.0, 0.0, 0.0]);
    /// let before = delta.pair_delta(0, 1);
    /// let stats = delta.recompress(0.0);
    /// assert!(stats.pairs_after <= stats.pairs_before);
    /// assert!((delta.pair_delta(0, 1) - before).abs() < 1e-12);
    /// ```
    pub fn recompress(&mut self, tol: f64) -> Recompression {
        let pairs_before = self.pairs.len();
        let mut discarded = 0.0f64;
        if pairs_before > 1 {
            let rows = self.support_rows();
            if rows.is_empty() {
                self.pairs.clear();
            } else {
                let batch = std::mem::take(&mut self.pairs);
                let (dirs, dropped) = if 2 * batch.len() <= rows.len() {
                    eigen_directions_qr(&rows, &batch, tol)
                } else {
                    eigen_directions_direct(&rows, &batch, tol)
                };
                discarded = dropped;
                self.pairs = emit_eigen_pairs(self.dim, &rows, dirs);
            }
        }
        Recompression {
            pairs_before,
            pairs_after: self.pairs.len(),
            discarded_mass: discarded,
        }
    }

    /// Factor-compresses the **difference** `Δ = to − from` between two
    /// symmetric score matrices into a fresh buffer, without ever pushing
    /// `n` raw column pairs: the support rows of the difference are found
    /// with one `O(n²)` scan, the support-compacted `s × s` difference is
    /// eigendecomposed (directly for small supports, through a
    /// column-pivoted range basis — `O(s²·r)` — for large ones), the
    /// spectrum is truncated at `tol` relative to `|λ|_max`, and the
    /// survivors are re-emitted as ordinary factor pairs. The temporal
    /// epoch ring uses this to store each retained epoch as `O(r·n)`
    /// factors against its successor instead of an `n²` copy.
    ///
    /// `from` may be *smaller* than `to` (an epoch recorded before nodes
    /// were added); it is implicitly zero-padded. The returned
    /// `discarded` is the truncated spectral mass `Σ|λ_dropped|`, an
    /// upper bound on `max |Δ_emitted − (to − from)|` entrywise (plus
    /// range-finder roundoff at machine precision).
    ///
    /// # Panics
    /// Panics if either matrix is non-square or `from` is larger than
    /// `to`.
    pub fn between(from: &DenseMatrix, to: &DenseMatrix, tol: f64) -> (Self, f64) {
        assert_eq!(to.rows(), to.cols(), "between: `to` must be square");
        assert_eq!(from.rows(), from.cols(), "between: `from` must be square");
        let dim = to.rows();
        let n0 = from.rows();
        assert!(n0 <= dim, "between: `from` ({n0}) larger than `to` ({dim})");

        // Support = rows where any entry of `to − from` is nonzero. The
        // difference of symmetric matrices is symmetric, so row support
        // equals column support.
        let mut rows: Vec<u32> = Vec::new();
        for a in 0..dim {
            let ta = to.row(a);
            let differs = if a < n0 {
                let fa = from.row(a);
                ta[..n0].iter().zip(fa).any(|(&t, &f)| t != f) || ta[n0..].iter().any(|&t| t != 0.0)
            } else {
                ta.iter().any(|&t| t != 0.0)
            };
            if differs {
                rows.push(a as u32);
            }
        }
        let mut delta = LowRankDelta::new(dim);
        if rows.is_empty() {
            return (delta, 0.0);
        }

        let s = rows.len();
        let mut ds = DenseMatrix::zeros(s, s);
        for (li, &ga) in rows.iter().enumerate() {
            let ga = ga as usize;
            for (lj, &gb) in rows.iter().enumerate() {
                let gb = gb as usize;
                let f = if ga < n0 && gb < n0 {
                    from.get(ga, gb)
                } else {
                    0.0
                };
                ds.set(li, lj, to.get(ga, gb) - f);
            }
        }
        // Symmetric by contract; symmetrise away any input roundoff so
        // sym_eigen sees an exactly symmetric matrix.
        for i in 0..s {
            for j in (i + 1)..s {
                let v = 0.5 * (ds.get(i, j) + ds.get(j, i));
                ds.set(i, j, v);
                ds.set(j, i, v);
            }
        }

        let (dirs, dropped) = if s <= BETWEEN_DIRECT_SUPPORT {
            let (lambda, v) = sym_eigen(&ds);
            truncate_spectrum(
                &lambda,
                |t| {
                    let mut vt = vec![0.0; s];
                    v.col_into(t, &mut vt);
                    vt
                },
                tol,
            )
        } else {
            // Range-finder route: project the s×s difference onto its
            // numerical column space (rank r ≪ s between epochs) and
            // eigendecompose the r×r core. The QR truncation runs an
            // order tighter than the spectral cut so it never dominates.
            let q = qrcp_range(&ds, (tol * 1e-2).max(1e-15));
            let r = q.cols();
            if r == 0 {
                (Vec::new(), 0.0)
            } else {
                let t = ds.matmul(&q);
                let mut core = q.matmul_tn(&t);
                for i in 0..r {
                    for j in (i + 1)..r {
                        let v = 0.5 * (core.get(i, j) + core.get(j, i));
                        core.set(i, j, v);
                        core.set(j, i, v);
                    }
                }
                let (lambda, z) = sym_eigen(&core);
                truncate_spectrum(
                    &lambda,
                    |t| {
                        let mut zt = vec![0.0; r];
                        let mut qz = vec![0.0; s];
                        z.col_into(t, &mut zt);
                        q.matvec(&zt, &mut qz);
                        qz
                    },
                    tol,
                )
            }
        };
        delta.pairs = emit_eigen_pairs(dim, &rows, dirs);
        (delta, dropped)
    }

    /// Appends every factor pair of `other` **as-is** (`Δ ← Δ + Δ_other`),
    /// zero-padding factors when `other` has a smaller dimension — the
    /// composition step of crash recovery, which splices a persisted
    /// head→checkpoint delta together with the checkpoint→live replay
    /// suffix into one head→live delta.
    ///
    /// # Panics
    /// Panics if `other` has a larger dimension than `self`.
    pub fn extend(&mut self, other: &LowRankDelta) {
        assert!(
            other.dim <= self.dim,
            "extend: other dim {} exceeds {}",
            other.dim,
            self.dim
        );
        for pair in &other.pairs {
            match pair {
                FactorPair::Dense { xi, eta } => {
                    let mut nx = vec![0.0; self.dim];
                    nx[..xi.len()].copy_from_slice(xi);
                    let mut ne = vec![0.0; self.dim];
                    ne[..eta.len()].copy_from_slice(eta);
                    self.pairs.push(FactorPair::Dense { xi: nx, eta: ne });
                }
                FactorPair::Sparse { xi, eta } => {
                    self.pairs.push(FactorPair::Sparse {
                        xi: xi.clone(),
                        eta: eta.clone(),
                    });
                }
            }
        }
    }

    /// Appends every factor pair of `other` **negated**
    /// (`Δ ← Δ − Δ_other`), zero-padding factors when `other` has a
    /// smaller dimension — the stacking step of epoch reconstruction,
    /// which walks successor deltas backwards from the ring head.
    ///
    /// # Panics
    /// Panics if `other` has a larger dimension than `self`.
    pub fn extend_negated(&mut self, other: &LowRankDelta) {
        assert!(
            other.dim <= self.dim,
            "extend_negated: other dim {} exceeds {}",
            other.dim,
            self.dim
        );
        for pair in &other.pairs {
            match pair {
                FactorPair::Dense { xi, eta } => {
                    // −(ξηᵀ + ηξᵀ) = (−ξ)ηᵀ + η(−ξ)ᵀ: negate ξ only.
                    let mut nxi = vec![0.0; self.dim];
                    for (o, &v) in nxi.iter_mut().zip(xi) {
                        *o = -v;
                    }
                    let mut ne = vec![0.0; self.dim];
                    ne[..eta.len()].copy_from_slice(eta);
                    self.pairs.push(FactorPair::Dense { xi: nxi, eta: ne });
                }
                FactorPair::Sparse { xi, eta } => {
                    self.pairs.push(FactorPair::Sparse {
                        xi: xi.iter().map(|&(i, v)| (i, -v)).collect(),
                        eta: eta.clone(),
                    });
                }
            }
        }
    }

    // -- serialization ------------------------------------------------

    /// Wire version written by [`LowRankDelta::encode_into`] and accepted
    /// by [`LowRankDelta::decode`].
    pub const WIRE_VERSION: u8 = 1;

    /// Appends the buffer's wire form to `out`:
    ///
    /// ```text
    /// [version u8 = 1][dim uvarint][pair_count uvarint]
    /// per pair: [kind u8]           0 = dense, 1 = sparse
    ///   dense:  ξ f64×dim LE, η f64×dim LE
    ///   sparse: per factor column: [nnz uvarint] then nnz × ([index uvarint][value f64 LE])
    /// ```
    ///
    /// Encoding is a pure function of the stored factors — no
    /// timestamps, no map iteration, no re-normalisation — so
    /// `encode ∘ decode ∘ encode` is byte-identical. That determinism is
    /// what lets checkpointed epoch deltas be compared and deduplicated
    /// by hash across replicas.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_u8(out, Self::WIRE_VERSION);
        codec::put_uvarint(out, self.dim as u64);
        codec::put_uvarint(out, self.pairs.len() as u64);
        for pair in &self.pairs {
            match pair {
                FactorPair::Dense { xi, eta } => {
                    codec::put_u8(out, 0);
                    for &v in xi {
                        codec::put_f64(out, v);
                    }
                    for &v in eta {
                        codec::put_f64(out, v);
                    }
                }
                FactorPair::Sparse { xi, eta } => {
                    codec::put_u8(out, 1);
                    for col in [xi, eta] {
                        codec::put_uvarint(out, col.len() as u64);
                        for &(i, v) in col {
                            codec::put_uvarint(out, u64::from(i));
                            codec::put_f64(out, v);
                        }
                    }
                }
            }
        }
    }

    /// [`LowRankDelta::encode_into`] into a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes exactly one buffer from `c`, leaving the cursor on the
    /// byte after it (so several deltas can ride one record). `None` on
    /// any structural defect: unknown version or pair kind, truncation,
    /// an out-of-range or non-ascending sparse index. The reconstructed
    /// pairs are byte-for-byte what was encoded — dense stays dense,
    /// sparse keeps its exact support, values keep their IEEE-754 bits.
    pub fn decode_from(c: &mut codec::Cursor<'_>) -> Option<Self> {
        if c.u8()? != Self::WIRE_VERSION {
            return None;
        }
        let dim = usize::try_from(c.uvarint()?).ok()?;
        if u32::try_from(dim).is_err() {
            return None;
        }
        let count = c.uvarint()?;
        // Every pair costs at least one kind byte: a count larger than
        // the remaining payload cannot be honest, so reject it before
        // reserving anything.
        if count > c.remaining() as u64 {
            return None;
        }
        let mut pairs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            match c.u8()? {
                0 => {
                    // 2·dim f64s must still be present before the dense
                    // buffers are allocated.
                    if c.remaining() < dim.checked_mul(16)? {
                        return None;
                    }
                    let mut xi = vec![0.0; dim];
                    for v in &mut xi {
                        *v = c.f64()?;
                    }
                    let mut eta = vec![0.0; dim];
                    for v in &mut eta {
                        *v = c.f64()?;
                    }
                    pairs.push(FactorPair::Dense { xi, eta });
                }
                1 => {
                    let mut cols = [Vec::new(), Vec::new()];
                    for col in &mut cols {
                        let nnz = usize::try_from(c.uvarint()?).ok()?;
                        // Each entry is ≥ 9 bytes (index varint + value).
                        if nnz > dim || nnz > c.remaining() / 9 {
                            return None;
                        }
                        let mut entries = Vec::with_capacity(nnz);
                        let mut prev: Option<u32> = None;
                        for _ in 0..nnz {
                            let idx = u32::try_from(c.uvarint()?).ok()?;
                            if idx as usize >= dim || prev.is_some_and(|p| idx <= p) {
                                return None;
                            }
                            prev = Some(idx);
                            entries.push((idx, c.f64()?));
                        }
                        *col = entries;
                    }
                    let [xi, eta] = cols;
                    pairs.push(FactorPair::Sparse { xi, eta });
                }
                _ => return None,
            }
        }
        Some(LowRankDelta { dim, pairs })
    }

    /// Decodes a buffer that must span `bytes` exactly (trailing bytes
    /// are a defect, same policy as the WAL payload decoders).
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut c = codec::Cursor::new(bytes);
        let delta = Self::decode_from(&mut c)?;
        c.at_end().then_some(delta)
    }
}

/// Support size at which [`LowRankDelta::between`] switches from a direct
/// `O(s³)` Jacobi eigendecomposition to the column-pivoted range-finder
/// route (`O(s²·r)` for numerical rank `r`).
const BETWEEN_DIRECT_SUPPORT: usize = 128;

/// Outcome of one [`LowRankDelta::recompress`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recompression {
    /// Buffered pairs before the pass.
    pub pairs_before: usize,
    /// Buffered pairs after the pass: `max(#λ₊, #λ₋) ≈ rank/2` of the
    /// numerical rank of Δ at `tol` (two eigendirections per pair, one of
    /// each sign).
    pub pairs_after: usize,
    /// `Σ|λ|` over the truncated eigendirections: a hard upper bound on
    /// `max |Δ_after − Δ_before|` entrywise (each dropped direction moves
    /// an entry by at most `|λ|·|q_a|·|q_b| ≤ |λ|` for unit `q`).
    pub discarded_mass: f64,
}

/// One eigendirection of Δ restricted to the support: the signed
/// eigenvalue and the unit eigenvector in support-local coordinates.
type EigenDirection = (f64, Vec<f64>);

/// Copies one factor pair into support-local dense vectors.
fn compact_pair(rows: &[u32], pair: &FactorPair, xs: &mut [f64], es: &mut [f64]) {
    let local = |g: u32| -> usize {
        rows.binary_search(&g)
            .expect("support covers every factor index")
    };
    xs.fill(0.0);
    es.fill(0.0);
    match pair {
        FactorPair::Dense { xi, eta } => {
            for (li, &g) in rows.iter().enumerate() {
                xs[li] = xi[g as usize];
                es[li] = eta[g as usize];
            }
        }
        FactorPair::Sparse { xi, eta } => {
            for &(g, val) in xi {
                xs[local(g)] = val;
            }
            for &(g, val) in eta {
                es[local(g)] = val;
            }
        }
    }
}

/// Truncates a spectrum at `tol` relative to `|λ|_max`: keeps the
/// surviving `(λ, q)` directions, accumulates the discarded `Σ|λ|`.
fn truncate_spectrum(
    lambda: &[f64],
    vec_of: impl Fn(usize) -> Vec<f64>,
    tol: f64,
) -> (Vec<EigenDirection>, f64) {
    let lmax = lambda.iter().fold(0.0f64, |a, &l| a.max(l.abs()));
    let mut dirs = Vec::new();
    let mut dropped = 0.0f64;
    for (t, &l) in lambda.iter().enumerate() {
        if l == 0.0 || l.abs() <= tol.max(0.0) * lmax {
            dropped += l.abs();
        } else {
            dirs.push((l, vec_of(t)));
        }
    }
    (dirs, dropped)
}

/// The thin-QR route (`2m ≤ s`): `Δ|support = W·J·Wᵀ = Q·(R·J·Rᵀ)·Qᵀ`
/// with `W = [U V]` support-compacted and `J` the block swap; the
/// `2m × 2m` core is eigendecomposed and the survivors lifted back
/// through `Q`.
fn eigen_directions_qr(rows: &[u32], batch: &[FactorPair], tol: f64) -> (Vec<EigenDirection>, f64) {
    let s = rows.len();
    let m = batch.len();
    debug_assert!(m >= 1 && 2 * m <= s, "QR route needs a tall stack");
    let mut w = DenseMatrix::zeros(s, 2 * m);
    let mut xs = vec![0.0; s];
    let mut es = vec![0.0; s];
    for (t, pair) in batch.iter().enumerate() {
        compact_pair(rows, pair, &mut xs, &mut es);
        for li in 0..s {
            w.set(li, t, xs[li]);
            w.set(li, m + t, es[li]);
        }
    }
    let (q, r) = qr_thin(&w);
    // R·J: column k of the product is column (k+m) mod 2m of R.
    let mut rj = DenseMatrix::zeros(2 * m, 2 * m);
    for k in 0..2 * m {
        let src = (k + m) % (2 * m);
        for i in 0..2 * m {
            rj.set(i, k, r.get(i, src));
        }
    }
    let mut core = rj.matmul_nt(&r);
    // Symmetric in exact arithmetic; symmetrise away the roundoff.
    for i in 0..2 * m {
        for j in (i + 1)..2 * m {
            let v = 0.5 * (core.get(i, j) + core.get(j, i));
            core.set(i, j, v);
            core.set(j, i, v);
        }
    }
    let (lambda, z) = sym_eigen(&core);
    truncate_spectrum(
        &lambda,
        |t| {
            let mut zt = vec![0.0; 2 * m];
            let mut qz = vec![0.0; s];
            z.col_into(t, &mut zt);
            q.matvec(&zt, &mut qz);
            qz
        },
        tol,
    )
}

/// The direct route (`2m > s`): materialise the support-compacted
/// `s × s` Δ (never `n × n`) and eigendecompose it outright — exact at
/// rank ≤ `s`, which is also Δ's true rank bound.
fn eigen_directions_direct(
    rows: &[u32],
    batch: &[FactorPair],
    tol: f64,
) -> (Vec<EigenDirection>, f64) {
    let s = rows.len();
    let mut ds = DenseMatrix::zeros(s, s);
    let mut xs = vec![0.0; s];
    let mut es = vec![0.0; s];
    for pair in batch {
        compact_pair(rows, pair, &mut xs, &mut es);
        ds.rank_one_update(1.0, &xs, &es);
        ds.rank_one_update(1.0, &es, &xs);
    }
    let (lambda, v) = sym_eigen(&ds);
    truncate_spectrum(
        &lambda,
        |t| {
            let mut vt = vec![0.0; s];
            v.col_into(t, &mut vt);
            vt
        },
        tol,
    )
}

/// Rewrites eigendirections as ordinary factor pairs. A symmetric
/// rank-two term `ξ·ηᵀ + η·ξᵀ` carries exactly one non-negative and one
/// non-positive eigenvalue (`λ± = ξᵀη ± |ξ|·|η|`), so eigendirections
/// are packed **two per pair**, one of each sign:
///
/// ```text
/// λ₊·q₊·q₊ᵀ + λ₋·q₋·q₋ᵀ = ξ·ηᵀ + η·ξᵀ
///   with ξ = a·q₊ + b·q₋, η = a·q₊ − b·q₋, a = √(λ₊/2), b = √(−λ₋/2)
/// ```
///
/// (then `ξ·ηᵀ + η·ξᵀ = 2a²·q₊q₊ᵀ − 2b²·q₋q₋ᵀ`, and the cross terms
/// cancel). An unmatched direction falls back to the single-direction
/// form `ξ = (λ/2)·q, η = q`. Both signed lists arrive sorted by `|λ|`
/// descending, so zipped partners have comparable magnitude and the
/// balanced `√` coefficients keep the factors well-scaled. Emitted pairs
/// are sparse when the support is a minority of the dimension
/// (16 B/entry sparse vs 8 B/entry dense breaks even at `s = dim/2`, and
/// sparse preserves the touched-rows flush path).
fn emit_eigen_pairs(dim: usize, rows: &[u32], dirs: Vec<EigenDirection>) -> Vec<FactorPair> {
    let s = rows.len();
    let sparse_out = 2 * s <= dim;
    let (pos, neg): (Vec<_>, Vec<_>) = dirs.into_iter().partition(|&(l, _)| l > 0.0);
    let paired = pos.len().min(neg.len());
    let mut out = Vec::with_capacity(pos.len().max(neg.len()));
    let mut xi_local = vec![0.0; s];
    let mut eta_local = vec![0.0; s];

    let emit = |xi_local: &[f64], eta_local: &[f64], out: &mut Vec<FactorPair>| {
        if sparse_out {
            let xi: Vec<(u32, f64)> = rows
                .iter()
                .zip(xi_local)
                .filter(|&(_, &v)| v != 0.0)
                .map(|(&g, &v)| (g, v))
                .collect();
            let eta: Vec<(u32, f64)> = rows
                .iter()
                .zip(eta_local)
                .filter(|&(_, &v)| v != 0.0)
                .map(|(&g, &v)| (g, v))
                .collect();
            if !xi.is_empty() && !eta.is_empty() {
                out.push(FactorPair::Sparse { xi, eta });
            }
        } else {
            let mut xi = vec![0.0; dim];
            let mut eta = vec![0.0; dim];
            for (li, &g) in rows.iter().enumerate() {
                xi[g as usize] = xi_local[li];
                eta[g as usize] = eta_local[li];
            }
            out.push(FactorPair::Dense { xi, eta });
        }
    };

    for k in 0..paired {
        let (lp, ref qp) = pos[k];
        let (ln, ref qn) = neg[k];
        let a = (lp / 2.0).sqrt();
        let b = (-ln / 2.0).sqrt();
        for li in 0..s {
            xi_local[li] = a * qp[li] + b * qn[li];
            eta_local[li] = a * qp[li] - b * qn[li];
        }
        emit(&xi_local, &eta_local, &mut out);
    }
    // Exactly one signed list has a tail past the zipped prefix.
    for &(l, ref q) in pos[paired..].iter().chain(neg[paired..].iter()) {
        for li in 0..s {
            xi_local[li] = 0.5 * l * q[li];
            eta_local[li] = q[li];
        }
        emit(&xi_local, &eta_local, &mut out);
    }
    out
}

/// Applies one dense schedule unit (1–[`DENSE_GROUP`] consecutive dense
/// pairs) to a tile of whole rows starting at global row `start_a`. The
/// arity dispatch happens once per (tile, unit) — not per row — and each
/// arity gets a fully unrolled inner loop.
fn dense_unit_rows(pairs: &[FactorPair], start_a: usize, rows: &mut [f64], cols: usize) {
    fn refs<const K: usize>(pairs: &[FactorPair]) -> ([&[f64]; K], [&[f64]; K]) {
        let pick = |t: usize| match &pairs[t] {
            FactorPair::Dense { xi, eta } => (xi.as_slice(), eta.as_slice()),
            FactorPair::Sparse { .. } => unreachable!("schedule() groups only dense pairs"),
        };
        (
            std::array::from_fn(|t| pick(t).0),
            std::array::from_fn(|t| pick(t).1),
        )
    }
    macro_rules! dispatch {
        ($($k:literal),*) => {
            match pairs.len() {
                $($k => {
                    let (xis, etas) = refs::<$k>(pairs);
                    dense_group_rows::<$k>(&xis, &etas, start_a, rows, cols);
                })*
                _ => {
                    // Unreachable via `schedule()`, but stay correct regardless.
                    for (local, row) in rows.chunks_exact_mut(cols).enumerate() {
                        for pair in pairs {
                            apply_pair_to_row(pair, start_a + local, row);
                        }
                    }
                }
            }
        };
    }
    dispatch!(1, 2, 3, 4, 5, 6, 7, 8);
}

/// Rows advanced together by the fused dense kernel. Each factor element
/// `ξ_t[b]`/`η_t[b]` is loaded once and feeds [`ROW_UNROLL`] independent
/// accumulator chains — the per-element chain of `2K` dependent adds is
/// what bounds a single-row sweep, not bandwidth, so overlapping rows is
/// worth ~1.4× on its own (more with wide registers).
const ROW_UNROLL: usize = 4;

/// The fused dense row kernel over a tile:
/// `row_a += Σ_t ξ_t[a]·η_t + η_t[a]·ξ_t` for a group of `K` pairs, one
/// load/store of each row element for all `2K` multiply-adds, processing
/// [`ROW_UNROLL`] rows per factor-stream pass. Per element the
/// accumulation order is exactly the eager one — pair `t`'s ξ-side then
/// η-side, then pair `t+1` — and rows never mix, so every regime,
/// grouping, unroll, and thread count produces the same floating-point
/// result.
fn dense_group_rows<const K: usize>(
    xis: &[&[f64]; K],
    etas: &[&[f64]; K],
    start_a: usize,
    rows: &mut [f64],
    cols: usize,
) {
    const R: usize = ROW_UNROLL;
    let mut blocks = rows.chunks_exact_mut(R * cols);
    let mut base = start_a;
    for block in blocks.by_ref() {
        let mut xa = [[0.0f64; K]; R];
        let mut ya = [[0.0f64; K]; R];
        let mut all_zero = true;
        for r in 0..R {
            for t in 0..K {
                xa[r][t] = xis[t][base + r];
                ya[r][t] = etas[t][base + r];
                all_zero &= xa[r][t] == 0.0 && ya[r][t] == 0.0;
            }
        }
        base += R;
        if all_zero {
            continue;
        }
        // Re-slice to the row length so the inner loops elide bounds checks.
        let xs: [&[f64]; K] = std::array::from_fn(|t| &xis[t][..cols]);
        let es: [&[f64]; K] = std::array::from_fn(|t| &etas[t][..cols]);
        let mut rest = &mut *block;
        let mut row_refs: [&mut [f64]; R] = std::array::from_fn(|_| Default::default());
        for slot in row_refs.iter_mut() {
            let (head, tail) = rest.split_at_mut(cols);
            *slot = head;
            rest = tail;
        }
        for b in 0..cols {
            let x_b: [f64; K] = std::array::from_fn(|t| xs[t][b]);
            let e_b: [f64; K] = std::array::from_fn(|t| es[t][b]);
            for r in 0..R {
                let mut acc = row_refs[r][b];
                for t in 0..K {
                    acc += xa[r][t] * e_b[t];
                    acc += ya[r][t] * x_b[t];
                }
                row_refs[r][b] = acc;
            }
        }
    }
    // Remainder rows (tile size not a multiple of R) one at a time.
    for (local, row) in blocks.into_remainder().chunks_exact_mut(cols).enumerate() {
        let a = base + local;
        let mut xa = [0.0f64; K];
        let mut ya = [0.0f64; K];
        let mut all_zero = true;
        for t in 0..K {
            xa[t] = xis[t][a];
            ya[t] = etas[t][a];
            all_zero &= xa[t] == 0.0 && ya[t] == 0.0;
        }
        if all_zero {
            continue;
        }
        let xs: [&[f64]; K] = std::array::from_fn(|t| &xis[t][..cols]);
        let es: [&[f64]; K] = std::array::from_fn(|t| &etas[t][..cols]);
        for (b, rb) in row.iter_mut().enumerate() {
            let mut acc = *rb;
            for t in 0..K {
                acc += xa[t] * es[t][b];
                acc += ya[t] * xs[t][b];
            }
            *rb = acc;
        }
    }
}

/// Adds row `a` of one pair's `ξ·ηᵀ + η·ξᵀ` into `row`: ξ-side first,
/// then η-side — the same order as the eager `add_sym_outer` /
/// affected-area loops, so fused results match eager ones exactly.
#[inline]
fn apply_pair_to_row(pair: &FactorPair, a: usize, row: &mut [f64]) {
    match pair {
        FactorPair::Dense { xi, eta } => {
            let (xa, ya) = (xi[a], eta[a]);
            if xa != 0.0 {
                vecops::axpy(xa, eta, row);
            }
            if ya != 0.0 {
                vecops::axpy(ya, xi, row);
            }
        }
        FactorPair::Sparse { xi, eta } => {
            let xa = sparse_at(xi, a);
            if xa != 0.0 {
                for &(b, v) in eta {
                    row[b as usize] += xa * v;
                }
            }
            let ya = sparse_at(eta, a);
            if ya != 0.0 {
                for &(b, v) in xi {
                    row[b as usize] += ya * v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_pair(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let f = |i: usize, s: u64| (((i as u64 + 1) * (s + 3)) % 17) as f64 * 0.25 - 1.0;
        (
            (0..n).map(|i| f(i, seed)).collect(),
            (0..n).map(|i| f(i, seed * 7 + 1)).collect(),
        )
    }

    fn eager_reference(n: usize, pairs: &[(Vec<f64>, Vec<f64>)]) -> DenseMatrix {
        let mut s = DenseMatrix::zeros(n, n);
        for (xi, eta) in pairs {
            s.add_sym_outer(1.0, xi, eta);
        }
        s
    }

    #[test]
    fn fused_dense_apply_matches_eager_exactly() {
        let n = 37;
        let pairs: Vec<_> = (0..5).map(|t| dense_pair(n, t)).collect();
        let expect = eager_reference(n, &pairs);

        let mut delta = LowRankDelta::new(n);
        for (xi, eta) in &pairs {
            delta.push_dense(xi.clone(), eta.clone());
        }
        assert_eq!(delta.pending_pairs(), 5);
        let mut s = DenseMatrix::zeros(n, n);
        delta.apply_to_with_threads(&mut s, 1);
        assert!(delta.is_empty(), "apply drains the buffer");
        assert_eq!(s.max_abs_diff(&expect), 0.0, "fused == eager, bitwise");
    }

    #[test]
    fn parallel_apply_is_bit_identical_to_serial() {
        let n = 101; // not a multiple of the tile or chunk sizes
        let pairs: Vec<_> = (0..7).map(|t| dense_pair(n, t + 11)).collect();
        let mut serial = DenseMatrix::zeros(n, n);
        let mut parallel = DenseMatrix::zeros(n, n);
        for threads in [2, 3, 5] {
            let mut d1 = LowRankDelta::new(n);
            let mut d2 = LowRankDelta::new(n);
            for (xi, eta) in &pairs {
                d1.push_dense(xi.clone(), eta.clone());
                d2.push_dense(xi.clone(), eta.clone());
            }
            // Mix in a sparse pair so both kinds cross chunk boundaries.
            d1.push_sparse(vec![(3, 1.5), (90, -0.25)], vec![(0, 2.0), (55, 1.0)]);
            d2.push_sparse(vec![(3, 1.5), (90, -0.25)], vec![(0, 2.0), (55, 1.0)]);
            d1.apply_to_with_threads(&mut serial, 1);
            d2.apply_to_with_threads(&mut parallel, threads);
            assert_eq!(
                serial.max_abs_diff(&parallel),
                0.0,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn sparse_apply_touches_only_active_rows() {
        let n = 20;
        let mut delta = LowRankDelta::new(n);
        delta.push_sparse(vec![(2, 1.0)], vec![(5, 3.0)]);
        assert_eq!(delta.touched_rows(), Some(vec![2, 5]));
        let mut s = DenseMatrix::zeros(n, n);
        delta.apply_to(&mut s);
        assert_eq!(s.get(2, 5), 3.0);
        assert_eq!(s.get(5, 2), 3.0);
        assert_eq!(s.count_nonzero(0.0), 2);
    }

    #[test]
    fn support_rows_is_exact_for_dense_and_sparse() {
        let n = 6;
        let mut delta = LowRankDelta::new(n);
        delta.push_dense(
            vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0],
        );
        delta.push_sparse(vec![(4, 2.0)], vec![(2, -1.0)]);
        // touched_rows gives up on the dense pair; support_rows does not.
        assert_eq!(delta.touched_rows(), None);
        assert_eq!(delta.support_rows(), vec![1, 2, 3, 4]);
        assert!(LowRankDelta::new(n).support_rows().is_empty());
    }

    #[test]
    fn dense_pair_makes_touched_rows_unknown() {
        let n = 4;
        let mut delta = LowRankDelta::new(n);
        delta.push_sparse(vec![(1, 1.0)], vec![(2, 1.0)]);
        delta.push_dense(vec![1.0; n], vec![1.0; n]);
        assert_eq!(delta.touched_rows(), None);
    }

    #[test]
    fn cancelled_pushes_leave_the_buffer_empty() {
        let n = 8;
        let mut delta = LowRankDelta::new(n);
        // A sparse term whose γ cancels exactly after dedup: no-op.
        delta.push_sparse(vec![(3, 1.0), (3, -1.0)], vec![(5, 2.0)]);
        // An empty support outright.
        delta.push_sparse(vec![], vec![(1, 1.0)]);
        // A dense term with an identically zero factor.
        delta.push_dense(vec![0.0; n], vec![1.0; n]);
        delta.push_dense(vec![1.0; n], vec![0.0; n]);
        assert!(delta.is_empty(), "no-op terms must not be buffered");
        assert_eq!(delta.pending_pairs(), 0);
        // A genuinely nonzero term still buffers.
        delta.push_sparse(vec![(3, 1.0), (3, 1.0)], vec![(5, 2.0)]);
        assert_eq!(delta.pending_pairs(), 1);
        assert_eq!(delta.pair_delta(3, 5), 4.0);
    }

    #[test]
    fn heap_bytes_accounts_sparse_storage_and_capacity() {
        let n = 1000;
        let mut delta = LowRankDelta::new(n);
        // Sparse-heavy buffer: 3 pairs of 2+2 entries each.
        for t in 0..3u32 {
            delta.push_sparse(
                vec![(t, 1.0), (t + 10, -1.0)],
                vec![(t + 20, 2.0), (t + 30, 0.5)],
            );
        }
        let per_entry = std::mem::size_of::<(u32, f64)>();
        let entries = 3 * 4 * per_entry; // 12 stored (u32, f64) slots
        let container = delta.pending_pairs() * std::mem::size_of::<FactorPair>();
        assert!(
            delta.heap_bytes() >= entries + container,
            "heap_bytes {} under-reports a sparse buffer (≥ {} expected)",
            delta.heap_bytes(),
            entries + container
        );
        // Capacity counts even past the filled length: a reserve on the
        // factor vec of a fresh pair must show up in the signal.
        let mut xi: Vec<(u32, f64)> = Vec::with_capacity(64);
        xi.push((0, 1.0));
        let before = delta.heap_bytes();
        delta.push_sparse(xi, vec![(1, 1.0)]);
        assert!(
            delta.heap_bytes() >= before + 64 * per_entry,
            "reserved sparse capacity must be accounted"
        );
    }

    /// A deliberately rank-deficient stream: every pushed pair is a
    /// combination of `basis` shared directions, so the numerical rank of
    /// Δ is at most `2·basis` no matter how many pairs are buffered.
    fn low_rank_stream(n: usize, pairs: usize, basis: usize) -> LowRankDelta {
        let base: Vec<Vec<f64>> = (0..basis)
            .map(|t| {
                (0..n)
                    .map(|i| ((i * (t + 2) + 1) as f64 * 0.61).sin())
                    .collect()
            })
            .collect();
        let mut delta = LowRankDelta::new(n);
        for p in 0..pairs {
            let mut xi = vec![0.0; n];
            let mut eta = vec![0.0; n];
            for (t, b) in base.iter().enumerate() {
                let cx = ((p * 7 + t * 3 + 1) as f64 * 0.37).cos();
                let ce = ((p * 5 + t * 11 + 2) as f64 * 0.53).sin();
                for i in 0..n {
                    xi[i] += cx * b[i];
                    eta[i] += ce * b[i];
                }
            }
            delta.push_dense(xi, eta);
        }
        delta
    }

    #[test]
    fn recompress_truncates_to_numerical_rank_and_preserves_delta() {
        let n = 40;
        let mut delta = low_rank_stream(n, 12, 3);
        assert_eq!(delta.pending_pairs(), 12);
        let reference: Vec<f64> = (0..n * n).map(|e| delta.pair_delta(e / n, e % n)).collect();
        let report = delta.recompress(1e-12);
        assert_eq!(report.pairs_before, 12);
        assert_eq!(report.pairs_after, delta.pending_pairs());
        // Numerical rank ≤ 2·basis = 6 ≪ 12.
        assert!(
            delta.pending_pairs() <= 6,
            "expected ≤ 6 eigenpairs, got {}",
            delta.pending_pairs()
        );
        // Lazy reads are unchanged within the tolerance.
        let mut max_diff = 0.0f64;
        for a in 0..n {
            for b in 0..n {
                max_diff = max_diff.max((delta.pair_delta(a, b) - reference[a * n + b]).abs());
            }
        }
        assert!(max_diff < 1e-12, "recompression drifted {max_diff:.2e}");
        // The applied matrix matches too (compressed pairs are ordinary).
        let mut s = DenseMatrix::zeros(n, n);
        delta.clone().apply_to_with_threads(&mut s, 1);
        let mut max_apply = 0.0f64;
        for a in 0..n {
            for b in 0..n {
                max_apply = max_apply.max((s.get(a, b) - reference[a * n + b]).abs());
            }
        }
        assert!(max_apply < 1e-12);
        // Idempotent-ish: a second pass cannot grow the buffer.
        let again = delta.recompress(1e-12);
        assert!(again.pairs_after <= again.pairs_before);
    }

    #[test]
    fn recompress_handles_more_pairs_than_the_dimension() {
        // 2·pairs ≫ n forces the direct s×s eigen route.
        let n = 10;
        let mut delta = low_rank_stream(n, 40, 2);
        let reference: Vec<f64> = (0..n * n).map(|e| delta.pair_delta(e / n, e % n)).collect();
        let report = delta.recompress(1e-12);
        assert!(
            report.pairs_after <= n / 2,
            "rank ≤ 4 fits under the s/2 cap"
        );
        for a in 0..n {
            for b in 0..n {
                assert!((delta.pair_delta(a, b) - reference[a * n + b]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn recompress_error_is_bounded_by_discarded_mass() {
        let n = 24;
        let mut delta = low_rank_stream(n, 8, 4);
        let reference: Vec<f64> = (0..n * n).map(|e| delta.pair_delta(e / n, e % n)).collect();
        // A deliberately lossy tolerance: some real directions are cut.
        let report = delta.recompress(0.2);
        assert!(report.discarded_mass > 0.0, "0.2 rel tol must discard mass");
        let mut max_diff = 0.0f64;
        for a in 0..n {
            for b in 0..n {
                max_diff = max_diff.max((delta.pair_delta(a, b) - reference[a * n + b]).abs());
            }
        }
        assert!(
            max_diff <= report.discarded_mass * (1.0 + 1e-9) + 1e-13,
            "error {max_diff:.3e} exceeds the discarded spectral mass {:.3e}",
            report.discarded_mass
        );
    }

    #[test]
    fn recompress_keeps_sparse_windows_sparse() {
        // All factors live on 6 of 100 rows: the compressed pairs must
        // stay sparse and the touched-rows flush path must survive.
        let n = 100;
        let mut delta = LowRankDelta::new(n);
        for t in 0..8u32 {
            delta.push_sparse(
                vec![(2, 1.0 + t as f64 * 0.1), (17, -0.5)],
                vec![(40, 2.0), (63, 0.25 * (t + 1) as f64), (90, -1.0)],
            );
        }
        let reference: Vec<(usize, usize, f64)> = [2usize, 17, 40, 63, 90, 5]
            .iter()
            .flat_map(|&a| {
                [2usize, 17, 40, 63, 90, 5]
                    .iter()
                    .map(|&b| (a, b, delta.pair_delta(a, b)))
                    .collect::<Vec<_>>()
            })
            .collect();
        delta.recompress(1e-12);
        assert!(delta.pending_pairs() < 8);
        let touched = delta.touched_rows();
        assert!(
            touched.is_some(),
            "compressed sparse window lost its sparse representation"
        );
        assert!(touched
            .unwrap()
            .iter()
            .all(|r| [2, 17, 40, 63, 90].contains(r)));
        for (a, b, want) in reference {
            assert!((delta.pair_delta(a, b) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn recompress_trivial_buffers_are_no_ops_or_exact() {
        // Empty and single-pair buffers are left alone.
        let mut empty = LowRankDelta::new(5);
        let r = empty.recompress(1e-12);
        assert_eq!((r.pairs_before, r.pairs_after), (0, 0));
        let mut single = LowRankDelta::new(5);
        single.push_dense(vec![1.0, 0.0, 0.0, 0.0, 0.0], vec![0.0, 2.0, 0.0, 0.0, 0.0]);
        let r = single.recompress(1e-12);
        assert_eq!((r.pairs_before, r.pairs_after), (1, 1));
        // A single-row support (s = 1) collapses to one diagonal pair.
        let mut diag = LowRankDelta::new(5);
        diag.push_sparse(vec![(3, 2.0)], vec![(3, 1.0)]);
        diag.push_sparse(vec![(3, -0.5)], vec![(3, 1.0)]);
        assert_eq!(diag.pair_delta(3, 3), 3.0);
        let r = diag.recompress(1e-12);
        assert_eq!(r.pairs_after, 1);
        assert!((diag.pair_delta(3, 3) - 3.0).abs() < 1e-14);
    }

    /// Symmetric matrix with a deterministic pseudo-random upper triangle.
    fn sym_matrix(n: usize, seed: u64) -> DenseMatrix {
        let mut s = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let h = (i as u64 * 31 + j as u64 * 7 + seed * 13) % 19;
                let v = (h as f64) * 0.05 - 0.45;
                s.set(i, j, v);
                s.set(j, i, v);
            }
        }
        s
    }

    #[test]
    fn between_reconstructs_the_exact_difference() {
        let n = 17;
        let from = sym_matrix(n, 1);
        // Perturb a handful of rows symmetrically.
        let mut to = from.clone();
        for &(a, b, v) in &[(2usize, 5usize, 0.3), (5, 5, -0.2), (11, 2, 0.7)] {
            to.add_to(a, b, v);
            if a != b {
                to.add_to(b, a, v);
            }
        }
        let (delta, dropped) = LowRankDelta::between(&from, &to, 0.0);
        assert!(dropped < 1e-14);
        for a in 0..n {
            for b in 0..n {
                let want = to.get(a, b) - from.get(a, b);
                assert!(
                    (delta.pair_delta(a, b) - want).abs() < 1e-12,
                    "({a},{b}): {} vs {want}",
                    delta.pair_delta(a, b)
                );
            }
        }
        // Support is 3 rows of 17 ⇒ sparse emission, exact touched rows.
        assert_eq!(delta.touched_rows().map(|r| r.len()), Some(3));
    }

    #[test]
    fn between_zero_pads_a_smaller_from_matrix() {
        let from = sym_matrix(6, 2);
        let mut to = DenseMatrix::zeros(9, 9);
        for i in 0..6 {
            for j in 0..6 {
                to.set(i, j, from.get(i, j));
            }
        }
        // New nodes 6..9 gain similarities; old block shifts too.
        to.set(7, 1, 0.4);
        to.set(1, 7, 0.4);
        to.set(8, 8, 1.0);
        to.add_to(0, 0, -0.1);
        let (delta, dropped) = LowRankDelta::between(&from, &to, 0.0);
        assert!(dropped < 1e-14);
        for a in 0..9 {
            for b in 0..9 {
                let f = if a < 6 && b < 6 { from.get(a, b) } else { 0.0 };
                let want = to.get(a, b) - f;
                assert!((delta.pair_delta(a, b) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn between_identical_matrices_is_empty() {
        let s = sym_matrix(8, 3);
        let (delta, dropped) = LowRankDelta::between(&s, &s, 0.0);
        assert!(delta.is_empty());
        assert_eq!(dropped, 0.0);
    }

    #[test]
    fn between_large_support_takes_the_range_finder_route() {
        // Support > BETWEEN_DIRECT_SUPPORT but low rank: a rank-4 update
        // touching every row.
        let n = BETWEEN_DIRECT_SUPPORT + 29;
        let from = sym_matrix(n, 4);
        let mut to = from.clone();
        for t in 0..2u64 {
            let (xi, eta) = dense_pair(n, t + 40);
            to.add_sym_outer(1.0, &xi, &eta);
        }
        let (delta, dropped) = LowRankDelta::between(&from, &to, 0.0);
        assert!(dropped < 1e-10);
        assert!(
            delta.pending_pairs() <= 4,
            "rank-4 difference, got {} pairs",
            delta.pending_pairs()
        );
        for a in (0..n).step_by(13) {
            for b in (0..n).step_by(7) {
                let want = to.get(a, b) - from.get(a, b);
                assert!((delta.pair_delta(a, b) - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn between_truncation_error_is_bounded_by_dropped_mass() {
        let n = 12;
        let from = sym_matrix(n, 5);
        let mut to = from.clone();
        // A dominant direction plus a tiny one.
        let (xi, _) = dense_pair(n, 50);
        to.add_sym_outer(1.0, &xi, &xi);
        let (eta, _) = dense_pair(n, 51);
        to.add_sym_outer(1e-8, &eta, &eta);
        let (delta, dropped) = LowRankDelta::between(&from, &to, 1e-4);
        assert!(dropped > 0.0, "the tiny direction must be truncated");
        for a in 0..n {
            for b in 0..n {
                let want = to.get(a, b) - from.get(a, b);
                assert!((delta.pair_delta(a, b) - want).abs() <= dropped + 1e-12);
            }
        }
    }

    #[test]
    fn extend_negated_subtracts_and_pads() {
        let n = 10;
        let mut small = LowRankDelta::new(7);
        small.push_dense(
            vec![1.0, 0.0, -2.0, 0.0, 0.5, 0.0, 3.0],
            (0..7).map(|i| i as f64 * 0.25).collect(),
        );
        small.push_sparse(vec![(2, 1.5)], vec![(6, -1.0)]);

        let mut stack = LowRankDelta::new(n);
        // Base pair ξ=0.5·1, η=1 contributes 0.5·1 + 1·0.5 = 1.0 at every
        // (a, b); stacking −small on top must subtract its zero-padded Δ.
        stack.push_dense(vec![0.5; n], vec![1.0; n]);
        stack.extend_negated(&small);

        for a in 0..n {
            for b in 0..n {
                let s = if a < 7 && b < 7 {
                    small.pair_delta(a, b)
                } else {
                    0.0
                };
                assert!(
                    (stack.pair_delta(a, b) - (1.0 - s)).abs() < 1e-12,
                    "({a},{b})"
                );
            }
        }
    }

    #[test]
    fn lazy_reads_match_applied_matrix() {
        let n = 23;
        let pairs: Vec<_> = (0..4).map(|t| dense_pair(n, t + 5)).collect();
        let mut delta = LowRankDelta::new(n);
        for (xi, eta) in &pairs {
            delta.push_dense(xi.clone(), eta.clone());
        }
        delta.push_sparse(vec![(1, 0.5), (7, -2.0)], vec![(0, 1.0), (19, 0.75)]);

        let mut applied = DenseMatrix::zeros(n, n);
        {
            let mut d = delta.clone();
            d.apply_to_with_threads(&mut applied, 1);
        }
        for a in 0..n {
            let mut row = vec![0.0; n];
            delta.add_row_delta(a, &mut row);
            for b in 0..n {
                assert!((applied.get(a, b) - row[b]).abs() < 1e-12);
                assert!((applied.get(a, b) - delta.pair_delta(a, b)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn push_sparse_sorts_and_drops_zeros() {
        let mut delta = LowRankDelta::new(10);
        delta.push_sparse(vec![(7, 1.0), (2, 0.0), (1, -1.0)], vec![(4, 2.0)]);
        // The zero entry at index 2 contributes nothing anywhere.
        assert_eq!(delta.pair_delta(2, 4), 0.0);
        assert_eq!(delta.pair_delta(7, 4), 2.0);
        assert_eq!(delta.pair_delta(4, 1), -2.0);
    }

    #[test]
    fn clear_and_bookkeeping() {
        let mut delta = LowRankDelta::new(6);
        assert!(delta.is_empty());
        assert_eq!(delta.dim(), 6);
        delta.push_dense(vec![1.0; 6], vec![2.0; 6]);
        assert!(delta.heap_bytes() >= 2 * 6 * 8);
        delta.clear();
        assert!(delta.is_empty());
        let mut s = DenseMatrix::zeros(6, 6);
        delta.apply_to(&mut s); // empty apply is a no-op
        assert_eq!(s.count_nonzero(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "push_dense: xi length mismatch")]
    fn push_dense_rejects_wrong_length() {
        let mut delta = LowRankDelta::new(4);
        delta.push_dense(vec![1.0; 3], vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "push_sparse: index out of range")]
    fn push_sparse_rejects_out_of_range() {
        let mut delta = LowRankDelta::new(4);
        delta.push_sparse(vec![(4, 1.0)], vec![]);
    }

    /// Lazy reads of a decoded buffer must match the original exactly on
    /// every entry — the wire form preserves IEEE-754 bits.
    fn assert_bit_identical(a: &LowRankDelta, b: &LowRankDelta) {
        assert_eq!(a.dim(), b.dim());
        assert_eq!(a.pending_pairs(), b.pending_pairs());
        for r in 0..a.dim() {
            for c in 0..a.dim() {
                assert_eq!(
                    a.pair_delta(r, c).to_bits(),
                    b.pair_delta(r, c).to_bits(),
                    "entry ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn encode_round_trips_mixed_pairs() {
        let mut delta = LowRankDelta::new(5);
        let (xi, eta) = dense_pair(5, 11);
        delta.push_dense(xi, eta);
        delta.push_sparse(vec![(0, 0.25), (3, -1.5)], vec![(2, 4.0)]);
        delta.push_sparse(vec![], vec![(4, -0.0)]); // empty + signed-zero columns
        let bytes = delta.encode();
        let back = LowRankDelta::decode(&bytes).expect("round trip");
        assert_bit_identical(&delta, &back);
        // Determinism: a second encode of the decoded buffer is
        // byte-identical to the first.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn encode_round_trips_empty_and_post_recompress() {
        let empty = LowRankDelta::new(7);
        let bytes = empty.encode();
        let back = LowRankDelta::decode(&bytes).expect("empty round trip");
        assert!(back.is_empty());
        assert_eq!(back.dim(), 7);
        assert_eq!(back.encode(), bytes);

        let mut delta = low_rank_stream(12, 9, 3);
        delta.recompress(1e-12);
        let bytes = delta.encode();
        let back = LowRankDelta::decode(&bytes).expect("recompressed round trip");
        assert_bit_identical(&delta, &back);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn decode_from_leaves_cursor_after_one_buffer() {
        let mut delta = LowRankDelta::new(3);
        delta.push_sparse(vec![(1, 2.0)], vec![(0, 1.0), (2, 3.0)]);
        let mut bytes = delta.encode();
        bytes.extend_from_slice(b"tail");
        let mut c = incsim_codec::Cursor::new(&bytes);
        let back = LowRankDelta::decode_from(&mut c).expect("embedded decode");
        assert_bit_identical(&delta, &back);
        assert_eq!(c.remaining(), 4);
        // The strict decoder rejects the same trailing bytes.
        assert!(LowRankDelta::decode(&bytes).is_none());
    }

    #[test]
    fn decode_rejects_structural_defects() {
        let mut delta = LowRankDelta::new(4);
        delta.push_sparse(vec![(1, 1.0), (3, 2.0)], vec![(0, -1.0)]);
        let good = delta.encode();
        // Truncation at every prefix length fails cleanly.
        for cut in 0..good.len() {
            assert!(LowRankDelta::decode(&good[..cut]).is_none(), "cut {cut}");
        }
        // Unknown wire version.
        let mut bad = good.clone();
        bad[0] = 9;
        assert!(LowRankDelta::decode(&bad).is_none());
        // Unknown pair kind (byte after version + dim + count varints).
        let mut bad = good.clone();
        bad[3] = 7;
        assert!(LowRankDelta::decode(&bad).is_none());
        // A dense pair whose promised dim outruns the payload.
        let mut hostile = Vec::new();
        incsim_codec::put_u8(&mut hostile, LowRankDelta::WIRE_VERSION);
        incsim_codec::put_uvarint(&mut hostile, u64::from(u32::MAX));
        incsim_codec::put_uvarint(&mut hostile, 1);
        incsim_codec::put_u8(&mut hostile, 0);
        assert!(LowRankDelta::decode(&hostile).is_none());
    }
}

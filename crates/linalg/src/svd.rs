//! Singular value decomposition: one-sided Jacobi and randomized truncated.
//!
//! The Inc-SVD baseline of Li et al. (reproduced in `incsim-baselines`)
//! needs (a) a rank-`r` SVD of the sparse transition matrix `Q` as its
//! precomputation step (Eq. 3 of the paper) and (b) small dense SVDs of the
//! auxiliary matrix `C̃ = Σ + Uᵀ·ΔQ·V` on every link update (Eq. 5).
//!
//! * [`jacobi_svd`] — one-sided Jacobi: slow but robust and accurate; used
//!   for the small dense factorisations and as the ground truth in tests.
//! * [`truncated_svd`] — Halko–Martinsson–Tropp randomized range finder with
//!   power iterations; used for the rank-`r` factorisation of large sparse
//!   `Q`, where a full Jacobi SVD would be `O(n³)` per sweep.

use crate::dense::DenseMatrix;
use crate::qr::qr_thin;
use crate::vecops;
use rand::Rng;

/// Minimal abstraction over matrices that can act on vectors.
///
/// Both [`DenseMatrix`] and [`crate::CsrMatrix`] implement this, so the
/// randomized SVD works on either without copies.
pub trait LinOp {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;
    /// Number of columns of the operator.
    fn ncols(&self) -> usize;
    /// `y = A·x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// `y = Aᵀ·x`.
    fn apply_t(&self, x: &[f64], y: &mut [f64]);
}

impl LinOp for DenseMatrix {
    fn nrows(&self) -> usize {
        self.rows()
    }
    fn ncols(&self) -> usize {
        self.cols()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
    fn apply_t(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_t(x, y);
    }
}

/// A (possibly truncated) singular value decomposition `A ≈ U·diag(s)·Vᵀ`.
///
/// `U` is `m × k`, `s` has length `k` (non-increasing, non-negative), and
/// `V` is `n × k`; both factor matrices are column-orthonormal on the
/// columns whose singular value is nonzero.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors (`m × k`).
    pub u: DenseMatrix,
    /// Singular values, sorted non-increasing.
    pub s: Vec<f64>,
    /// Right singular vectors (`n × k`).
    pub v: DenseMatrix,
}

impl Svd {
    /// Rank of the stored factorisation (number of retained triplets).
    pub fn k(&self) -> usize {
        self.s.len()
    }

    /// Reconstructs `U·diag(s)·Vᵀ` densely (test/diagnostic helper).
    pub fn reconstruct(&self) -> DenseMatrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = DenseMatrix::zeros(m, n);
        let mut ut = vec![0.0; m];
        let mut vt = vec![0.0; n];
        for (t, &sigma) in self.s.iter().enumerate() {
            if sigma == 0.0 {
                continue;
            }
            self.u.col_into(t, &mut ut);
            self.v.col_into(t, &mut vt);
            out.rank_one_update(sigma, &ut, &vt);
        }
        out
    }

    /// Truncates to the leading `r` singular triplets.
    pub fn truncate(&self, r: usize) -> Svd {
        let r = r.min(self.k());
        let mut u = DenseMatrix::zeros(self.u.rows(), r);
        let mut v = DenseMatrix::zeros(self.v.rows(), r);
        for t in 0..r {
            for i in 0..self.u.rows() {
                u.set(i, t, self.u.get(i, t));
            }
            for i in 0..self.v.rows() {
                v.set(i, t, self.v.get(i, t));
            }
        }
        Svd {
            u,
            s: self.s[..r].to_vec(),
            v,
        }
    }

    /// Numerical rank: the number of singular values above
    /// `tol · σ_max`. The tolerance is **relative to the largest singular
    /// value** — the same convention as [`crate::qr::rank_qrcp`], so a
    /// scaled matrix `αA` reports the same rank as `A` and a rank
    /// tolerance means the same thing on small-magnitude deltas as on
    /// unit-scale matrices. A matrix whose largest singular value is
    /// exactly 0 has rank 0.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.s.iter().copied().fold(0.0f64, f64::max);
        if smax <= 0.0 {
            return 0;
        }
        self.s.iter().filter(|&&x| x > tol * smax).count()
    }

    /// Heap bytes held by the three factors (memory experiment).
    pub fn heap_bytes(&self) -> usize {
        self.u.heap_bytes() + self.v.heap_bytes() + self.s.capacity() * std::mem::size_of::<f64>()
    }
}

/// Full SVD of a dense matrix via one-sided Jacobi rotations.
///
/// Handles any shape; complexity is `O(min(m,n)²·max(m,n))` per sweep with
/// typically 6–12 sweeps to reach machine precision.
pub fn jacobi_svd(a: &DenseMatrix) -> Svd {
    if a.rows() < a.cols() {
        // SVD(Aᵀ) = V·Σ·Uᵀ — swap the factors.
        let t = jacobi_svd(&a.transpose());
        return Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        };
    }
    let m = a.rows();
    let n = a.cols();
    // Column-major copies of A's columns for contiguous rotations.
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut v_cols: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            e
        })
        .collect();

    let eps = 1e-15;
    let max_sweeps = 60;
    for _sweep in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (alpha, beta, gamma) = {
                    let cp = &cols[p];
                    let cq = &cols[q];
                    (
                        vecops::dot(cp, cp),
                        vecops::dot(cq, cq),
                        vecops::dot(cp, cq),
                    )
                };
                if gamma.abs() <= eps * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                rotated = true;
                // Jacobi rotation zeroing the (p,q) Gram entry.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                let (left, right) = cols.split_at_mut(q);
                let cp = &mut left[p];
                let cq = &mut right[0];
                for i in 0..m {
                    let xp = cp[i];
                    let xq = cq[i];
                    cp[i] = c * xp - s * xq;
                    cq[i] = s * xp + c * xq;
                }
                let (vleft, vright) = v_cols.split_at_mut(q);
                let vp = &mut vleft[p];
                let vq = &mut vright[0];
                for i in 0..n {
                    let xp = vp[i];
                    let xq = vq[i];
                    vp[i] = c * xp - s * xq;
                    vq[i] = s * xp + c * xq;
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Singular values = column norms; U columns = normalised A columns.
    let mut order: Vec<usize> = (0..n).collect();
    let sigmas: Vec<f64> = cols.iter().map(|c| vecops::norm2(c)).collect();
    order.sort_by(|&i, &j| {
        sigmas[j]
            .partial_cmp(&sigmas[i])
            .expect("finite singular values")
    });

    let mut u = DenseMatrix::zeros(m, n);
    let mut v = DenseMatrix::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for (t, &j) in order.iter().enumerate() {
        let sigma = sigmas[j];
        s.push(sigma);
        if sigma > 0.0 {
            for i in 0..m {
                u.set(i, t, cols[j][i] / sigma);
            }
        }
        for i in 0..n {
            v.set(i, t, v_cols[j][i]);
        }
    }
    Svd { u, s, v }
}

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a **symmetric** matrix via
/// classical cyclic Jacobi rotations.
///
/// Returns the *signed* eigenvalues sorted by `|λ|` descending and the
/// matching orthonormal eigenvectors as the columns of `V`. This is the
/// routine the ΔS recompression core needs instead of [`jacobi_svd`]: an
/// SVD only recovers `|λ|` for an indefinite symmetric matrix, and when
/// `+σ` and `−σ` both occur the singular subspaces of the repeated `σ`
/// can mix the two eigendirections — the signs would be unrecoverable.
///
/// # Panics
/// Panics if `a` is not square. Symmetry is assumed, not checked: only
/// the upper triangle drives the rotations.
pub fn sym_eigen(a: &DenseMatrix) -> (Vec<f64>, DenseMatrix) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "sym_eigen requires a square matrix");
    let mut w = a.clone();
    let mut v = DenseMatrix::identity(n);
    // Rotation threshold: off-diagonal entries below eps·‖A‖_F cannot
    // move any eigenvalue by more than ~eps·‖A‖_F — converged.
    let fro = {
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                acc += w.get(i, j) * w.get(i, j);
            }
        }
        acc.sqrt()
    };
    let tiny = 1e-15 * fro;
    let max_sweeps = 60;
    for _sweep in 0..max_sweeps {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = w.get(p, q);
                if apq == 0.0 || apq.abs() <= tiny {
                    continue;
                }
                rotated = true;
                let app = w.get(p, p);
                let aqq = w.get(q, q);
                // The rotation angle that annihilates the (p,q) entry.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // A ← Gᵀ·A·G on the (p,q) plane: columns first, then rows.
                for i in 0..n {
                    let aip = w.get(i, p);
                    let aiq = w.get(i, q);
                    w.set(i, p, c * aip - s * aiq);
                    w.set(i, q, s * aip + c * aiq);
                }
                for j in 0..n {
                    let apj = w.get(p, j);
                    let aqj = w.get(q, j);
                    w.set(p, j, c * apj - s * aqj);
                    w.set(q, j, s * apj + c * aqj);
                }
                // Exact closed forms kill the roundoff the two-step
                // update leaves on the pivot entries.
                w.set(p, p, app - t * apq);
                w.set(q, q, aqq + t * apq);
                w.set(p, q, 0.0);
                w.set(q, p, 0.0);
                for i in 0..n {
                    let vip = v.get(i, p);
                    let viq = v.get(i, q);
                    v.set(i, p, c * vip - s * viq);
                    v.set(i, q, s * vip + c * viq);
                }
            }
        }
        if !rotated {
            break;
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        w.get(j, j)
            .abs()
            .partial_cmp(&w.get(i, i).abs())
            .expect("finite eigenvalues")
    });
    let mut lambda = Vec::with_capacity(n);
    let mut vecs = DenseMatrix::zeros(n, n);
    for (t, &j) in order.iter().enumerate() {
        lambda.push(w.get(j, j));
        for i in 0..n {
            vecs.set(i, t, v.get(i, j));
        }
    }
    (lambda, vecs)
}

/// Randomized truncated SVD of rank `r` (Halko, Martinsson & Tropp 2011).
///
/// `oversample` extra columns (≈8) and `power_iters` subspace iterations
/// (≈2) trade accuracy for time. Works on any [`LinOp`] — in particular the
/// sparse transition matrix `Q` without densification.
pub fn truncated_svd<O: LinOp, R: Rng>(
    op: &O,
    r: usize,
    oversample: usize,
    power_iters: usize,
    rng: &mut R,
) -> Svd {
    let m = op.nrows();
    let n = op.ncols();
    let l = (r + oversample).min(n).min(m).max(1);

    // Y = A·Ω with Gaussian Ω (n × l).
    let mut y = DenseMatrix::zeros(m, l);
    let mut omega_col = vec![0.0; n];
    let mut y_col = vec![0.0; m];
    for j in 0..l {
        for w in omega_col.iter_mut() {
            // Box-Muller keeps us independent of rand_distr.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            *w = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
        op.apply(&omega_col, &mut y_col);
        for i in 0..m {
            y.set(i, j, y_col[i]);
        }
    }

    // Power iterations with re-orthonormalisation: Y ← A·(Aᵀ·Q_y).
    // Column extraction goes through reused buffers (`col_into`), not
    // fresh allocations — this loop runs l·(2·power_iters + 1) times.
    let mut q = qr_thin(&y).0;
    let mut z_col = vec![0.0; n];
    let mut q_col = vec![0.0; m];
    let mut qz_col = vec![0.0; n];
    for _ in 0..power_iters {
        let mut z = DenseMatrix::zeros(n, l);
        for j in 0..l {
            q.col_into(j, &mut q_col);
            op.apply_t(&q_col, &mut z_col);
            for i in 0..n {
                z.set(i, j, z_col[i]);
            }
        }
        let qz = qr_thin(&z).0;
        let mut y2 = DenseMatrix::zeros(m, l);
        for j in 0..l {
            qz.col_into(j, &mut qz_col);
            op.apply(&qz_col, &mut y_col);
            for i in 0..m {
                y2.set(i, j, y_col[i]);
            }
        }
        q = qr_thin(&y2).0;
    }

    // B = Qᵀ·A  (l × n): row t of B is Aᵀ·q_t.
    let mut bt = DenseMatrix::zeros(n, l); // Bᵀ, tall
    for t in 0..l {
        q.col_into(t, &mut q_col);
        op.apply_t(&q_col, &mut z_col);
        for i in 0..n {
            bt.set(i, t, z_col[i]);
        }
    }
    // SVD of Bᵀ (n × l, tall): Bᵀ = W·Σ·Zᵀ  ⇒  B = Z·Σ·Wᵀ
    // ⇒  A ≈ Q·B = (Q·Z)·Σ·Wᵀ.
    let small = jacobi_svd(&bt);
    let z = small.v; // l × l
    let w = small.u; // n × l
    let u = q.matmul(&z);
    let full = Svd {
        u,
        s: small.s,
        v: w,
    };
    full.truncate(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn col_orthonormal_defect(m: &DenseMatrix, upto: usize) -> f64 {
        let mut d = 0.0f64;
        for i in 0..upto {
            for j in i..upto {
                let mut dot = 0.0;
                for k in 0..m.rows() {
                    dot += m.get(k, i) * m.get(k, j);
                }
                let target = if i == j { 1.0 } else { 0.0 };
                d = d.max((dot - target).abs());
            }
        }
        d
    }

    #[test]
    fn jacobi_svd_of_diagonal() {
        let a = DenseMatrix::from_diag(&[3.0, 1.0, 2.0]);
        let svd = jacobi_svd(&a);
        assert!((svd.s[0] - 3.0).abs() < 1e-12);
        assert!((svd.s[1] - 2.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn jacobi_svd_paper_example_2() {
        // Q = [0 1; 0 0]: lossless SVD has U=[1;0], Σ=[1], V=[0;1]
        // (up to sign) and rank 1.
        let q = DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let svd = jacobi_svd(&q);
        assert!((svd.s[0] - 1.0).abs() < 1e-14);
        assert!(svd.s[1].abs() < 1e-14);
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.reconstruct().max_abs_diff(&q) < 1e-14);
        // The paper's point: U·Uᵀ ≠ I when rank < n.
        let u1 = svd.truncate(1).u;
        let uut = u1.matmul_nt(&u1);
        assert!(uut.max_abs_diff(&DenseMatrix::identity(2)) > 0.5);
    }

    #[test]
    fn jacobi_svd_reconstructs_rectangular_matrices() {
        let tall = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let svd = jacobi_svd(&tall);
        assert!(svd.reconstruct().max_abs_diff(&tall) < 1e-12);
        assert!(col_orthonormal_defect(&svd.u, svd.rank(1e-12)) < 1e-12);
        assert!(col_orthonormal_defect(&svd.v, svd.rank(1e-12)) < 1e-12);

        let wide = tall.transpose();
        let svd = jacobi_svd(&wide);
        assert!(svd.reconstruct().max_abs_diff(&wide) < 1e-12);
    }

    #[test]
    fn jacobi_svd_singular_values_match_known_case() {
        // A = [3 0; 4 5] has singular values sqrt(45/2 ± sqrt(45²/4 - 225))
        // = (3√5 ± √5)/... known: σ₁=√45≈6.708? Compute via AᵀA eigens:
        // AᵀA = [25 20; 20 25], eigenvalues 45 and 5 ⇒ σ = √45, √5.
        let a = DenseMatrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]);
        let svd = jacobi_svd(&a);
        assert!((svd.s[0] - 45f64.sqrt()).abs() < 1e-12);
        assert!((svd.s[1] - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn truncated_svd_recovers_low_rank_matrix() {
        let mut rng = StdRng::seed_from_u64(42);
        // Build an exactly rank-3 10x8 matrix.
        let n = 10;
        let mut a = DenseMatrix::zeros(n, 8);
        for t in 0..3 {
            let x: Vec<f64> = (0..n).map(|i| ((i * (t + 2) + 1) as f64).sin()).collect();
            let y: Vec<f64> = (0..8).map(|j| ((j + t * 3) as f64).cos()).collect();
            a.rank_one_update((t + 1) as f64, &x, &y);
        }
        let svd = truncated_svd(&a, 3, 5, 2, &mut rng);
        assert_eq!(svd.k(), 3);
        assert!(
            svd.reconstruct().max_abs_diff(&a) < 1e-8,
            "diff={}",
            svd.reconstruct().max_abs_diff(&a)
        );
    }

    #[test]
    fn truncated_svd_on_sparse_operator() {
        use crate::sparse::CooBuilder;
        let mut rng = StdRng::seed_from_u64(7);
        let n = 30;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, (i + 1) % n, 1.0);
        }
        let m = b.build(); // cyclic permutation: all singular values 1
        let svd = truncated_svd(&m, 5, 8, 2, &mut rng);
        for &s in &svd.s {
            assert!((s - 1.0).abs() < 1e-8, "sigma={s}");
        }
    }

    #[test]
    fn truncate_keeps_leading_triplets() {
        let a = DenseMatrix::from_diag(&[5.0, 4.0, 3.0, 2.0]);
        let svd = jacobi_svd(&a).truncate(2);
        assert_eq!(svd.k(), 2);
        assert_eq!(svd.s, vec![5.0, 4.0]);
        // Reconstruction is the best rank-2 approximation: error = σ₃ = 3.
        let err = svd.reconstruct().max_abs_diff(&a);
        assert!((err - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sym_eigen_recovers_signed_spectrum() {
        // A = [[0, 1], [1, 0]]: eigenvalues ±1 — jacobi_svd would report
        // σ = {1, 1} and could mix the subspaces; sym_eigen must not.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let (lambda, v) = sym_eigen(&a);
        let mut sorted = lambda.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((sorted[0] + 1.0).abs() < 1e-14);
        assert!((sorted[1] - 1.0).abs() < 1e-14);
        // A·v_t = λ_t·v_t for each column.
        for (t, &l) in lambda.iter().enumerate() {
            let vt = v.col(t);
            let mut av = vec![0.0; 2];
            a.matvec(&vt, &mut av);
            for i in 0..2 {
                assert!((av[i] - l * vt[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sym_eigen_reconstructs_indefinite_matrix() {
        // A symmetric indefinite 5×5 built from signed rank-one terms.
        let n = 5;
        let mut a = DenseMatrix::zeros(n, n);
        for (t, &coef) in [2.5f64, -1.75, 0.5].iter().enumerate() {
            let x: Vec<f64> = (0..n).map(|i| ((i * (t + 2) + 1) as f64).sin()).collect();
            a.rank_one_update(coef, &x, &x);
        }
        let (lambda, v) = sym_eigen(&a);
        // |λ| sorted non-increasing.
        for w in lambda.windows(2) {
            assert!(w[0].abs() >= w[1].abs() - 1e-13);
        }
        // V orthonormal.
        assert!(col_orthonormal_defect(&v, n) < 1e-12);
        // Σ λ_t·v_t·v_tᵀ reconstructs A.
        let mut rec = DenseMatrix::zeros(n, n);
        for (t, &l) in lambda.iter().enumerate() {
            let vt = v.col(t);
            rec.rank_one_update(l, &vt, &vt);
        }
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn rank_is_scale_invariant_and_relative() {
        // Same numerical rank whether the matrix is unit-scale or scaled
        // down by 1e-8 — the aligned relative-tolerance semantics.
        let build = |scale: f64| {
            let mut a = DenseMatrix::zeros(4, 4);
            a.rank_one_update(scale, &[1.0, 2.0, 3.0, 4.0], &[2.0, -1.0, 0.5, 3.0]);
            a.rank_one_update(0.5 * scale, &[1.0, 0.0, -1.0, 2.0], &[0.0, 1.0, 1.0, -1.0]);
            a
        };
        let unit = jacobi_svd(&build(1.0));
        let small = jacobi_svd(&build(1e-8));
        assert_eq!(unit.rank(1e-10), 2);
        assert_eq!(small.rank(1e-10), unit.rank(1e-10));
        // rank_qrcp agrees under the same relative tolerance.
        use crate::qr::rank_qrcp;
        assert_eq!(rank_qrcp(&build(1.0), 1e-10), 2);
        assert_eq!(rank_qrcp(&build(1e-8), 1e-10), 2);
    }

    #[test]
    fn zero_matrix_svd() {
        let a = DenseMatrix::zeros(3, 3);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.rank(1e-12), 0);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-15);
    }
}

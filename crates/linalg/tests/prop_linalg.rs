//! Property-based tests of the linear-algebra substrate on arbitrary
//! matrices: factorisations must reconstruct, solves must have small
//! residuals, sparse and dense paths must agree.

use incsim_linalg::lu::LuFactors;
use incsim_linalg::qr::{orthonormality_defect, qr_thin, rank_qrcp};
use incsim_linalg::stein::{solve_stein, stein_series};
use incsim_linalg::svd::jacobi_svd;
use incsim_linalg::{CooBuilder, DenseMatrix};
use proptest::prelude::*;

/// Strategy: an `r × c` dense matrix with entries in [-2, 2].
fn arb_matrix(
    rows: std::ops::RangeInclusive<usize>,
    cols: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = DenseMatrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f64..2.0, r * c)
            .prop_map(move |data| DenseMatrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal(a in arb_matrix(1..=8, 1..=8)) {
        prop_assume!(a.rows() >= a.cols());
        let (q, r) = qr_thin(&a);
        prop_assert!(orthonormality_defect(&q) < 1e-9);
        let recon = q.matmul(&r);
        prop_assert!(recon.max_abs_diff(&a) < 1e-9);
        // R is upper triangular.
        for i in 0..r.rows() {
            for j in 0..i {
                prop_assert!(r.get(i, j).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn svd_reconstructs_any_matrix(a in arb_matrix(1..=7, 1..=7)) {
        let svd = jacobi_svd(&a);
        prop_assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
        // Singular values sorted non-increasing and non-negative.
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &s in &svd.s {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn svd_frobenius_identity(a in arb_matrix(2..=6, 2..=6)) {
        // ‖A‖_F² = Σ σᵢ².
        let svd = jacobi_svd(&a);
        let fro2: f64 = a.norm_fro().powi(2);
        let sum2: f64 = svd.s.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - sum2).abs() < 1e-8 * fro2.max(1.0));
    }

    #[test]
    fn lu_solve_has_small_residual(a in arb_matrix(2..=7, 2..=7), seed in 0u64..1000) {
        prop_assume!(a.rows() == a.cols());
        let n = a.rows();
        // Make it comfortably nonsingular: A + 4·I.
        let mut m = a.clone();
        for i in 0..n {
            m.add_to(i, i, 4.0);
        }
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) + seed as f64).sin()).collect();
        let lu = LuFactors::new(&m).expect("diagonally boosted");
        let x = lu.solve(&b).expect("solve");
        let mut ax = vec![0.0; n];
        m.matvec(&x, &mut ax);
        for i in 0..n {
            prop_assert!((ax[i] - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn rank_bounded_and_consistent_with_svd(a in arb_matrix(1..=6, 1..=6)) {
        let r_qr = rank_qrcp(&a, 1e-10);
        let svd = jacobi_svd(&a);
        let r_svd = svd.s.iter().filter(|&&s| s > 1e-9 * svd.s[0].max(1e-300)).count();
        prop_assert!(r_qr <= a.rows().min(a.cols()));
        // The two numerical ranks agree on generic matrices (tolerance gap
        // can differ by at most the borderline values, which random entries
        // essentially never produce).
        prop_assert!((r_qr as i64 - r_svd as i64).abs() <= 1);
    }

    #[test]
    fn stein_fixed_point_satisfies_equation((a, c) in (2usize..=5).prop_flat_map(|n| {
        let entries = proptest::collection::vec(-2.0f64..2.0, n * n);
        (entries.clone(), entries).prop_map(move |(ea, ec)| {
            (DenseMatrix::from_vec(n, n, ea), DenseMatrix::from_vec(n, n, ec))
        })
    })) {
        // Contract A to spectral radius < 1 via scaling by 1/(4·max|entry|+1).
        let mut a2 = a.clone();
        let scale = 1.0 / (4.0 * a.norm_max().max(0.25) * a.rows() as f64);
        a2.scale(scale);
        let x = solve_stein(&a2, &a2, &c, 1e-13, 100_000).expect("contractive");
        let mut rhs = a2.matmul(&x).matmul_nt(&a2);
        rhs.add_scaled(1.0, &c);
        prop_assert!(x.max_abs_diff(&rhs) < 1e-10);
        // Series agrees with the fixed point.
        let series = stein_series(&a2, &a2, &c, 400);
        prop_assert!(series.max_abs_diff(&x) < 1e-9);
    }

    #[test]
    fn csr_matches_dense_for_products(entries in proptest::collection::vec(
        (0usize..6, 0usize..6, -2.0f64..2.0), 0..24)) {
        let mut builder = CooBuilder::new(6, 6);
        for &(i, j, v) in &entries {
            builder.push(i, j, v);
        }
        let csr = builder.build();
        let dense = csr.to_dense();
        let x: Vec<f64> = (0..6).map(|i| (i as f64 * 0.77).cos()).collect();
        let mut ys = vec![0.0; 6];
        let mut yd = vec![0.0; 6];
        csr.matvec(&x, &mut ys);
        dense.matvec(&x, &mut yd);
        for i in 0..6 {
            prop_assert!((ys[i] - yd[i]).abs() < 1e-12);
        }
        csr.matvec_t(&x, &mut ys);
        dense.matvec_t(&x, &mut yd);
        for i in 0..6 {
            prop_assert!((ys[i] - yd[i]).abs() < 1e-12);
        }
        // mul_dense agrees with dense matmul.
        let b = DenseMatrix::from_vec(6, 3, (0..18).map(|k| (k as f64).sin()).collect());
        let c1 = csr.mul_dense(&b, 1);
        let c2 = dense.matmul(&b);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-12);
    }

    #[test]
    fn transpose_roundtrip_and_norm(entries in proptest::collection::vec(
        (0usize..5, 0usize..7, -1.0f64..1.0), 0..20)) {
        let mut builder = CooBuilder::new(5, 7);
        for &(i, j, v) in &entries {
            builder.push(i, j, v);
        }
        let csr = builder.build();
        prop_assert_eq!(csr.transpose().transpose(), csr.clone());
        prop_assert!((csr.norm_fro() - csr.to_dense().norm_fro()).abs() < 1e-12);
    }
}

//! Property-based tests of the graph substrate: arbitrary mutation
//! sequences keep the structure consistent, timelines replay exactly, and
//! text I/O round-trips.

use incsim_graph::digraph::DiGraph;
use incsim_graph::evolve::{EvolvingGraph, UpdateOp};
use incsim_graph::io::{parse_edge_list, write_edge_list};
use proptest::prelude::*;

/// A random mutation script: each step inserts or removes a random pair.
#[derive(Debug, Clone)]
enum Step {
    Insert(u32, u32),
    Remove(u32, u32),
}

fn arb_steps(n: u32, len: usize) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (any::<bool>(), 0..n, 0..n).prop_map(|(ins, u, v)| {
            if ins {
                Step::Insert(u, v)
            } else {
                Step::Remove(u, v)
            }
        }),
        0..=len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the script does, the adjacency structure stays internally
    /// consistent and mirrors a simple set-of-pairs model.
    #[test]
    fn mutations_match_set_model(steps in arb_steps(10, 60)) {
        let mut g = DiGraph::new(10);
        let mut model: std::collections::BTreeSet<(u32, u32)> = Default::default();
        for step in steps {
            match step {
                Step::Insert(u, v) => {
                    let expect_ok = !model.contains(&(u, v));
                    let got = g.insert_edge(u, v);
                    prop_assert_eq!(got.is_ok(), expect_ok);
                    if expect_ok {
                        model.insert((u, v));
                    }
                }
                Step::Remove(u, v) => {
                    let expect_ok = model.remove(&(u, v));
                    let got = g.remove_edge(u, v);
                    prop_assert_eq!(got.is_ok(), expect_ok);
                }
            }
        }
        g.validate().unwrap();
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let model_edges: Vec<(u32, u32)> = model.into_iter().collect();
        prop_assert_eq!(edges, model_edges);
    }

    /// Degrees always equal the lengths of the respective neighbor lists,
    /// and sum to the edge count.
    #[test]
    fn degree_bookkeeping(steps in arb_steps(8, 40)) {
        let mut g = DiGraph::new(8);
        for step in steps {
            match step {
                Step::Insert(u, v) => { let _ = g.insert_edge(u, v); }
                Step::Remove(u, v) => { let _ = g.remove_edge(u, v); }
            }
        }
        let mut in_sum = 0;
        let mut out_sum = 0;
        for v in 0..8u32 {
            prop_assert_eq!(g.in_degree(v), g.in_neighbors(v).len());
            prop_assert_eq!(g.out_degree(v), g.out_neighbors(v).len());
            in_sum += g.in_degree(v);
            out_sum += g.out_degree(v);
        }
        prop_assert_eq!(in_sum, g.edge_count());
        prop_assert_eq!(out_sum, g.edge_count());
    }

    /// Timeline law: G(t0) + updates_between(t0, t1) == G(t1).
    #[test]
    fn timeline_replay_is_exact(events in proptest::collection::vec(
        (any::<bool>(), 0u32..6, 0u32..6, 0u64..20), 0..40)) {
        let mut tl = EvolvingGraph::new(6);
        for (ins, u, v, t) in events {
            if ins {
                tl.record_insert(u, v, t);
            } else {
                tl.record_delete(u, v, t);
            }
        }
        for (t0, t1) in [(0u64, 10u64), (5, 15), (0, 20), (7, 7)] {
            let mut g = tl.snapshot_at(t0);
            for op in tl.updates_between(t0, t1) {
                prop_assert!(op.apply(&mut g).is_ok(), "stream op must apply");
            }
            prop_assert_eq!(g, tl.snapshot_at(t1), "mismatch for ({}, {})", t0, t1);
        }
    }

    /// Update streams never contain a no-op (insert of existing / delete of
    /// missing), by construction.
    #[test]
    fn streams_have_no_noops(events in proptest::collection::vec(
        (any::<bool>(), 0u32..5, 0u32..5, 0u64..12), 0..30)) {
        let mut tl = EvolvingGraph::new(5);
        for (ins, u, v, t) in events {
            if ins { tl.record_insert(u, v, t); } else { tl.record_delete(u, v, t); }
        }
        let mut g = tl.snapshot_at(3);
        for op in tl.updates_between(3, 12) {
            match op {
                UpdateOp::Insert(u, v) => prop_assert!(!g.has_edge(u, v)),
                UpdateOp::Delete(u, v) => prop_assert!(g.has_edge(u, v)),
            }
            op.apply(&mut g).unwrap();
        }
    }

    /// Edge-list I/O round-trips any graph (ids are already compact).
    #[test]
    fn io_roundtrip(edges in proptest::collection::vec((0u32..9, 0u32..9), 0..30)) {
        let g = DiGraph::from_edges(9, &edges);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = parse_edge_list(std::io::Cursor::new(buf)).unwrap();
        // Parsing compacts to first-appearance order; edge count and degree
        // multiset are invariant.
        prop_assert_eq!(parsed.graph.edge_count(), g.edge_count());
        let mut degs_a: Vec<usize> = (0..parsed.graph.node_count() as u32)
            .map(|v| parsed.graph.in_degree(v)).filter(|&d| d > 0).collect();
        let mut degs_b: Vec<usize> = (0..9u32)
            .map(|v| g.in_degree(v)).filter(|&d| d > 0).collect();
        degs_a.sort_unstable();
        degs_b.sort_unstable();
        prop_assert_eq!(degs_a, degs_b);
    }
}

//! Builders for the matrices SimRank is defined on.
//!
//! The paper's matrix form (Eq. 2) uses the **backward transition matrix**
//! `Q`: `[Q]_{i,j} = 1/|I(i)|` if there is an edge `j → i`, else `0` — the
//! row-normalised transpose of the adjacency matrix (denoted `W̃` in
//! Li et al.). Row `i` of `Q` therefore lists the in-neighbors of node `i`
//! with uniform weights.

use crate::digraph::DiGraph;
use incsim_linalg::{CooBuilder, CsrMatrix};

/// Builds the backward transition matrix `Q` of a graph in CSR form.
///
/// Rows with in-degree zero are all-zero rows (`Q` is sub-stochastic),
/// exactly as required by the SimRank matrix form.
pub fn backward_transition(g: &DiGraph) -> CsrMatrix {
    let n = g.node_count();
    let rows: Vec<Vec<(u32, f64)>> = (0..n as u32)
        .map(|v| {
            let innb = g.in_neighbors(v);
            if innb.is_empty() {
                Vec::new()
            } else {
                let w = 1.0 / innb.len() as f64;
                innb.iter().map(|&u| (u, w)).collect()
            }
        })
        .collect();
    CsrMatrix::from_rows(n, n, &rows)
}

/// Builds the (unweighted) adjacency matrix `A` with `[A]_{i,j} = 1` iff
/// edge `i → j` exists.
pub fn adjacency(g: &DiGraph) -> CsrMatrix {
    let n = g.node_count();
    let mut b = CooBuilder::new(n, n);
    for (u, v) in g.edges() {
        b.push(u as usize, v as usize, 1.0);
    }
    b.build()
}

/// Row `j` of `Q` as sparse `(col, value)` pairs — the `[Q]_{j,:}` the
/// rank-one decomposition of Theorem 1 consults, served straight from the
/// graph without materialising `Q`.
pub fn q_row(g: &DiGraph, j: u32) -> Vec<(u32, f64)> {
    let innb = g.in_neighbors(j);
    if innb.is_empty() {
        return Vec::new();
    }
    let w = 1.0 / innb.len() as f64;
    innb.iter().map(|&u| (u, w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 4-node example: edges 0→2, 1→2, 2→3.
    fn sample() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3)])
    }

    #[test]
    fn q_rows_are_uniform_over_in_neighbors() {
        let q = backward_transition(&sample());
        // Node 2 has in-neighbors {0, 1} ⇒ row 2 = [1/2, 1/2, 0, 0].
        assert_eq!(q.get(2, 0), 0.5);
        assert_eq!(q.get(2, 1), 0.5);
        assert_eq!(q.get(2, 2), 0.0);
        // Node 3 has in-neighbor {2} ⇒ [Q]_{3,2} = 1.
        assert_eq!(q.get(3, 2), 1.0);
        // Nodes 0,1 have no in-neighbors ⇒ zero rows.
        assert_eq!(q.row_nnz(0), 0);
        assert_eq!(q.row_nnz(1), 0);
    }

    #[test]
    fn q_rows_sum_to_one_or_zero() {
        let g = DiGraph::from_edges(5, &[(0, 1), (2, 1), (3, 1), (1, 4), (0, 4)]);
        let q = backward_transition(&g);
        for i in 0..5 {
            let sum: f64 = q.row(i).map(|(_, v)| v).sum();
            let dj = g.in_degree(i as u32);
            if dj == 0 {
                assert_eq!(sum, 0.0);
            } else {
                assert!((sum - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn q_is_transpose_normalised_adjacency() {
        let g = sample();
        let q = backward_transition(&g);
        let a = adjacency(&g);
        // [Q]_{i,j} > 0 ⇔ [A]_{j,i} > 0.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(q.get(i, j) > 0.0, a.get(j, i) > 0.0, "({i},{j})");
            }
        }
    }

    #[test]
    fn q_row_matches_matrix_row() {
        let g = sample();
        let q = backward_transition(&g);
        for j in 0..4u32 {
            let sparse_row = q_row(&g, j);
            let matrix_row: Vec<(u32, f64)> = q.row(j as usize).collect();
            assert_eq!(sparse_row, matrix_row, "row {j}");
        }
    }

    #[test]
    fn adjacency_counts_paths_like_lemma_1() {
        // Lemma 1: [A^k]_{i,j} counts length-k paths from i to j.
        // Path 0→2→3 is the only length-2 path from 0.
        let a = adjacency(&sample()).to_dense();
        let a2 = a.matmul(&a);
        assert_eq!(a2.get(0, 3), 1.0);
        assert_eq!(a2.get(1, 3), 1.0);
        assert_eq!(a2.get(0, 2), 0.0);
    }
}

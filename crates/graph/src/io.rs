//! Edge-list text I/O in the SNAP dataset convention.
//!
//! The paper evaluates on SNAP-style edge lists (cit-HepPh et al.):
//! whitespace-separated `src dst` pairs, one per line, `#` comments.
//! Node ids are compacted to `0..n` preserving first-appearance order, the
//! usual convention when loading SNAP files.

use crate::digraph::DiGraph;
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed as `src dst`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "parse error at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Result of parsing an edge list: the graph plus the id remapping.
pub struct ParsedGraph {
    /// The parsed graph over compacted node ids `0..n`.
    pub graph: DiGraph,
    /// `original_ids[i]` is the raw id that was mapped to node `i`.
    pub original_ids: Vec<u64>,
}

/// Parses a SNAP-style edge list from a reader.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Duplicate
/// edges are ignored (kept once).
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<ParsedGraph, IoError> {
    let mut id_map: HashMap<u64, u32> = HashMap::new();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(IoError::Parse {
                line: lineno + 1,
                content: line.clone(),
            });
        };
        let parse = |tok: &str| -> Option<u64> { tok.parse().ok() };
        let (Some(src_raw), Some(dst_raw)) = (parse(a), parse(b)) else {
            return Err(IoError::Parse {
                line: lineno + 1,
                content: line.clone(),
            });
        };
        let mut intern = |raw: u64| -> u32 {
            *id_map.entry(raw).or_insert_with(|| {
                original_ids.push(raw);
                (original_ids.len() - 1) as u32
            })
        };
        let s = intern(src_raw);
        let d = intern(dst_raw);
        edges.push((s, d));
    }

    let graph = DiGraph::from_edges(original_ids.len(), &edges);
    Ok(ParsedGraph {
        graph,
        original_ids,
    })
}

/// Parses an edge list from a string (convenience wrapper).
pub fn parse_edge_list_str(text: &str) -> Result<ParsedGraph, IoError> {
    parse_edge_list(std::io::Cursor::new(text))
}

/// Writes a graph as a SNAP-style edge list.
pub fn write_edge_list<W: Write>(g: &DiGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# Nodes: {} Edges: {}",
        g.node_count(),
        g.edge_count()
    )?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_edge_list() {
        let text = "# comment\n10 20\n20 30\n\n10 30\n";
        let parsed = parse_edge_list_str(text).unwrap();
        assert_eq!(parsed.graph.node_count(), 3);
        assert_eq!(parsed.graph.edge_count(), 3);
        assert_eq!(parsed.original_ids, vec![10, 20, 30]);
        // 10→20 becomes 0→1.
        assert!(parsed.graph.has_edge(0, 1));
    }

    #[test]
    fn skips_comments_and_percent_lines() {
        let text = "% matrix-market style\n# snap style\n1 2\n";
        let parsed = parse_edge_list_str(text).unwrap();
        assert_eq!(parsed.graph.edge_count(), 1);
    }

    #[test]
    fn reports_parse_error_with_line_number() {
        let text = "1 2\nnot numbers here\n";
        match parse_edge_list_str(text) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn single_token_line_is_error() {
        let text = "42\n";
        assert!(matches!(
            parse_edge_list_str(text),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn roundtrip_write_parse() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let parsed = parse_edge_list(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed.graph.edge_count(), 3);
        // Ids are already compact, so the graph round-trips exactly.
        assert_eq!(parsed.graph, g);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let parsed = parse_edge_list_str("1 2\n1 2\n").unwrap();
        assert_eq!(parsed.graph.edge_count(), 1);
    }
}

//! Timestamped edge timelines: snapshots and update streams.
//!
//! The paper's Exp-1 extracts *snapshots* of DBLP / CITH / YOUTU by a time
//! attribute (publication year, video age) and treats the edge difference
//! between consecutive snapshots as the update stream `ΔG`. An
//! [`EvolvingGraph`] captures exactly that: an append-only list of
//! timestamped insert/delete events over a fixed node universe, from which
//! any snapshot `G(t)` and any inter-snapshot stream can be materialised.

use crate::digraph::DiGraph;

/// The kind of a timeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The edge appears at the event's timestamp.
    Insert,
    /// The edge disappears at the event's timestamp.
    Delete,
}

/// A timestamped edge event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeEvent {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Event timestamp (any monotone unit: year, day index, arrival rank).
    pub time: u64,
    /// Insert or delete.
    pub kind: EventKind,
}

/// A single link update, the paper's *unit update*.
///
/// A batch update `ΔG` "consists of a sequence of edges to be
/// inserted/deleted" (paper, footnote 1) and is processed as a sequence of
/// these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert edge `(src, dst)`.
    Insert(u32, u32),
    /// Delete edge `(src, dst)`.
    Delete(u32, u32),
}

impl UpdateOp {
    /// The `(src, dst)` pair of the update.
    pub fn endpoints(&self) -> (u32, u32) {
        match *self {
            UpdateOp::Insert(u, v) | UpdateOp::Delete(u, v) => (u, v),
        }
    }

    /// The update that undoes this one.
    pub fn inverse(&self) -> UpdateOp {
        match *self {
            UpdateOp::Insert(u, v) => UpdateOp::Delete(u, v),
            UpdateOp::Delete(u, v) => UpdateOp::Insert(u, v),
        }
    }

    /// Applies the update to a graph.
    pub fn apply(&self, g: &mut DiGraph) -> Result<(), crate::digraph::GraphError> {
        match *self {
            UpdateOp::Insert(u, v) => g.insert_edge(u, v),
            UpdateOp::Delete(u, v) => g.remove_edge(u, v),
        }
    }
}

/// An evolving graph: a fixed node universe plus a timestamped event log.
#[derive(Debug, Clone, Default)]
pub struct EvolvingGraph {
    node_count: usize,
    events: Vec<EdgeEvent>,
    sorted: bool,
}

impl EvolvingGraph {
    /// Creates an empty timeline over `n` nodes.
    pub fn new(n: usize) -> Self {
        EvolvingGraph {
            node_count: n,
            events: Vec::new(),
            sorted: true,
        }
    }

    /// Number of nodes in the universe.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Records an edge insertion at `time`.
    pub fn record_insert(&mut self, src: u32, dst: u32, time: u64) {
        self.push(EdgeEvent {
            src,
            dst,
            time,
            kind: EventKind::Insert,
        });
    }

    /// Records an edge deletion at `time`.
    pub fn record_delete(&mut self, src: u32, dst: u32, time: u64) {
        self.push(EdgeEvent {
            src,
            dst,
            time,
            kind: EventKind::Delete,
        });
    }

    fn push(&mut self, e: EdgeEvent) {
        assert!(
            (e.src as usize) < self.node_count && (e.dst as usize) < self.node_count,
            "event endpoint out of the node universe"
        );
        if let Some(last) = self.events.last() {
            if last.time > e.time {
                self.sorted = false;
            }
        }
        self.events.push(e);
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // Stable sort keeps same-timestamp events in recording order.
            self.events.sort_by_key(|e| e.time);
            self.sorted = true;
        }
    }

    /// Materialises the snapshot `G(t)`: all events with `time <= t` applied
    /// in timestamp order. Inserting an existing edge or deleting a missing
    /// one is ignored (timelines from noisy data stay usable).
    pub fn snapshot_at(&mut self, t: u64) -> DiGraph {
        self.ensure_sorted();
        let mut g = DiGraph::new(self.node_count);
        for e in self.events.iter().take_while(|e| e.time <= t) {
            match e.kind {
                EventKind::Insert => {
                    let _ = g.insert_edge(e.src, e.dst);
                }
                EventKind::Delete => {
                    let _ = g.remove_edge(e.src, e.dst);
                }
            }
        }
        g
    }

    /// The update stream between `G(t0)` and `G(t1)` (`t0 < t1`): one
    /// [`UpdateOp`] per event in `(t0, t1]`, in timestamp order, filtered
    /// to updates that actually change the `G(t0)` state (the paper's ΔG
    /// is the *net* snapshot difference).
    pub fn updates_between(&mut self, t0: u64, t1: u64) -> Vec<UpdateOp> {
        assert!(t0 <= t1, "updates_between requires t0 <= t1");
        let mut g = self.snapshot_at(t0);
        self.ensure_sorted();
        let mut ops = Vec::new();
        for e in self
            .events
            .iter()
            .skip_while(|e| e.time <= t0)
            .take_while(|e| e.time <= t1)
        {
            match e.kind {
                EventKind::Insert => {
                    if g.insert_edge(e.src, e.dst).is_ok() {
                        ops.push(UpdateOp::Insert(e.src, e.dst));
                    }
                }
                EventKind::Delete => {
                    if g.remove_edge(e.src, e.dst).is_ok() {
                        ops.push(UpdateOp::Delete(e.src, e.dst));
                    }
                }
            }
        }
        ops
    }

    /// The distinct event timestamps in increasing order (snapshot points).
    pub fn timestamps(&mut self) -> Vec<u64> {
        self.ensure_sorted();
        let mut ts: Vec<u64> = self.events.iter().map(|e| e.time).collect();
        ts.dedup();
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> EvolvingGraph {
        let mut ev = EvolvingGraph::new(4);
        ev.record_insert(0, 1, 2000);
        ev.record_insert(1, 2, 2001);
        ev.record_insert(2, 3, 2002);
        ev.record_delete(0, 1, 2003);
        ev
    }

    #[test]
    fn snapshots_reflect_event_order() {
        let mut ev = timeline();
        assert_eq!(ev.snapshot_at(1999).edge_count(), 0);
        assert_eq!(ev.snapshot_at(2000).edge_count(), 1);
        assert_eq!(ev.snapshot_at(2002).edge_count(), 3);
        let g = ev.snapshot_at(2003);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn updates_between_yields_net_stream() {
        let mut ev = timeline();
        let ops = ev.updates_between(2000, 2003);
        assert_eq!(
            ops,
            vec![
                UpdateOp::Insert(1, 2),
                UpdateOp::Insert(2, 3),
                UpdateOp::Delete(0, 1),
            ]
        );
        // Applying the stream to G(t0) yields exactly G(t1).
        let mut g = ev.snapshot_at(2000);
        for op in &ops {
            op.apply(&mut g).unwrap();
        }
        assert_eq!(g, ev.snapshot_at(2003));
    }

    #[test]
    fn out_of_order_recording_is_sorted() {
        let mut ev = EvolvingGraph::new(3);
        ev.record_insert(1, 2, 2005);
        ev.record_insert(0, 1, 2001);
        let g = ev.snapshot_at(2002);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 2));
        assert_eq!(ev.timestamps(), vec![2001, 2005]);
    }

    #[test]
    fn duplicate_inserts_do_not_appear_in_stream() {
        let mut ev = EvolvingGraph::new(2);
        ev.record_insert(0, 1, 1);
        ev.record_insert(0, 1, 2); // duplicate: edge already present
        let ops = ev.updates_between(1, 2);
        assert!(ops.is_empty());
    }

    #[test]
    fn update_op_inverse_roundtrips() {
        let op = UpdateOp::Insert(3, 4);
        assert_eq!(op.inverse(), UpdateOp::Delete(3, 4));
        assert_eq!(op.inverse().inverse(), op);
        assert_eq!(op.endpoints(), (3, 4));
    }

    #[test]
    #[should_panic(expected = "out of the node universe")]
    fn event_endpoints_are_validated() {
        let mut ev = EvolvingGraph::new(2);
        ev.record_insert(0, 7, 1);
    }
}

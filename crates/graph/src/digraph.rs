//! Dynamic directed graph with in/out adjacency.

/// Errors from graph mutations and queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// A node id was `>= node_count`.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// Attempted to insert an edge that already exists.
    EdgeExists {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
    },
    /// Attempted to delete an edge that does not exist.
    EdgeMissing {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            GraphError::EdgeExists { src, dst } => write!(f, "edge ({src}, {dst}) already exists"),
            GraphError::EdgeMissing { src, dst } => write!(f, "edge ({src}, {dst}) does not exist"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A dynamic directed graph over nodes `0..n`.
///
/// ```
/// use incsim_graph::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.insert_edge(0, 2).unwrap();
/// g.insert_edge(1, 2).unwrap();
/// assert_eq!(g.in_neighbors(2), &[0, 1]);
/// assert_eq!(g.in_degree(2), 2);
/// g.remove_edge(0, 2).unwrap();
/// assert!(!g.has_edge(0, 2));
/// ```
///
/// Both adjacency directions are kept as **sorted** neighbor lists, so
/// membership tests and single-edge updates are `O(log d + d)` (binary
/// search plus vector shift) and neighbor iteration is cache-friendly.
/// SimRank's semantics only need the *in*-neighbourhood (`I(a)` in the
/// paper); the out-neighbourhood (`O(a)`) drives the affected-area sets
/// `F₁`, `A_k`, `B_k` of Theorem 4.
///
/// Parallel edges are not supported (SimRank's `Q` has at most one entry
/// per node pair); self-loops are allowed, matching the matrix form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiGraph {
    out_adj: Vec<Vec<u32>>,
    in_adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl DiGraph {
    /// Creates an edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        DiGraph {
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list, ignoring duplicate edges.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            // Ignore duplicates to make edge-list construction forgiving.
            let _ = g.insert_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.num_edges
    }

    /// Average in-degree `d = m/n` (the `d` of the paper's complexity bounds).
    pub fn avg_in_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.node_count() as f64
        }
    }

    fn check_node(&self, v: u32) -> Result<(), GraphError> {
        if (v as usize) < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.node_count(),
            })
        }
    }

    /// Appends a new isolated node, returning its id.
    pub fn add_node(&mut self) -> u32 {
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        (self.node_count() - 1) as u32
    }

    /// True if the edge `src → dst` exists.
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.out_adj
            .get(src as usize)
            .is_some_and(|adj| adj.binary_search(&dst).is_ok())
    }

    /// Inserts the edge `src → dst` (the paper's unit insertion `(i, j)`,
    /// with `src = i`, `dst = j`).
    pub fn insert_edge(&mut self, src: u32, dst: u32) -> Result<(), GraphError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        let out = &mut self.out_adj[src as usize];
        match out.binary_search(&dst) {
            Ok(_) => return Err(GraphError::EdgeExists { src, dst }),
            Err(pos) => out.insert(pos, dst),
        }
        let inn = &mut self.in_adj[dst as usize];
        let pos = inn.binary_search(&src).unwrap_err();
        inn.insert(pos, src);
        self.num_edges += 1;
        Ok(())
    }

    /// Deletes the edge `src → dst` (the paper's unit deletion).
    pub fn remove_edge(&mut self, src: u32, dst: u32) -> Result<(), GraphError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        let out = &mut self.out_adj[src as usize];
        match out.binary_search(&dst) {
            Ok(pos) => {
                out.remove(pos);
            }
            Err(_) => return Err(GraphError::EdgeMissing { src, dst }),
        }
        let inn = &mut self.in_adj[dst as usize];
        let pos = inn
            .binary_search(&src)
            .expect("in/out adjacency must stay consistent");
        inn.remove(pos);
        self.num_edges -= 1;
        Ok(())
    }

    /// In-neighbors `I(v)` (sorted).
    #[inline]
    pub fn in_neighbors(&self, v: u32) -> &[u32] {
        &self.in_adj[v as usize]
    }

    /// Out-neighbors `O(v)` (sorted).
    #[inline]
    pub fn out_neighbors(&self, v: u32) -> &[u32] {
        &self.out_adj[v as usize]
    }

    /// In-degree `|I(v)|` — the `d_j` of Theorem 1.
    #[inline]
    pub fn in_degree(&self, v: u32) -> usize {
        self.in_adj[v as usize].len()
    }

    /// Out-degree `|O(v)|`.
    #[inline]
    pub fn out_degree(&self, v: u32) -> usize {
        self.out_adj[v as usize].len()
    }

    /// Iterates all edges as `(src, dst)` pairs in `src`-major order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.out_adj
            .iter()
            .enumerate()
            .flat_map(|(u, adj)| adj.iter().map(move |&v| (u as u32, v)))
    }

    /// Maximum in-degree over all nodes.
    pub fn max_in_degree(&self) -> usize {
        self.in_adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Validates internal consistency (test/diagnostic helper).
    ///
    /// Checks that adjacency lists are sorted, deduplicated, mutually
    /// consistent, and that the edge count matches.
    pub fn validate(&self) -> Result<(), String> {
        let mut count = 0usize;
        for (u, adj) in self.out_adj.iter().enumerate() {
            if !adj.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("out_adj[{u}] not strictly sorted"));
            }
            for &v in adj {
                if (v as usize) >= self.node_count() {
                    return Err(format!("out_adj[{u}] references node {v} out of range"));
                }
                if self.in_adj[v as usize].binary_search(&(u as u32)).is_err() {
                    return Err(format!("edge ({u},{v}) missing from in_adj"));
                }
                count += 1;
            }
        }
        let in_count: usize = self.in_adj.iter().map(Vec::len).sum();
        if count != in_count {
            return Err(format!("edge count mismatch: out={count} in={in_count}"));
        }
        if count != self.num_edges {
            return Err(format!(
                "cached edge count {} != actual {count}",
                self.num_edges
            ));
        }
        for (v, adj) in self.in_adj.iter().enumerate() {
            if !adj.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("in_adj[{v}] not strictly sorted"));
            }
        }
        Ok(())
    }

    /// Heap bytes held by the adjacency structure.
    pub fn heap_bytes(&self) -> usize {
        let per_list = |lists: &Vec<Vec<u32>>| -> usize {
            lists
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
                + lists.capacity() * std::mem::size_of::<Vec<u32>>()
        };
        per_list(&self.out_adj) + per_list(&self.in_adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query_edges() {
        let mut g = DiGraph::new(4);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(2, 1).unwrap();
        g.insert_edge(1, 3).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert_eq!(g.out_neighbors(1), &[3]);
        assert_eq!(g.in_degree(1), 2);
        assert_eq!(g.out_degree(1), 1);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_insert_is_error() {
        let mut g = DiGraph::new(2);
        g.insert_edge(0, 1).unwrap();
        assert_eq!(
            g.insert_edge(0, 1),
            Err(GraphError::EdgeExists { src: 0, dst: 1 })
        );
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn remove_missing_edge_is_error() {
        let mut g = DiGraph::new(2);
        assert_eq!(
            g.remove_edge(0, 1),
            Err(GraphError::EdgeMissing { src: 0, dst: 1 })
        );
    }

    #[test]
    fn out_of_range_node_is_error() {
        let mut g = DiGraph::new(2);
        assert!(matches!(
            g.insert_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn insert_then_remove_roundtrips() {
        let mut g = DiGraph::new(3);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(1, 2).unwrap();
        let snapshot = g.clone();
        g.insert_edge(2, 0).unwrap();
        g.remove_edge(2, 0).unwrap();
        assert_eq!(g, snapshot);
        g.validate().unwrap();
    }

    #[test]
    fn self_loops_are_allowed() {
        let mut g = DiGraph::new(2);
        g.insert_edge(0, 0).unwrap();
        assert!(g.has_edge(0, 0));
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.out_degree(0), 1);
        g.validate().unwrap();
    }

    #[test]
    fn from_edges_ignores_duplicates() {
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = DiGraph::new(1);
        let v = g.add_node();
        assert_eq!(v, 1);
        g.insert_edge(0, 1).unwrap();
        assert_eq!(g.node_count(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn edges_iterator_is_src_major() {
        let g = DiGraph::from_edges(3, &[(1, 0), (0, 2), (0, 1)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 0)]);
    }

    #[test]
    fn degree_statistics() {
        let g = DiGraph::from_edges(4, &[(0, 3), (1, 3), (2, 3), (3, 0)]);
        assert_eq!(g.max_in_degree(), 3);
        assert!((g.avg_in_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = DiGraph::new(0);
        assert_eq!(g.avg_in_degree(), 0.0);
        assert_eq!(g.max_in_degree(), 0);
        g.validate().unwrap();
    }
}

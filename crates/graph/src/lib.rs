//! # incsim-graph
//!
//! The link-evolving graph substrate for the `incsim` workspace
//! (reproduction of *"Fast Incremental SimRank on Link-Evolving Graphs"*,
//! Yu, Lin & Zhang, ICDE 2014).
//!
//! The paper's problem statement is: given a graph `G`, its SimRank matrix
//! `S`, and link changes `ΔG`, compute the change `ΔS`. This crate provides
//! the `G` and `ΔG` halves:
//!
//! * [`DiGraph`] — a dynamic directed graph with both in- and out-adjacency,
//!   `O(log d)` single-edge insertion/deletion (the paper's *unit update*),
//!   and degree queries. The incremental theorems all consult the *old*
//!   graph's in-degree `d_j` and in-neighbor row `[Q]_{j,:}`, which this
//!   structure serves in `O(1)`/`O(d)`.
//! * [`transition`] — builders for the backward transition matrix `Q` (the
//!   row-normalised transpose of the adjacency matrix) and the plain
//!   adjacency matrix, in CSR form.
//! * [`evolve`] — a timestamped edge timeline that materialises snapshots
//!   and extracts the insert/delete update streams between snapshots,
//!   emulating the paper's year/video-age snapshot methodology (Exp-1).
//! * [`io`] — SNAP-style edge-list text parsing and serialisation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digraph;
pub mod evolve;
pub mod io;
pub mod transition;

pub use digraph::{DiGraph, GraphError};
pub use evolve::{EdgeEvent, EventKind, EvolvingGraph, UpdateOp};

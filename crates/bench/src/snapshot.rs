//! Machine-readable perf snapshots (the `bench-snapshot` binary).
//!
//! Each PR records its hot-path numbers in a `BENCH_PR<N>.json` at the
//! repo root so the perf trajectory is diffable across PRs and checkable
//! by CI. The snapshot covers the fig2a-style per-update workload under
//! every [`ApplyMode`] plus the micro-kernels behind it; the JSON is
//! written by hand (the workspace is offline — no serde).

use crate::harness::{bench_scale, measure_per_update};
use incsim::api::{ApplyPolicy, EngineKind, SimRank, SimRankBuilder};
use incsim::serve::{drive_load, ConcurrentSimRank, HistoryStatus, LoadOptions, ShardedSimRank};
use incsim::wal::{frame_kinds, FrameKind, FRAME_HEADER};
use incsim_core::{
    batch_simrank, ApplyMode, GraphSink, IncUSr, MatrixAccess, ProbeOptions, SimRankConfig,
};
use incsim_datagen::er::{erdos_renyi, erdos_renyi_blocks};
use incsim_datagen::updates::{random_insertions, random_toggles_blocks};
use incsim_graph::{DiGraph, UpdateOp};
use incsim_linalg::{DenseMatrix, LowRankDelta};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Per-update timings of the three apply regimes on one unit-update
/// stream (fig2a-style: a fixed random graph, edges inserted one at a
/// time — see [`snapshot_graph`]).
#[derive(Debug, Clone)]
pub struct ApplyModeSnapshot {
    /// Node count of the workload graph.
    pub n: usize,
    /// Iterations `K`.
    pub k_iters: usize,
    /// Unit updates measured per regime.
    pub measured_updates: usize,
    /// Mean seconds per update, eager (K+1 dense sweeps each).
    pub eager_per_update_secs: f64,
    /// Mean seconds per update, fused (one sweep per `insert_edge` call).
    pub fused_per_update_secs: f64,
    /// Mean seconds per update when the whole stream is one `apply_batch`
    /// call (one fused sweep for the entire batch).
    pub fused_batch_per_update_secs: f64,
    /// Mean seconds per update, lazy (no sweep at all).
    pub lazy_per_update_secs: f64,
    /// Mean seconds per lazy single-pair query against the pending buffer.
    pub lazy_query_secs: f64,
    /// Factor pairs pending after the lazy stream (proof no apply ran).
    pub lazy_pending_pairs: usize,
    /// `eager_per_update_secs / fused_per_update_secs`.
    pub fused_speedup: f64,
    /// Peak intermediate bytes reported by the eager engine.
    pub eager_peak_bytes: usize,
    /// Peak intermediate bytes reported by the fused engine (includes the
    /// factor buffer).
    pub fused_peak_bytes: usize,
    /// Max |fused − eager| over the final score matrices (exactness).
    pub max_abs_diff_fused_vs_eager: f64,
    /// Max |flushed lazy − eager| over the final score matrices.
    pub max_abs_diff_lazy_vs_eager: f64,
}

/// The fig2a-style workload graph.
///
/// ER rather than the DAG-shaped linkage model: cycles make the score
/// matrix dense (as on the paper's real web/social datasets), so the
/// `K+1` eager sweeps are real full-matrix passes — the regime the fused
/// apply exists for. On DAG-sparse scores the eager path already skips
/// most rows and the regimes tie.
pub fn snapshot_graph(n: usize) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(1234);
    erdos_renyi(n, 6 * n, &mut rng)
}

/// Measures eager vs fused vs lazy on a fresh `n`-node workload.
///
/// `cap` is the (already scaled) number of unit updates per regime; each
/// regime replays the *same* insertion stream from the same precomputed
/// scores, so the comparison is apples-to-apples and the exactness
/// cross-checks at the end are meaningful.
pub fn measure_apply_modes(n: usize, k_iters: usize, cap: usize) -> ApplyModeSnapshot {
    let g = snapshot_graph(n);
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let s0 = batch_simrank(&g, &cfg);
    let mut rng = StdRng::seed_from_u64(77);
    let stream = random_insertions(&g, cap, &mut rng);

    let mut eager = IncUSr::new(g.clone(), s0.clone(), cfg);
    let m_eager = measure_per_update(&mut eager, &stream, cap);

    let mut fused = IncUSr::new(g.clone(), s0.clone(), cfg).with_mode(ApplyMode::Fused);
    let m_fused = measure_per_update(&mut fused, &stream, cap);

    let mut fused_batch = IncUSr::new(g.clone(), s0.clone(), cfg).with_mode(ApplyMode::Fused);
    let start = Instant::now();
    fused_batch
        .apply_batch(&stream)
        .expect("stream valid by construction");
    let fused_batch_per_update = start.elapsed().as_secs_f64() / stream.len() as f64;

    let mut lazy = IncUSr::new(g, s0, cfg).with_mode(ApplyMode::Lazy);
    let m_lazy = measure_per_update(&mut lazy, &stream, cap);
    let lazy_pending_pairs = lazy.pending_rank();
    // Lazy single-pair queries against the pending buffer (no n² apply).
    let queries = 2000usize;
    let start = Instant::now();
    let mut acc = 0.0;
    for t in 0..queries {
        let a = ((t * 131) % n) as u32;
        let b = ((t * 197 + 13) % n) as u32;
        acc += lazy.view().pair(a, b);
    }
    let lazy_query_secs = start.elapsed().as_secs_f64() / queries as f64;
    std::hint::black_box(acc);

    lazy.flush();
    ApplyModeSnapshot {
        n,
        k_iters,
        measured_updates: m_eager.measured,
        eager_per_update_secs: m_eager.per_update_secs,
        fused_per_update_secs: m_fused.per_update_secs,
        fused_batch_per_update_secs: fused_batch_per_update,
        lazy_per_update_secs: m_lazy.per_update_secs,
        lazy_query_secs,
        lazy_pending_pairs,
        fused_speedup: m_eager.per_update_secs / m_fused.per_update_secs.max(1e-12),
        eager_peak_bytes: m_eager.peak_bytes,
        fused_peak_bytes: m_fused.peak_bytes,
        max_abs_diff_fused_vs_eager: eager.scores().max_abs_diff(fused.scores()),
        max_abs_diff_lazy_vs_eager: eager.scores().max_abs_diff(lazy.scores()),
    }
}

/// Cost of the `incsim::api` service layer vs direct engine calls on the
/// same serving workload (updates interleaved with pair queries).
#[derive(Debug, Clone)]
pub struct ServiceOverheadSnapshot {
    /// Node count of the workload graph.
    pub n: usize,
    /// Unit updates in the measured workload.
    pub updates: usize,
    /// Pair queries issued after each update.
    pub queries_per_update: usize,
    /// Total workload seconds, direct engine + `ScoreView` calls.
    pub direct_secs: f64,
    /// Total workload seconds through the `SimRank` service handle
    /// (dyn dispatch + routing + counters).
    pub service_secs: f64,
    /// The **attributable** service-layer overhead of one workload step
    /// (one update + `queries_per_update` queries), in percent of the
    /// direct step cost:
    /// `(update_envelope + queries·query_envelope) / direct_step`.
    /// Computed from the two stable per-call calibrations below rather
    /// than from `service_secs − direct_secs` — on a shared host the
    /// wall-clock difference of ~10ms steps has a ±10% noise band, while
    /// the per-call envelopes are measured with thousands of paired reps
    /// at microsecond scale and carry over (they do not grow with `n`).
    /// The service contract is < 2% on the full-scale run.
    pub overhead_pct: f64,
    /// Median per-update cost the service layer adds around an engine
    /// call (dyn dispatch + routing + counters), from the tiny-engine
    /// calibration. Clamped at 0 (the envelope cannot be negative; a
    /// negative median is measurement noise).
    pub update_envelope_secs: f64,
    /// Mean seconds per query-only direct view read (isolated hot path).
    pub direct_query_secs: f64,
    /// Mean seconds per query-only service read.
    pub service_query_secs: f64,
}

/// Calibrates the per-update service envelope: the same insert/delete
/// toggle is replayed on a tiny (`n` = 64) engine directly and through
/// the service handle, alternating order, and the median of the paired
/// per-step differences is the envelope. At this scale one step is tens
/// of microseconds, so thousands of pairs fit in milliseconds and the
/// median resolves sub-microsecond costs a realistic-`n` A/B cannot.
fn calibrate_update_envelope(cfg: SimRankConfig) -> f64 {
    let n = 64usize;
    let mut rng = StdRng::seed_from_u64(4242);
    let g = erdos_renyi(n, 6 * n, &mut rng);
    let (i, j) = g.edges().next().expect("graph has edges");
    let s0 = batch_simrank(&g, &cfg);
    let mut direct = IncUSr::new(g.clone(), s0.clone(), cfg).with_mode(ApplyMode::Fused);
    let mut service = SimRankBuilder::new()
        .algorithm(EngineKind::IncUSr)
        .mode(ApplyPolicy::Fused)
        .config(cfg)
        .with_scores(g, s0)
        .expect("engine constructs");
    let ops = [UpdateOp::Delete(i, j), UpdateOp::Insert(i, j)];
    // Warm both sides through one full toggle.
    for &op in &ops {
        direct.apply(op).expect("valid toggle");
        service.update(op).expect("valid toggle");
    }
    let reps = 1200usize;
    let mut diffs: Vec<f64> = Vec::with_capacity(reps);
    for rep in 0..reps {
        let op = ops[rep % 2];
        let (d, sv) = if rep % 4 < 2 {
            let t = Instant::now();
            direct.apply(op).expect("valid toggle");
            let d = t.elapsed().as_secs_f64();
            let t = Instant::now();
            service.update(op).expect("valid toggle");
            (d, t.elapsed().as_secs_f64())
        } else {
            let t = Instant::now();
            service.update(op).expect("valid toggle");
            let sv = t.elapsed().as_secs_f64();
            let t = Instant::now();
            direct.apply(op).expect("valid toggle");
            (t.elapsed().as_secs_f64(), sv)
        };
        diffs.push(sv - d);
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    diffs[diffs.len() / 2].max(0.0)
}

/// Measures the end-to-end serving workload — `cap` unit insertions, each
/// followed by `queries_per_update` pair queries — against a concrete
/// [`IncUSr`] in fused mode and through the [`SimRankBuilder`] service
/// handle configured identically. Both engines replay the *same* stream
/// from the same precomputed scores, and the two timers are interleaved
/// per update (direct step, then service step) so clock drift, frequency
/// scaling, and memory-residency effects on a shared host cancel instead
/// of biasing one side.
pub fn measure_service_overhead(n: usize, k_iters: usize, cap: usize) -> ServiceOverheadSnapshot {
    let g = snapshot_graph(n);
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let s0 = batch_simrank(&g, &cfg);
    let mut rng = StdRng::seed_from_u64(77);
    // One extra op: the first update on each side is an unmeasured
    // warm-up (first-touch page faults, factor-buffer growth).
    let stream = random_insertions(&g, cap + 1, &mut rng);
    let queries_per_update = 200usize;
    let probe = |t: usize| -> (u32, u32) { (((t * 131) % n) as u32, ((t * 197 + 13) % n) as u32) };

    let mut service = SimRankBuilder::new()
        .algorithm(EngineKind::IncUSr)
        .mode(ApplyPolicy::Fused)
        .config(cfg)
        .with_scores(g.clone(), s0.clone())
        .expect("engine constructs");
    let mut direct = IncUSr::new(g, s0, cfg).with_mode(ApplyMode::Fused);

    let (&warmup, measured) = stream.split_first().expect("cap >= 1");
    direct.apply(warmup).expect("stream valid");
    service.update(warmup).expect("stream valid");

    let mut direct_secs = 0.0f64;
    let mut service_secs = 0.0f64;
    let mut step_times: Vec<f64> = Vec::with_capacity(measured.len());
    let mut acc = 0.0f64;
    fn direct_step(
        direct: &mut IncUSr,
        op: incsim_graph::UpdateOp,
        queries: usize,
        probe: impl Fn(usize) -> (u32, u32),
        acc: &mut f64,
    ) -> f64 {
        let start = Instant::now();
        direct.apply(op).expect("stream valid");
        let view = direct.view();
        for t in 0..queries {
            let (a, b) = probe(t);
            *acc += view.pair(a, b);
        }
        start.elapsed().as_secs_f64()
    }
    fn service_step(
        service: &mut incsim::api::SimRank,
        op: incsim_graph::UpdateOp,
        queries: usize,
        probe: impl Fn(usize) -> (u32, u32),
        acc: &mut f64,
    ) -> f64 {
        let start = Instant::now();
        service.update(op).expect("stream valid");
        for t in 0..queries {
            let (a, b) = probe(t);
            *acc += service.pair(a, b);
        }
        start.elapsed().as_secs_f64()
    }
    for (step, &op) in measured.iter().enumerate() {
        // Alternate which side goes first so within-step ordering effects
        // (cache residency handed from one side to the other) cancel too.
        let (d, sv) = if step % 2 == 0 {
            let d = direct_step(&mut direct, op, queries_per_update, probe, &mut acc);
            let sv = service_step(&mut service, op, queries_per_update, probe, &mut acc);
            (d, sv)
        } else {
            let sv = service_step(&mut service, op, queries_per_update, probe, &mut acc);
            let d = direct_step(&mut direct, op, queries_per_update, probe, &mut acc);
            (d, sv)
        };
        direct_secs += d;
        service_secs += sv;
        step_times.push(d);
    }
    step_times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let direct_step_median = step_times
        .get(step_times.len() / 2)
        .copied()
        .unwrap_or(1e-12);

    // Isolated query hot path (per-call; informational, not part of the
    // <2% workload gate).
    let q_reps = 200_000usize;
    let start = Instant::now();
    {
        let view = direct.view();
        for t in 0..q_reps {
            let (a, b) = probe(t);
            acc += view.pair(a, b);
        }
    }
    let direct_query_secs = start.elapsed().as_secs_f64() / q_reps as f64;
    let start = Instant::now();
    for t in 0..q_reps {
        let (a, b) = probe(t);
        acc += service.pair(a, b);
    }
    let service_query_secs = start.elapsed().as_secs_f64() / q_reps as f64;
    std::hint::black_box(acc);

    let update_envelope_secs = calibrate_update_envelope(cfg);
    let query_envelope = (service_query_secs - direct_query_secs).max(0.0);
    let attributable = update_envelope_secs + queries_per_update as f64 * query_envelope;
    ServiceOverheadSnapshot {
        n,
        updates: measured.len(),
        queries_per_update,
        direct_secs,
        service_secs,
        overhead_pct: 100.0 * attributable / direct_step_median.max(1e-12),
        update_envelope_secs,
        direct_query_secs,
        service_query_secs,
    }
}

/// Wall-clock of the isolated hot kernels (mean seconds per call).
#[derive(Debug, Clone)]
pub struct MicroKernelSnapshot {
    /// Matrix dimension the kernels ran at.
    pub n: usize,
    /// Buffered rank-two terms per fused apply (`K+1`).
    pub pairs: usize,
    /// One eager pass: `pairs` × `add_sym_outer` full sweeps.
    pub eager_sweeps_secs: f64,
    /// One fused `LowRankDelta::apply_to_with_threads(_, 1)` sweep.
    pub fused_apply_secs: f64,
    /// Fused apply with all available threads.
    pub fused_apply_parallel_secs: f64,
}

/// Times `pairs` rank-two terms applied eagerly vs fused at dimension `n`.
pub fn measure_micro_kernels(n: usize, pairs: usize, reps: usize) -> MicroKernelSnapshot {
    let mk = |seed: usize| -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 31 + seed * 17 + 1) as f64 * 0.37).sin())
            .collect()
    };
    let factors: Vec<(Vec<f64>, Vec<f64>)> = (0..pairs).map(|t| (mk(t), mk(t + pairs))).collect();
    let mut s = DenseMatrix::zeros(n, n);
    let reps = reps.max(1);

    let start = Instant::now();
    for _ in 0..reps {
        for (xi, eta) in &factors {
            s.add_sym_outer(1.0, xi, eta);
        }
    }
    let eager_sweeps_secs = start.elapsed().as_secs_f64() / reps as f64;

    let fill = |delta: &mut LowRankDelta| {
        for (xi, eta) in &factors {
            delta.push_dense(xi.clone(), eta.clone());
        }
    };
    let mut delta = LowRankDelta::new(n);
    let start = Instant::now();
    for _ in 0..reps {
        fill(&mut delta);
        delta.apply_to_with_threads(&mut s, 1);
    }
    let fused_apply_secs = start.elapsed().as_secs_f64() / reps as f64;

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let start = Instant::now();
    for _ in 0..reps {
        fill(&mut delta);
        delta.apply_to_with_threads(&mut s, threads);
    }
    let fused_apply_parallel_secs = start.elapsed().as_secs_f64() / reps as f64;
    std::hint::black_box(s.get(0, 0));

    MicroKernelSnapshot {
        n,
        pairs,
        eager_sweeps_secs,
        fused_apply_secs,
        fused_apply_parallel_secs,
    }
}

/// Throughput and exactness of the `incsim::serve` concurrent sharded
/// layer: aggregate epoch-reader queries/sec at 1, 2 and 4 reader
/// threads with a saturated background writer, plus the deferred-apply
/// exactness of the fused and lazy policies *through the sharded path*
/// (vs the eager sharded trajectory — an identity, so noise-free).
#[derive(Debug, Clone)]
pub struct ConcurrentThroughputSnapshot {
    /// Node count of the workload graph.
    pub n: usize,
    /// Engine shards behind the router.
    pub shards: usize,
    /// Iterations `K`.
    pub k_iters: usize,
    /// Seconds measured per reader-thread point.
    pub duration_secs: f64,
    /// Aggregate pair queries/sec with 1 reader thread.
    pub qps_1t: f64,
    /// Aggregate pair queries/sec with 2 reader threads.
    pub qps_2t: f64,
    /// Aggregate pair queries/sec with 4 reader threads.
    pub qps_4t: f64,
    /// `qps_4t / qps_1t` — the serving-scalability headline.
    pub speedup_4_vs_1: f64,
    /// Updates/sec the background writer sustained at the 4-reader point
    /// (batched, fanned across shards, publish every 4 batches).
    pub writer_updates_per_sec: f64,
    /// Epochs published at the 4-reader point.
    pub epochs_published: u64,
    /// Max |fused − eager| over all pairs, read through sharded epochs.
    pub max_abs_diff_sharded_fused_vs_eager: f64,
    /// Max |lazy − eager| over all pairs, same read path — the lazy
    /// router's epoch composes its *pending* Δ (nothing flushed), so this
    /// also certifies Δ-composition through snapshots.
    pub max_abs_diff_sharded_lazy_vs_eager: f64,
}

/// The next `len` valid intra-component toggles, round-robin across the
/// component blocks (a balanced partitioned-ingest stream).
fn intra_block_toggles(
    shadow: &mut DiGraph,
    shards: usize,
    per: usize,
    len: usize,
    rng: &mut StdRng,
) -> Vec<UpdateOp> {
    let blocks: Vec<std::ops::Range<u32>> = (0..shards)
        .map(|s| (s * per) as u32..((s + 1) * per) as u32)
        .collect();
    random_toggles_blocks(shadow, &blocks, len, rng)
}

/// Measures the concurrent serving layer at dimension `n` (rounded down
/// to a multiple of `shards`): reader-thread sweep for throughput, then
/// a policy sweep for sharded exactness. `duration_secs` is the
/// measurement window per reader point (scaled by the caller).
pub fn measure_concurrent_throughput(
    n: usize,
    k_iters: usize,
    shards: usize,
    duration_secs: f64,
) -> ConcurrentThroughputSnapshot {
    let per = (n / shards).max(2);
    let n = per * shards;
    let mut graph_rng = StdRng::seed_from_u64(99);
    let g = erdos_renyi_blocks(shards, per, per * 6, &mut graph_rng);
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let s0 = batch_simrank(&g, &cfg);
    let builder = |policy: ApplyPolicy| {
        SimRankBuilder::new()
            .algorithm(EngineKind::IncUSr)
            .mode(policy)
            .config(cfg)
            .shards(shards)
    };

    // ---- exactness through the sharded path ---------------------------
    // Same stream through eager / fused / lazy sharded routers; answers
    // are read through a frozen epoch (base + pending Δ for lazy), so the
    // comparison crosses routing, snapshotting and Δ-composition at once.
    let mut stream_shadow = g.clone();
    let mut stream_rng = StdRng::seed_from_u64(4321);
    let exact_ops = intra_block_toggles(&mut stream_shadow, shards, per, 12, &mut stream_rng);
    let drive = |policy: ApplyPolicy| -> ShardedSimRank {
        let mut sharded = ShardedSimRank::with_scores(builder(policy), g.clone(), s0.clone())
            .expect("router builds");
        for chunk in exact_ops.chunks(3) {
            sharded
                .update_batch_with_threads(chunk, shards)
                .expect("stream valid");
        }
        sharded
    };
    let eager = drive(ApplyPolicy::Eager).snapshot_epoch(0, None);
    let fused = drive(ApplyPolicy::Fused).snapshot_epoch(0, None);
    let lazy = drive(ApplyPolicy::Lazy).snapshot_epoch(0, None);
    let mut diff_fused = 0.0f64;
    let mut diff_lazy = 0.0f64;
    for a in 0..n as u32 {
        for b in a..n as u32 {
            let e = eager.pair(a, b);
            diff_fused = diff_fused.max((fused.pair(a, b) - e).abs());
            diff_lazy = diff_lazy.max((lazy.pair(a, b) - e).abs());
        }
    }

    // ---- reader-thread throughput sweep -------------------------------
    // The writer side is deliberately saturated (continuous 16-op
    // batches — 4 per shard, round-robin — fanned across the shards,
    // publish every 4 batches): the number under load is the one that
    // matters, and on any core count it exposes how much reader capacity
    // the epoch design preserves. `incsim::serve::drive_load` is the
    // shared harness (also behind `incsim-cli serve`).
    let mut qps = [0.0f64; 3];
    let mut writer_updates_per_sec = 0.0;
    let mut epochs_published = 0u64;
    for (point, readers) in [1usize, 2, 4].into_iter().enumerate() {
        let sharded =
            ShardedSimRank::with_scores(builder(ApplyPolicy::Fused), g.clone(), s0.clone())
                .expect("router builds");
        let mut serving = ConcurrentSimRank::new(sharded);
        let report = drive_load(
            &mut serving,
            &LoadOptions {
                readers,
                duration: std::time::Duration::from_secs_f64(duration_secs),
                write_batch: 16,
                publish_every: 4,
                writer_threads: shards,
                seed: 777,
            },
        )
        .expect("toggle stream valid");
        qps[point] = report.queries_per_sec();
        if readers == 4 {
            writer_updates_per_sec = report.updates_per_sec();
            epochs_published = report.epochs_published;
        }
    }

    ConcurrentThroughputSnapshot {
        n,
        shards,
        k_iters,
        duration_secs,
        qps_1t: qps[0],
        qps_2t: qps[1],
        qps_4t: qps[2],
        speedup_4_vs_1: qps[2] / qps[0].max(1e-9),
        writer_updates_per_sec,
        epochs_published,
        max_abs_diff_sharded_fused_vs_eager: diff_fused,
        max_abs_diff_sharded_lazy_vs_eager: diff_lazy,
    }
}

/// A long lazy serving window with periodic ΔS recompression vs the same
/// window uncompressed: pair-query latency at window end, buffer memory
/// trajectory, and exactness of the compressed trajectory.
#[derive(Debug, Clone)]
pub struct LongLazyWindowSnapshot {
    /// Node count of the workload graph.
    pub n: usize,
    /// Iterations `K`.
    pub k_iters: usize,
    /// Unit updates deferred into the lazy window.
    pub window: usize,
    /// Pending rank at which the compressed run recompresses.
    pub compress_rank: usize,
    /// Factor pairs pending at window end, uncompressed (`window·(K+1)`
    /// minus dropped no-op terms — grows linearly in the window).
    pub uncompressed_pairs: usize,
    /// Factor pairs pending at window end with recompression (≈ the
    /// numerical rank of ΔS — plateaus).
    pub compressed_pairs: usize,
    /// Recompression passes the window triggered.
    pub recompressions: usize,
    /// Mean seconds per lazy pair query at window end, uncompressed.
    pub uncompressed_query_secs: f64,
    /// Mean seconds per lazy pair query at window end, compressed.
    pub compressed_query_secs: f64,
    /// `uncompressed_query_secs / compressed_query_secs` — the headline:
    /// recompression holds lazy query cost at O(numerical rank).
    pub long_lazy_query_speedup: f64,
    /// Buffer heap bytes at window end, uncompressed (grows linearly).
    pub uncompressed_heap_bytes: usize,
    /// Peak buffer heap bytes over the whole compressed window (the
    /// plateau — bounded by the threshold, not the window length).
    pub compressed_heap_peak_bytes: usize,
    /// Buffer heap bytes at window end, compressed.
    pub compressed_heap_end_bytes: usize,
    /// Max |compressed − uncompressed| over the full final matrix (the
    /// uncompressed lazy trajectory equals eager — gated by the
    /// apply-modes case — so this is the compressed-vs-eager drift).
    pub max_abs_diff_compressed_vs_uncompressed: f64,
}

/// Drives a `window`-update lazy window twice through the service handle
/// (`ApplyPolicy::Lazy`) — once with `.compress_at_rank(compress_rank)`
/// armed at the default tolerance, once without — and measures pair-query
/// latency, buffer memory, and drift at window end. The insertion stream,
/// initial scores, and probe set are shared, so the comparison is
/// apples-to-apples.
pub fn measure_long_lazy_window(n: usize, k_iters: usize, window: usize) -> LongLazyWindowSnapshot {
    let g = snapshot_graph(n);
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let s0 = batch_simrank(&g, &cfg);
    let mut rng = StdRng::seed_from_u64(77);
    let stream = random_insertions(&g, window, &mut rng);
    let compress_rank = 4 * (k_iters + 1);

    let build = |compress: bool| -> SimRank {
        let b = SimRankBuilder::new()
            .algorithm(EngineKind::IncUSr)
            .mode(ApplyPolicy::Lazy)
            .config(cfg)
            // Never materialise inside the window: the point is the
            // lazy steady state, bounded by compression alone.
            .flush_at_rank(usize::MAX);
        let b = if compress {
            b.compress_at_rank(compress_rank)
        } else {
            b
        };
        b.with_scores(g.clone(), s0.clone())
            .expect("engine constructs")
    };
    let heap_of = |sim: &SimRank| -> usize { sim.pending_heap_bytes() };
    let query_probe = |sim: &SimRank| -> f64 {
        let queries = 2000usize;
        let start = Instant::now();
        let mut acc = 0.0;
        for t in 0..queries {
            let a = ((t * 131) % n) as u32;
            let b = ((t * 197 + 13) % n) as u32;
            acc += sim.pair(a, b);
        }
        let per = start.elapsed().as_secs_f64() / queries as f64;
        std::hint::black_box(acc);
        per
    };

    let mut plain = build(false);
    for &op in &stream {
        plain.update(op).expect("stream valid by construction");
    }
    let uncompressed_pairs = plain.pending_rank();
    let uncompressed_heap = heap_of(&plain);
    let uncompressed_query_secs = query_probe(&plain);

    let mut compressed = build(true);
    let mut peak_heap = 0usize;
    for &op in &stream {
        compressed.update(op).expect("stream valid by construction");
        peak_heap = peak_heap.max(heap_of(&compressed));
    }
    let compressed_pairs = compressed.pending_rank();
    let compressed_heap_end = heap_of(&compressed);
    let compressed_query_secs = query_probe(&compressed);
    let recompressions = compressed.counters().recompressions;

    // Drift: materialise both windows (the only n² work in this case,
    // off the measured paths) and compare the full matrices.
    let diff = {
        let a = plain.scores().expect("IncUSr is matrix-backed").clone();
        compressed
            .scores()
            .expect("IncUSr is matrix-backed")
            .max_abs_diff(&a)
    };

    LongLazyWindowSnapshot {
        n,
        k_iters,
        window: stream.len(),
        compress_rank,
        uncompressed_pairs,
        compressed_pairs,
        recompressions,
        uncompressed_query_secs,
        compressed_query_secs,
        long_lazy_query_speedup: uncompressed_query_secs / compressed_query_secs.max(1e-12),
        uncompressed_heap_bytes: uncompressed_heap,
        compressed_heap_peak_bytes: peak_heap,
        compressed_heap_end_bytes: compressed_heap_end,
        max_abs_diff_compressed_vs_uncompressed: diff,
    }
}

/// Matrix-free serving headline: single-source query latency and peak
/// heap of the [`EngineKind::Probe`] engine at two graph sizes.
///
/// The point of this case is the *memory scaling law*: every dense
/// engine carries an `n × n` score matrix, so its footprint is Θ(n²) by
/// construction; the probe engine holds only the graph plus a walk
/// scratch tally, so its peak heap must grow **sub-quadratically** in
/// `n`. The measurement runs the same query workload at `n_small` and
/// `n_large = 4·n_small` and records the heap growth ratio — linear
/// scaling lands near 4, quadratic at 16; the gate (asserted here and in
/// the `bench-snapshot` binary) is `heap_growth < 8`.
#[derive(Debug, Clone)]
pub struct ProbeSingleSourceSnapshot {
    /// Smaller graph size.
    pub n_small: usize,
    /// Larger graph size (4× the smaller one).
    pub n_large: usize,
    /// Iterations `K` (walk-length truncation).
    pub k_iters: usize,
    /// Reverse walks per single-source query.
    pub walks: usize,
    /// Mean seconds per single-source query at `n_small`.
    pub query_secs_small: f64,
    /// Mean seconds per single-source query at `n_large`.
    pub query_secs_large: f64,
    /// Peak engine heap (graph + walk scratch) after the workload, small.
    pub heap_peak_bytes_small: usize,
    /// Peak engine heap (graph + walk scratch) after the workload, large.
    pub heap_peak_bytes_large: usize,
    /// `heap_peak_bytes_large / heap_peak_bytes_small` — the scaling
    /// headline (≈4 linear, 16 quadratic; must stay < 8).
    pub heap_growth: f64,
    /// What a dense engine's score matrix alone would cost at `n_large`
    /// (`8·n_large²` bytes), for context in the JSON.
    pub dense_bytes_large: usize,
}

/// Measures the probe engine's single-source serving path at `n_small`
/// and `4·n_small` nodes (fig2a-style ER graphs, same family as every
/// other case) and asserts the sub-quadratic heap gate. A handful of
/// update ops are applied first so the measured engine is the
/// post-ingest steady state, not a freshly built one.
pub fn measure_probe_single_source(n_small: usize, k_iters: usize) -> ProbeSingleSourceSnapshot {
    let n_large = 4 * n_small;
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let opts = ProbeOptions {
        seed: 0xBE9C_0DE5,
        ..ProbeOptions::default()
    };

    let point = |n: usize| -> (f64, usize) {
        let g = snapshot_graph(n);
        let mut sim = SimRankBuilder::new()
            .algorithm(EngineKind::Probe)
            .config(cfg)
            .probe_options(opts)
            .from_graph(g.clone())
            .expect("probe builds from the graph alone");
        let mut rng = StdRng::seed_from_u64(77);
        for op in random_insertions(&g, 8, &mut rng) {
            sim.update(op).expect("stream valid by construction");
        }
        let queries = 12usize;
        let mut acc = 0.0f64;
        // Warm-up query (first-touch scratch allocation), then measure.
        acc += sim.single_source(0).len() as f64;
        let start = Instant::now();
        for t in 0..queries {
            let a = ((t * 131 + 7) % n) as u32;
            acc += sim.single_source(a).iter().map(|r| r.score).sum::<f64>();
        }
        let per_query = start.elapsed().as_secs_f64() / queries as f64;
        std::hint::black_box(acc);
        (per_query, sim.snapshot_query().heap_bytes())
    };

    let (query_secs_small, heap_small) = point(n_small);
    let (query_secs_large, heap_large) = point(n_large);
    let heap_growth = heap_large as f64 / heap_small.max(1) as f64;
    assert!(
        heap_growth < 8.0,
        "probe peak heap must grow sub-quadratically: {heap_small} B at n={n_small} -> \
         {heap_large} B at n={n_large} (x{heap_growth:.1}; quadratic would be x16)"
    );
    ProbeSingleSourceSnapshot {
        n_small,
        n_large,
        k_iters,
        walks: opts.walks,
        query_secs_small,
        query_secs_large,
        heap_peak_bytes_small: heap_small,
        heap_peak_bytes_large: heap_large,
        heap_growth,
        dense_bytes_large: 8 * n_large * n_large,
    }
}

/// Cost of write-ahead durability on the serving write path: the same
/// unit-update stream through two single-shard routers, one logging every
/// op (`SimRankBuilder::wal`), one not.
#[derive(Debug, Clone)]
pub struct WalOverheadSnapshot {
    /// Node count of the workload graph.
    pub n: usize,
    /// Measured unit updates (one warm-up excluded).
    pub updates: usize,
    /// Median per-update seconds without a log.
    pub plain_per_update_secs: f64,
    /// Median per-update seconds with every op appended to the log.
    pub durable_per_update_secs: f64,
    /// Median of the paired per-update differences, clamped at 0 — the
    /// append cost itself (serialise + checksum + buffered write).
    pub wal_append_envelope_secs: f64,
    /// `100 · envelope / plain median`: the durability tax in percent of
    /// the per-update cost. The acceptance bar is < 5% at full scale —
    /// one O(26-byte) append against an O(K·n·d) maintenance step.
    pub wal_overhead_pct: f64,
    /// Log bytes appended per op (frame header + op payload).
    pub wal_bytes_per_op: f64,
}

/// Measures the WAL append tax with the same paired, order-alternating
/// protocol as [`measure_service_overhead`]: per step the op is applied
/// on both routers back to back (order swapping every step), and the
/// median paired difference isolates the append from shared noise. The
/// checkpoint cadence is pushed out of the window so the envelope prices
/// the steady-state append alone (checkpoints amortise separately).
pub fn measure_wal_overhead(n: usize, k_iters: usize, cap: usize) -> WalOverheadSnapshot {
    let g = snapshot_graph(n);
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let s0 = batch_simrank(&g, &cfg);
    let mut rng = StdRng::seed_from_u64(0x0A17);
    let stream = random_insertions(&g, cap + 1, &mut rng);

    let path = std::env::temp_dir().join(format!("incsim_bench_wal_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let base = SimRankBuilder::new()
        .algorithm(EngineKind::IncUSr)
        .mode(ApplyPolicy::Fused)
        .config(cfg);
    let mut plain =
        ShardedSimRank::with_scores(base.clone(), g.clone(), s0.clone()).expect("router builds");
    let mut durable =
        ShardedSimRank::with_scores(base.wal(&path).checkpoint_every(u64::MAX), g, s0)
            .expect("durable router builds");

    let (&warmup, measured) = stream.split_first().expect("cap >= 1");
    plain.update(warmup).expect("stream valid");
    durable.update(warmup).expect("stream valid");
    let log_bytes_start = std::fs::metadata(&path).map_or(0, |m| m.len());

    let mut plain_times: Vec<f64> = Vec::with_capacity(measured.len());
    let mut durable_times: Vec<f64> = Vec::with_capacity(measured.len());
    let mut diffs: Vec<f64> = Vec::with_capacity(measured.len());
    for (step, &op) in measured.iter().enumerate() {
        let (p, d) = if step % 2 == 0 {
            let t = Instant::now();
            plain.update(op).expect("stream valid");
            let p = t.elapsed().as_secs_f64();
            let t = Instant::now();
            durable.update(op).expect("stream valid");
            (p, t.elapsed().as_secs_f64())
        } else {
            let t = Instant::now();
            durable.update(op).expect("stream valid");
            let d = t.elapsed().as_secs_f64();
            let t = Instant::now();
            plain.update(op).expect("stream valid");
            (t.elapsed().as_secs_f64(), d)
        };
        plain_times.push(p);
        durable_times.push(d);
        diffs.push(d - p);
    }
    let log_bytes_end = std::fs::metadata(&path).map_or(0, |m| m.len());
    let _ = std::fs::remove_file(&path);

    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v.get(v.len() / 2).copied().unwrap_or(1e-12)
    };
    let plain_median = median(&mut plain_times);
    let durable_median = median(&mut durable_times);
    let envelope = median(&mut diffs).max(0.0);
    WalOverheadSnapshot {
        n,
        updates: measured.len(),
        plain_per_update_secs: plain_median,
        durable_per_update_secs: durable_median,
        wal_append_envelope_secs: envelope,
        wal_overhead_pct: 100.0 * envelope / plain_median.max(1e-12),
        wal_bytes_per_op: (log_bytes_end.saturating_sub(log_bytes_start)) as f64
            / measured.len().max(1) as f64,
    }
}

/// Cost and compression of the temporal epoch ring: the last `retain`
/// published epochs kept addressable behind [`ConcurrentSimRank`], each
/// non-head epoch stored as a factor-compressed delta against its
/// successor rather than a dense `n × n` copy.
#[derive(Debug, Clone)]
pub struct EpochRingSnapshot {
    /// Node count of the workload graph.
    pub n: usize,
    /// Iterations `K`.
    pub k_iters: usize,
    /// Ring capacity (`SimRankBuilder::retain_epochs`).
    pub retain: usize,
    /// Epochs published over the run (> `retain`, so eviction is hit).
    pub publishes: usize,
    /// Unit updates applied between consecutive publishes.
    pub ops_per_epoch: usize,
    /// Mean seconds per `publish` (includes the delta compression of the
    /// epoch being pushed into the ring).
    pub publish_secs: f64,
    /// Mean seconds per `pair_at` on the *oldest* retained epoch — the
    /// worst case: the whole delta chain is stacked per call.
    pub reconstruct_pair_secs: f64,
    /// Mean seconds per head-epoch pair read (the baseline the
    /// reconstruction cost is paid on top of).
    pub head_pair_secs: f64,
    /// Bytes held by the ring beyond the head epoch (factor deltas plus
    /// any replay tails).
    pub retained_heap_bytes: usize,
    /// What the same non-head epochs would cost as dense matrices:
    /// `(epochs − 1) · n² · 8`.
    pub dense_equivalent_bytes: usize,
    /// `dense_equivalent_bytes / retained_heap_bytes` — the compression
    /// factor. Per-epoch factor rank is set by the ops between publishes,
    /// not by `n`, so this ratio *grows* with `n` (sub-quadratic law).
    pub retained_ratio: f64,
    /// Max |`pair_at` − value recorded live at publish time| over the
    /// sampled pairs of the oldest retained epoch. Exactness: must be
    /// ≤ 1e-12 at any scale (asserted inside the measurement).
    pub oldest_epoch_drift: f64,
}

/// Drives `cap` unit updates through a retain-`retain` ring in
/// `retain + 2` publish chunks (so the ring fills *and* evicts), records
/// the live head answers of sampled pairs at every publish, then replays
/// the oldest still-retained epoch through `pair_at` and checks it
/// against the recording.
///
/// Two gates are asserted inside the measurement itself (like the probe
/// case's heap gate): the reconstructed trajectory must match the
/// recording to 1e-12 at any scale, and the retained ring must beat the
/// dense-copy cost — by 8× once `n ≥ 1024`, where the O(n·r)-vs-O(n²)
/// separation is unambiguous (at toy sizes the factor overhead of a
/// QR-compressed delta eats most of the margin).
pub fn measure_epoch_ring(
    n: usize,
    k_iters: usize,
    retain: usize,
    cap: usize,
) -> EpochRingSnapshot {
    assert!(retain >= 2, "a ring of one epoch retains no history");
    let g = snapshot_graph(n);
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let s0 = batch_simrank(&g, &cfg);
    let publishes = retain + 2;
    let ops_per_epoch = cap.div_ceil(publishes).max(1);
    let mut rng = StdRng::seed_from_u64(0xE90C);
    let stream = random_insertions(&g, publishes * ops_per_epoch, &mut rng);

    let builder = SimRankBuilder::new()
        .algorithm(EngineKind::IncUSr)
        .mode(ApplyPolicy::Fused)
        .config(cfg)
        .retain_epochs(retain);
    let sharded = ShardedSimRank::with_scores(builder, g, s0).expect("router builds");
    let mut srv = ConcurrentSimRank::new(sharded);

    let samples = 64usize;
    let pairs: Vec<(u32, u32)> = (0..samples)
        .map(|t| (((t * 131) % n) as u32, ((t * 197 + 13) % n) as u32))
        .collect();

    let mut recorded: Vec<(u64, Vec<f64>)> = Vec::with_capacity(publishes);
    let mut publish_total = 0.0f64;
    for chunk in stream.chunks(ops_per_epoch) {
        srv.update_batch(chunk).expect("stream valid");
        let t = Instant::now();
        let seq = srv.publish();
        publish_total += t.elapsed().as_secs_f64();
        let reader = srv.reader();
        let live: Vec<f64> = pairs.iter().map(|&(a, b)| reader.pair(a, b)).collect();
        recorded.push((seq, live));
    }

    let infos = srv.epochs();
    assert_eq!(
        infos.len(),
        retain,
        "ring must be full after {publishes} publishes"
    );
    let oldest_seq = infos.first().expect("ring non-empty").seq;
    let (_, live) = recorded
        .iter()
        .find(|(seq, _)| *seq == oldest_seq)
        .expect("oldest retained epoch was recorded at publish time");

    // Worst-case temporal read: every pair_at on the oldest epoch stacks
    // the full delta chain back from the head.
    let t = Instant::now();
    let mut drift = 0.0f64;
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let then = srv.pair_at(a, b, oldest_seq).expect("epoch retained");
        drift = drift.max((then - live[i]).abs());
    }
    let reconstruct_pair_secs = t.elapsed().as_secs_f64() / samples as f64;
    assert!(
        drift <= 1e-12,
        "oldest retained epoch drifted {drift:.2e} from the live recording (tolerance 1e-12)"
    );

    let reader = srv.reader();
    let t = Instant::now();
    let mut acc = 0.0;
    for &(a, b) in &pairs {
        acc += reader.pair(a, b);
    }
    let head_pair_secs = t.elapsed().as_secs_f64() / samples as f64;
    std::hint::black_box(acc);

    let retained_heap_bytes = srv.retained_heap_bytes();
    let dense_equivalent_bytes = (infos.len() - 1) * n * n * 8;
    assert!(
        retained_heap_bytes < dense_equivalent_bytes,
        "retained ring ({retained_heap_bytes} B) must undercut dense copies \
         ({dense_equivalent_bytes} B)"
    );
    if n >= 1024 {
        assert!(
            retained_heap_bytes * 8 < dense_equivalent_bytes,
            "retained-epoch heap is not sub-quadratic: {retained_heap_bytes} B vs \
             {dense_equivalent_bytes} B dense for n = {n}"
        );
    }

    EpochRingSnapshot {
        n,
        k_iters,
        retain,
        publishes,
        ops_per_epoch,
        publish_secs: publish_total / publishes as f64,
        reconstruct_pair_secs,
        head_pair_secs,
        retained_heap_bytes,
        dense_equivalent_bytes,
        retained_ratio: dense_equivalent_bytes as f64 / retained_heap_bytes.max(1) as f64,
        oldest_epoch_drift: drift,
    }
}

/// Durability cost of the *persistent* epoch ring: what the v2
/// checkpoint round (head image + epoch-ring frames on the same log)
/// costs on disk, and what rehydrating the ring adds to crash recovery.
#[derive(Debug, Clone)]
pub struct EpochRecoverySnapshot {
    /// Node count of the workload graph.
    pub n: usize,
    /// Iterations `K`.
    pub k_iters: usize,
    /// Ring capacity (`SimRankBuilder::retain_epochs`).
    pub retain: usize,
    /// Epochs published over the run.
    pub publishes: usize,
    /// Unit updates applied between consecutive publishes.
    pub ops_per_epoch: usize,
    /// Pre-crash epochs addressable again after the reopen
    /// ([`HistoryStatus::Recovered`]'s count: ring entries plus the
    /// persisted head).
    pub restored_epochs: usize,
    /// Bytes of the checkpoint frames in the final round — the head-only
    /// image a v1 log would have written.
    pub head_image_bytes: usize,
    /// Bytes of the epoch-delta + meta frames riding that round — the
    /// price of making history durable.
    pub ring_round_bytes: usize,
    /// `head_image_bytes + ring_round_bytes`: the full v2 round.
    pub checkpoint_bytes: usize,
    /// `checkpoint_bytes / head_image_bytes`. The head image is a dense
    /// `n²` snapshot while the ring holds factor deltas, so the contract
    /// is < 2× at full scale (asserted at `n ≥ 1024` inside the
    /// measurement).
    pub checkpoint_growth: f64,
    /// Seconds for a head-only reopen of the same log
    /// (`retain_epochs(1)`) — the recovery baseline.
    pub head_recover_secs: f64,
    /// Seconds for the retained reopen (`retain_epochs(retain)`), ring
    /// rehydration included.
    pub ring_recover_secs: f64,
    /// `ring_recover_secs − head_recover_secs`, clamped at 0: the ring's
    /// attributable share of recovery (scan + anchor decode + splice).
    pub ring_rehydrate_secs: f64,
    /// Max |`pair_at` on a restored epoch − value recorded live at
    /// publish time| across all restored epochs. Exactness: must be
    /// ≤ 1e-12 at any scale (asserted inside the measurement).
    pub recovered_drift: f64,
}

/// Drives a durable retain-`retain` run whose checkpoint cadence fires
/// once, late in the stream (so exactly one full v2 round — head image
/// plus a *full* ring — lands at the log tail), then accounts the round
/// byte-by-byte from the frame classes and times a paired reopen:
/// head-only (`retain_epochs(1)`) vs retained, the difference being the
/// ring-rehydrate cost. Every restored epoch is replayed through
/// `pair_at` and checked against the trajectory recorded at publish
/// time; drift beyond 1e-12 fails the measurement at any scale, and the
/// < 2× growth contract over the head-only image is asserted once
/// `n ≥ 1024` (at toy sizes the dense head image is small enough that
/// the ring's fixed framing overhead distorts the ratio).
pub fn measure_epoch_recovery(
    n: usize,
    k_iters: usize,
    retain: usize,
    cap: usize,
) -> EpochRecoverySnapshot {
    assert!(retain >= 2, "a ring of one epoch persists no history");
    let g = snapshot_graph(n);
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let s0 = batch_simrank(&g, &cfg);
    let publishes = retain + 2;
    let ops_per_epoch = cap.div_ceil(publishes).max(1);
    let total = publishes * ops_per_epoch;
    let mut rng = StdRng::seed_from_u64(0xD05E);
    let stream = random_insertions(&g, total, &mut rng);

    let path = std::env::temp_dir().join(format!("incsim_bench_ring_{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // One cadence checkpoint, after the ring has filled: `total - 1` ops
    // in means the v2 round at the tail carries `retain - 1` deltas, not
    // an early part-full ring.
    let durable = |retain_epochs: usize| {
        SimRankBuilder::new()
            .algorithm(EngineKind::IncUSr)
            .mode(ApplyPolicy::Fused)
            .config(cfg)
            .retain_epochs(retain_epochs)
            .checkpoint_every((total as u64).saturating_sub(1).max(1))
            .wal(&path)
    };

    let sharded = ShardedSimRank::with_scores(durable(retain), g.clone(), s0.clone())
        .expect("durable router builds");
    let mut srv = ConcurrentSimRank::new(sharded);

    let samples = 64usize;
    let pairs: Vec<(u32, u32)> = (0..samples)
        .map(|t| (((t * 131) % n) as u32, ((t * 197 + 13) % n) as u32))
        .collect();
    let mut recorded: Vec<(u64, Vec<f64>)> = Vec::with_capacity(publishes);
    for chunk in stream.chunks(ops_per_epoch) {
        srv.update_batch(chunk).expect("stream valid");
        let seq = srv.publish();
        let reader = srv.reader();
        let live: Vec<f64> = pairs.iter().map(|&(a, b)| reader.pair(a, b)).collect();
        recorded.push((seq, live));
    }
    drop(srv);

    // Byte accounting of the final v2 round, walked backwards from the
    // newest meta trailer: [checkpoint…][epoch-delta…][epoch-meta] are
    // appended contiguously by the cadence write.
    let bytes = std::fs::read(&path).expect("log readable after the run");
    let kinds = frame_kinds(&bytes);
    let frame_len = |off: usize| {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("frame header"));
        FRAME_HEADER + len as usize
    };
    let last_meta = kinds
        .iter()
        .rposition(|&(_, k)| k == FrameKind::EpochMeta)
        .expect("a durable retained run persists an epoch-ring round");
    let mut ring_round_bytes = frame_len(kinds[last_meta].0);
    let mut i = last_meta;
    while i > 0 && kinds[i - 1].1 == FrameKind::EpochDelta {
        i -= 1;
        ring_round_bytes += frame_len(kinds[i].0);
    }
    let mut head_image_bytes = 0usize;
    while i > 0 && kinds[i - 1].1 == FrameKind::Checkpoint {
        i -= 1;
        head_image_bytes += frame_len(kinds[i].0);
    }
    assert!(
        head_image_bytes > 0,
        "the epoch-ring round must ride a checkpoint round"
    );
    let checkpoint_bytes = head_image_bytes + ring_round_bytes;
    let checkpoint_growth = checkpoint_bytes as f64 / head_image_bytes as f64;
    if n >= 1024 {
        assert!(
            checkpoint_growth < 2.0,
            "v2 checkpoint round ({checkpoint_bytes} B) must stay under 2x the head-only \
             image ({head_image_bytes} B) at n = {n}"
        );
    }

    // Paired reopen: same log, same recovery replay — the only delta is
    // the ring scan + anchor decode + splice the retained side performs.
    // The first reopen after a run pays one-time costs (allocator growth
    // for the n² images, cold code paths) that can exceed the ring work
    // itself, so warm up with an untimed reopen before the timed pair.
    drop(ConcurrentSimRank::new(
        ShardedSimRank::with_scores(durable(1), g.clone(), s0.clone())
            .expect("warm-up recovery succeeds"),
    ));
    let t = Instant::now();
    let head_only = ConcurrentSimRank::new(
        ShardedSimRank::with_scores(durable(1), g.clone(), s0.clone())
            .expect("head-only recovery succeeds"),
    );
    let head_recover_secs = t.elapsed().as_secs_f64();
    drop(head_only);
    let t = Instant::now();
    let revived = ConcurrentSimRank::new(
        ShardedSimRank::with_scores(durable(retain), g, s0).expect("ring recovery succeeds"),
    );
    let ring_recover_secs = t.elapsed().as_secs_f64();
    let restored_epochs = match revived.history_status() {
        HistoryStatus::Recovered { epochs } => epochs,
        other => panic!("durable retained log must rehydrate its ring, got {other:?}"),
    };

    // Every restored epoch must answer exactly as it did live. The new
    // incarnation's head is numbered past the ring and holds the full
    // durable op prefix — not any pre-crash publish — so it is excluded.
    let head_seq = revived.epoch_seq();
    let mut drift = 0.0f64;
    let mut checked = 0usize;
    for info in revived.epochs() {
        if info.seq == head_seq {
            continue;
        }
        let (_, live) = recorded
            .iter()
            .find(|(seq, _)| *seq == info.seq)
            .expect("every restored epoch was recorded at publish time");
        for (idx, &(a, b)) in pairs.iter().enumerate() {
            let then = revived.pair_at(a, b, info.seq).expect("epoch restored");
            drift = drift.max((then - live[idx]).abs());
        }
        checked += 1;
    }
    // The rehydrated entries sit behind the *new* head, so the ring's
    // `retain - 1` capacity can evict the oldest restored epoch on the
    // spot — everything else must be addressable.
    assert_eq!(
        checked,
        restored_epochs.min(retain - 1),
        "rehydrated ring entries inside capacity must be addressable"
    );
    assert!(
        drift <= 1e-12,
        "restored epochs drifted {drift:.2e} from the pre-crash trajectory (tolerance 1e-12)"
    );
    let _ = std::fs::remove_file(&path);

    EpochRecoverySnapshot {
        n,
        k_iters,
        retain,
        publishes,
        ops_per_epoch,
        restored_epochs,
        head_image_bytes,
        ring_round_bytes,
        checkpoint_bytes,
        checkpoint_growth,
        head_recover_secs,
        ring_recover_secs,
        ring_rehydrate_secs: (ring_recover_secs - head_recover_secs).max(0.0),
        recovered_drift: drift,
    }
}

/// One measurement of every case, borrowed together for [`snapshot_json`].
pub struct SnapshotCases<'a> {
    /// The `apply_modes` case.
    pub modes: &'a ApplyModeSnapshot,
    /// The `micro_kernels` case.
    pub micro: &'a MicroKernelSnapshot,
    /// The `service_overhead` case.
    pub service: &'a ServiceOverheadSnapshot,
    /// The `concurrent_throughput` case.
    pub concurrent: &'a ConcurrentThroughputSnapshot,
    /// The `long_lazy_window` case.
    pub long_lazy: &'a LongLazyWindowSnapshot,
    /// The `probe_single_source` case.
    pub probe: &'a ProbeSingleSourceSnapshot,
    /// The `wal_overhead` case.
    pub wal: &'a WalOverheadSnapshot,
    /// The `epoch_ring` case.
    pub epoch: &'a EpochRingSnapshot,
    /// The `epoch_recovery` case.
    pub recovery: &'a EpochRecoverySnapshot,
}

/// Renders the full snapshot as pretty-printed JSON.
pub fn snapshot_json(cases: &SnapshotCases<'_>) -> String {
    let &SnapshotCases {
        modes,
        micro,
        service,
        concurrent,
        long_lazy,
        probe,
        wal,
        epoch,
        recovery,
    } = cases;
    format!(
        r#"{{
  "schema": "incsim-bench-snapshot-v8",
  "bench_scale": {scale},
  "apply_modes": {{
    "n": {n},
    "k_iters": {k},
    "measured_updates": {upd},
    "eager_per_update_secs": {eager:.6e},
    "fused_per_update_secs": {fused:.6e},
    "fused_batch_per_update_secs": {fb:.6e},
    "lazy_per_update_secs": {lz:.6e},
    "lazy_query_secs": {lq:.6e},
    "lazy_pending_pairs": {lp},
    "fused_speedup": {sp:.3},
    "eager_peak_bytes": {epb},
    "fused_peak_bytes": {fpb},
    "max_abs_diff_fused_vs_eager": {dfe:.3e},
    "max_abs_diff_lazy_vs_eager": {dle:.3e}
  }},
  "micro_kernels": {{
    "n": {mn},
    "pairs": {mp},
    "eager_sweeps_secs": {mes:.6e},
    "fused_apply_secs": {mfs:.6e},
    "fused_apply_parallel_secs": {mps:.6e}
  }},
  "service_overhead": {{
    "n": {sn},
    "updates": {su},
    "queries_per_update": {sq},
    "direct_secs": {sds:.6e},
    "service_secs": {sss:.6e},
    "overhead_pct": {sop:.4},
    "update_envelope_secs": {sue:.6e},
    "direct_query_secs": {sdq:.6e},
    "service_query_secs": {ssq:.6e}
  }},
  "concurrent_throughput": {{
    "n": {cn},
    "shards": {csh},
    "k_iters": {ck},
    "duration_secs": {cd:.3},
    "qps_1t": {cq1:.6e},
    "qps_2t": {cq2:.6e},
    "qps_4t": {cq4:.6e},
    "speedup_4_vs_1": {csp:.3},
    "writer_updates_per_sec": {cwu:.3},
    "epochs_published": {cep},
    "max_abs_diff_sharded_fused_vs_eager": {cdf:.3e},
    "max_abs_diff_sharded_lazy_vs_eager": {cdl:.3e}
  }},
  "long_lazy_window": {{
    "n": {ln},
    "k_iters": {lk},
    "window": {lw},
    "compress_rank": {lcr},
    "uncompressed_pairs": {lup},
    "compressed_pairs": {lcp},
    "recompressions": {lrc},
    "uncompressed_query_secs": {luq:.6e},
    "compressed_query_secs": {lcq:.6e},
    "long_lazy_query_speedup": {lsp:.3},
    "uncompressed_heap_bytes": {luh},
    "compressed_heap_peak_bytes": {lph},
    "compressed_heap_end_bytes": {leh},
    "max_abs_diff_compressed_vs_uncompressed": {ldf:.3e}
  }},
  "probe_single_source": {{
    "n_small": {pns},
    "n_large": {pnl},
    "k_iters": {pk},
    "walks": {pw},
    "query_secs_small": {pqs:.6e},
    "query_secs_large": {pql:.6e},
    "heap_peak_bytes_small": {phs},
    "heap_peak_bytes_large": {phl},
    "probe_heap_growth": {phg:.3},
    "dense_bytes_large": {pdb}
  }},
  "wal_overhead": {{
    "n": {wn},
    "updates": {wu},
    "plain_per_update_secs": {wps:.6e},
    "durable_per_update_secs": {wds:.6e},
    "wal_append_envelope_secs": {wae:.6e},
    "wal_overhead_pct": {wop:.4},
    "wal_bytes_per_op": {wbo:.1}
  }},
  "epoch_ring": {{
    "n": {en},
    "k_iters": {ek},
    "retain": {er},
    "publishes": {ep},
    "ops_per_epoch": {eo},
    "publish_secs": {eps:.6e},
    "reconstruct_pair_secs": {ers:.6e},
    "head_pair_secs": {ehs:.6e},
    "retained_heap_bytes": {ehb},
    "dense_equivalent_bytes": {edb},
    "retained_ratio": {ert:.3},
    "oldest_epoch_drift": {eod:.3e}
  }},
  "epoch_recovery": {{
    "n": {vn},
    "k_iters": {vk},
    "retain": {vr},
    "publishes": {vp},
    "ops_per_epoch": {vo},
    "restored_epochs": {vre},
    "head_image_bytes": {vhb},
    "ring_round_bytes": {vrb},
    "checkpoint_bytes": {vcb},
    "checkpoint_growth": {vcg:.4},
    "head_recover_secs": {vhs:.6e},
    "ring_recover_secs": {vrs:.6e},
    "ring_rehydrate_secs": {vrh:.6e},
    "recovered_drift": {vrd:.3e}
  }}
}}
"#,
        scale = bench_scale(),
        n = modes.n,
        k = modes.k_iters,
        upd = modes.measured_updates,
        eager = modes.eager_per_update_secs,
        fused = modes.fused_per_update_secs,
        fb = modes.fused_batch_per_update_secs,
        lz = modes.lazy_per_update_secs,
        lq = modes.lazy_query_secs,
        lp = modes.lazy_pending_pairs,
        sp = modes.fused_speedup,
        epb = modes.eager_peak_bytes,
        fpb = modes.fused_peak_bytes,
        dfe = modes.max_abs_diff_fused_vs_eager,
        dle = modes.max_abs_diff_lazy_vs_eager,
        mn = micro.n,
        mp = micro.pairs,
        mes = micro.eager_sweeps_secs,
        mfs = micro.fused_apply_secs,
        mps = micro.fused_apply_parallel_secs,
        sn = service.n,
        su = service.updates,
        sq = service.queries_per_update,
        sds = service.direct_secs,
        sss = service.service_secs,
        sop = service.overhead_pct,
        sue = service.update_envelope_secs,
        sdq = service.direct_query_secs,
        ssq = service.service_query_secs,
        cn = concurrent.n,
        csh = concurrent.shards,
        ck = concurrent.k_iters,
        cd = concurrent.duration_secs,
        cq1 = concurrent.qps_1t,
        cq2 = concurrent.qps_2t,
        cq4 = concurrent.qps_4t,
        csp = concurrent.speedup_4_vs_1,
        cwu = concurrent.writer_updates_per_sec,
        cep = concurrent.epochs_published,
        cdf = concurrent.max_abs_diff_sharded_fused_vs_eager,
        cdl = concurrent.max_abs_diff_sharded_lazy_vs_eager,
        ln = long_lazy.n,
        lk = long_lazy.k_iters,
        lw = long_lazy.window,
        lcr = long_lazy.compress_rank,
        lup = long_lazy.uncompressed_pairs,
        lcp = long_lazy.compressed_pairs,
        lrc = long_lazy.recompressions,
        luq = long_lazy.uncompressed_query_secs,
        lcq = long_lazy.compressed_query_secs,
        lsp = long_lazy.long_lazy_query_speedup,
        luh = long_lazy.uncompressed_heap_bytes,
        lph = long_lazy.compressed_heap_peak_bytes,
        leh = long_lazy.compressed_heap_end_bytes,
        ldf = long_lazy.max_abs_diff_compressed_vs_uncompressed,
        pns = probe.n_small,
        pnl = probe.n_large,
        pk = probe.k_iters,
        pw = probe.walks,
        pqs = probe.query_secs_small,
        pql = probe.query_secs_large,
        phs = probe.heap_peak_bytes_small,
        phl = probe.heap_peak_bytes_large,
        phg = probe.heap_growth,
        pdb = probe.dense_bytes_large,
        wn = wal.n,
        wu = wal.updates,
        wps = wal.plain_per_update_secs,
        wds = wal.durable_per_update_secs,
        wae = wal.wal_append_envelope_secs,
        wop = wal.wal_overhead_pct,
        wbo = wal.wal_bytes_per_op,
        en = epoch.n,
        ek = epoch.k_iters,
        er = epoch.retain,
        ep = epoch.publishes,
        eo = epoch.ops_per_epoch,
        eps = epoch.publish_secs,
        ers = epoch.reconstruct_pair_secs,
        ehs = epoch.head_pair_secs,
        ehb = epoch.retained_heap_bytes,
        edb = epoch.dense_equivalent_bytes,
        ert = epoch.retained_ratio,
        eod = epoch.oldest_epoch_drift,
        vn = recovery.n,
        vk = recovery.k_iters,
        vr = recovery.retain,
        vp = recovery.publishes,
        vo = recovery.ops_per_epoch,
        vre = recovery.restored_epochs,
        vhb = recovery.head_image_bytes,
        vrb = recovery.ring_round_bytes,
        vcb = recovery.checkpoint_bytes,
        vcg = recovery.checkpoint_growth,
        vhs = recovery.head_recover_secs,
        vrs = recovery.ring_recover_secs,
        vrh = recovery.ring_rehydrate_secs,
        vrd = recovery.recovered_drift,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_runs_and_serialises_on_a_tiny_workload() {
        let modes = measure_apply_modes(60, 4, 3);
        assert_eq!(modes.measured_updates, 3);
        assert!(modes.max_abs_diff_fused_vs_eager < 1e-12);
        assert!(modes.max_abs_diff_lazy_vs_eager < 1e-12);
        assert!(modes.lazy_pending_pairs > 0);
        let micro = measure_micro_kernels(64, 5, 2);
        let service = measure_service_overhead(60, 4, 2);
        assert_eq!(service.updates, 2);
        assert!(service.overhead_pct.is_finite());
        assert!(service.direct_secs > 0.0 && service.service_secs > 0.0);
        let concurrent = measure_concurrent_throughput(48, 4, 2, 0.02);
        assert!(concurrent.qps_1t > 0.0 && concurrent.qps_4t > 0.0);
        assert!(concurrent.epochs_published > 0);
        assert!(
            concurrent.max_abs_diff_sharded_fused_vs_eager < 1e-12,
            "sharded fused drift {:.2e}",
            concurrent.max_abs_diff_sharded_fused_vs_eager
        );
        assert!(
            concurrent.max_abs_diff_sharded_lazy_vs_eager < 1e-12,
            "sharded lazy drift {:.2e}",
            concurrent.max_abs_diff_sharded_lazy_vs_eager
        );
        let long_lazy = measure_long_lazy_window(56, 4, 12);
        assert_eq!(long_lazy.window, 12);
        assert!(long_lazy.recompressions >= 1, "window must recompress");
        assert!(
            long_lazy.compressed_pairs < long_lazy.uncompressed_pairs,
            "compression must shrink the buffered rank ({} vs {})",
            long_lazy.compressed_pairs,
            long_lazy.uncompressed_pairs
        );
        assert!(
            long_lazy.compressed_heap_peak_bytes < long_lazy.uncompressed_heap_bytes,
            "compressed window must stay under the uncompressed end size"
        );
        assert!(
            long_lazy.max_abs_diff_compressed_vs_uncompressed < 1e-12,
            "compressed window drifted {:.2e}",
            long_lazy.max_abs_diff_compressed_vs_uncompressed
        );
        // The probe case's sub-quadratic heap gate is asserted inside the
        // measurement itself; 4x the node count with a Theta(n^2) matrix
        // would blow straight past the x8 bar.
        let probe = measure_probe_single_source(64, 4);
        assert_eq!(probe.n_large, 256);
        assert!(probe.query_secs_small > 0.0 && probe.query_secs_large > 0.0);
        assert!(probe.heap_peak_bytes_large > probe.heap_peak_bytes_small);
        let wal = measure_wal_overhead(60, 4, 3);
        assert_eq!(wal.updates, 3);
        assert!(wal.wal_overhead_pct.is_finite() && wal.wal_overhead_pct >= 0.0);
        assert!(
            wal.wal_bytes_per_op > 0.0,
            "durable router stopped appending ops"
        );
        // The trajectory-exactness gate is asserted inside the measure at
        // any scale; the 8x sub-quadratic heap gate arms at n >= 1024 (at
        // toy sizes the QR factor overhead eats the margin), so here we
        // only require the ring to undercut dense copies at all.
        let epoch = measure_epoch_ring(128, 4, 4, 8);
        assert_eq!(epoch.retain, 4);
        assert_eq!(epoch.publishes, 6);
        assert!(epoch.oldest_epoch_drift <= 1e-12);
        assert!(
            epoch.retained_ratio > 1.0,
            "ring ({} B) must beat dense ({} B)",
            epoch.retained_heap_bytes,
            epoch.dense_equivalent_bytes
        );
        assert!(epoch.publish_secs > 0.0 && epoch.reconstruct_pair_secs > 0.0);
        // The trajectory gate (restored epochs match their publish-time
        // recordings to 1e-12) is asserted inside the measure; the < 2x
        // growth gate arms at n >= 1024. Here: the reopen must actually
        // rehydrate history, and the round must carry real ring bytes.
        let recovery = measure_epoch_recovery(96, 4, 4, 8);
        assert_eq!(recovery.retain, 4);
        assert!(
            recovery.restored_epochs >= 2,
            "retained reopen restored only {} epoch(s)",
            recovery.restored_epochs
        );
        assert!(recovery.head_image_bytes > 0 && recovery.ring_round_bytes > 0);
        assert_eq!(
            recovery.checkpoint_bytes,
            recovery.head_image_bytes + recovery.ring_round_bytes
        );
        assert!(recovery.checkpoint_growth >= 1.0);
        assert!(recovery.recovered_drift <= 1e-12);
        assert!(recovery.ring_rehydrate_secs >= 0.0);
        let json = snapshot_json(&SnapshotCases {
            modes: &modes,
            micro: &micro,
            service: &service,
            concurrent: &concurrent,
            long_lazy: &long_lazy,
            probe: &probe,
            wal: &wal,
            epoch: &epoch,
            recovery: &recovery,
        });
        assert!(json.contains("\"schema\": \"incsim-bench-snapshot-v8\""));
        assert!(json.contains("fused_speedup"));
        assert!(json.contains("service_overhead"));
        assert!(json.contains("concurrent_throughput"));
        assert!(json.contains("speedup_4_vs_1"));
        assert!(json.contains("long_lazy_window"));
        assert!(json.contains("long_lazy_query_speedup"));
        assert!(json.contains("probe_single_source"));
        assert!(json.contains("probe_heap_growth"));
        assert!(json.contains("wal_overhead"));
        assert!(json.contains("wal_overhead_pct"));
        assert!(json.contains("epoch_ring"));
        assert!(json.contains("retained_ratio"));
        assert!(json.contains("epoch_recovery"));
        assert!(json.contains("checkpoint_growth"));
        assert!(json.contains("ring_rehydrate_secs"));
        // Balanced braces — cheap structural sanity for the hand-rolled JSON.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }
}

//! `bench-snapshot` — records the PR's hot-path perf numbers as JSON.
//!
//! ```text
//! bench-snapshot [--out BENCH_PR10.json] [--n 2048] [--k 15] [--cap 20]
//!                [--window 256] [--probe-n 12500] [--retain 8]
//!                [--compare BENCH_PR10.json --tolerance 200]
//! ```
//!
//! Runs the fig2a-style unit-update workload under the eager / fused /
//! lazy apply modes, the isolated micro-kernels, the `service_overhead`
//! case (the `incsim::api` dyn handle vs direct engine calls on an
//! update+query serving workload), the `concurrent_throughput` case
//! (epoch-reader queries/sec at 1/2/4 threads against the sharded
//! `incsim::serve` layer under a saturated background writer), and the
//! `probe_single_source` case (matrix-free single-source latency and
//! peak heap at `--probe-n` and `4 × --probe-n` nodes — sizes no dense
//! engine could touch), the `epoch_ring` case (time-travel reads against
//! the last `--retain` published epochs, checked against the trajectory
//! recorded live at publish time), the `epoch_recovery` case (the v2
//! checkpoint round's on-disk growth over a head-only image and the
//! epoch ring's attributable share of a crash recovery, with every
//! restored epoch checked against its publish-time recording), and
//! writes a machine-readable snapshot (see `incsim_bench::snapshot`).
//!
//! `--compare FILE` additionally gates the run against a committed
//! snapshot: the scale-robust kernel metrics (`fused_speedup`,
//! `lazy_query_secs`, `overhead_pct`, `long_lazy_query_speedup`,
//! `compressed_query_secs`, `query_secs_large`, `probe_heap_growth`,
//! `wal_overhead_pct`, `epoch_retained_ratio`, `epoch_reconstruct_secs`,
//! `checkpoint_growth`, `ring_rehydrate_secs`) must not regress beyond
//! `--tolerance` percent (default 200, i.e. 3×) past their noise floors —
//! see `incsim_bench::compare`. Exactness gates fail hard at any scale,
//! as do the probe engine's sub-quadratic heap-growth gate and the epoch
//! ring's trajectory + retained-heap gates (asserted inside the
//! measurements).
//!
//! Measurement caps honour `INCSIM_BENCH_SCALE`; unlike the full
//! experiment suite the snapshot defaults to a quick `0.2` pass when the
//! variable is unset.

use incsim_bench::compare::{compare, parse_metrics, SnapshotMetrics};
use incsim_bench::snapshot::{
    measure_apply_modes, measure_concurrent_throughput, measure_epoch_recovery, measure_epoch_ring,
    measure_long_lazy_window, measure_micro_kernels, measure_probe_single_source,
    measure_service_overhead, measure_wal_overhead, snapshot_json, SnapshotCases,
};
use incsim_bench::{bench_scale, scaled_cap};
use incsim_metrics::timing::fmt_duration;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    if std::env::var("INCSIM_BENCH_SCALE").is_err() {
        std::env::set_var("INCSIM_BENCH_SCALE", "0.2");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench-snapshot [--out FILE] [--n N] [--k K] [--cap UPDATES] \
                 [--window W] [--probe-n N] [--retain E] [--min-speedup X] \
                 [--max-overhead PCT] [--compare FILE] [--tolerance PCT]"
            );
            ExitCode::FAILURE
        }
    }
}

const FLAGS: &[&str] = &[
    "--out",
    "--n",
    "--k",
    "--cap",
    "--window",
    "--probe-n",
    "--retain",
    "--min-speedup",
    "--max-overhead",
    "--compare",
    "--tolerance",
];

/// Rejects anything that is not a known `--flag value` pair, so a typo'd
/// or `--flag=value`-style argument fails loudly instead of silently
/// running (and gating) the default workload.
fn validate_args(args: &[String]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        if !FLAGS.contains(&args[i].as_str()) {
            return Err(format!("unknown argument {}", args[i]));
        }
        if i + 1 >= args.len() {
            return Err(format!("flag {} expects a value", args[i]));
        }
        i += 2;
    }
    Ok(())
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(pos) => args
            .get(pos + 1)
            .ok_or_else(|| format!("flag {name} expects a value"))?
            .parse()
            .map_err(|_| format!("flag {name} has an invalid value")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    validate_args(args)?;
    let out: String = flag(args, "--out", "BENCH_PR10.json".to_string())?;
    let n: usize = flag(args, "--n", 2048usize)?;
    let k: usize = flag(args, "--k", 15usize)?;
    let base_cap: usize = flag(args, "--cap", 20usize)?;
    let base_window: usize = flag(args, "--window", 256usize)?;
    // The probe case holds no n x n matrix, so its default size is an
    // order of magnitude past the dense cases: 12_500 -> 50_000 nodes at
    // full scale (scaled like every other cap on smoke runs).
    let base_probe_n: usize = flag(args, "--probe-n", 12_500usize)?;
    // Ring capacity for the temporal epoch-store case; never scaled
    // (the ring must fill and evict for the gates to mean anything).
    let retain: usize = flag(args, "--retain", 8usize)?;
    // Timing gates for the full-size run; 0.0 (the defaults) only warn —
    // small smoke runs are too noisy to fail on wall-clock.
    let min_speedup: f64 = flag(args, "--min-speedup", 0.0f64)?;
    let max_overhead: f64 = flag(args, "--max-overhead", 0.0f64)?;
    let compare_path: String = flag(args, "--compare", String::new())?;
    let tolerance_pct: f64 = flag(args, "--tolerance", 200.0f64)?;
    let cap = scaled_cap(base_cap);

    println!(
        "== bench-snapshot: n = {n}, K = {k}, {cap} unit updates per mode (scale {}) ==",
        bench_scale()
    );
    let modes = measure_apply_modes(n, k, cap);
    let per = |secs: f64| fmt_duration(Duration::from_secs_f64(secs));
    println!(
        "   eager       : {}/update",
        per(modes.eager_per_update_secs)
    );
    println!(
        "   fused       : {}/update  ({:.1}x vs eager)",
        per(modes.fused_per_update_secs),
        modes.fused_speedup
    );
    println!(
        "   fused batch : {}/update",
        per(modes.fused_batch_per_update_secs)
    );
    println!(
        "   lazy        : {}/update, {}/pair-query, {} pairs pending",
        per(modes.lazy_per_update_secs),
        per(modes.lazy_query_secs),
        modes.lazy_pending_pairs
    );
    println!(
        "   exactness   : fused {:.2e}, lazy {:.2e} (max |Δ| vs eager)",
        modes.max_abs_diff_fused_vs_eager, modes.max_abs_diff_lazy_vs_eager
    );

    let micro = measure_micro_kernels(600, k + 1, 3.max(cap / 4));
    println!(
        "   micro (n=600, {} pairs): eager sweeps {}, fused {} (serial), {} (parallel)",
        micro.pairs,
        per(micro.eager_sweeps_secs),
        per(micro.fused_apply_secs),
        per(micro.fused_apply_parallel_secs)
    );

    let service = measure_service_overhead(n, k, cap);
    println!(
        "   service     : attributable overhead {:.3}% per step ({} updates x {} queries; \
         envelope {}/update, query {} direct vs {} via api; wall-clock A/B {} vs {})",
        service.overhead_pct,
        service.updates,
        service.queries_per_update,
        per(service.update_envelope_secs),
        per(service.direct_query_secs),
        per(service.service_query_secs),
        per(service.direct_secs),
        per(service.service_secs),
    );

    // Concurrent sharded serving: qps at 1/2/4 reader threads with a
    // saturated writer, plus sharded-path exactness. Dimension n/2 keeps
    // the extra batch precompute a fraction of the apply-modes one.
    let duration = (2.0 * bench_scale()).max(0.04);
    let concurrent = measure_concurrent_throughput(n / 2, k, 4, duration);
    println!(
        "   concurrent  : {:.2e} q/s @1t, {:.2e} @2t, {:.2e} @4t ({:.2}x 4t vs 1t; \
         writer {:.0} upd/s, {} epochs)",
        concurrent.qps_1t,
        concurrent.qps_2t,
        concurrent.qps_4t,
        concurrent.speedup_4_vs_1,
        concurrent.writer_updates_per_sec,
        concurrent.epochs_published,
    );
    println!(
        "   sharded     : fused {:.2e}, lazy {:.2e} (max |Δ| vs eager through epochs)",
        concurrent.max_abs_diff_sharded_fused_vs_eager,
        concurrent.max_abs_diff_sharded_lazy_vs_eager
    );

    // Long lazy window: recompression holds query cost at O(numerical
    // rank) and the buffer memory at a plateau. Dimension n/8 keeps the
    // case's batch precompute and its recompression passes (which hit
    // the rank ≤ n cap on a long window) marginal next to the
    // apply-modes workload; the window length rides the measurement
    // scale like every other cap.
    let window = scaled_cap(base_window);
    let long_lazy = measure_long_lazy_window(n / 8, k, window);
    println!(
        "   long lazy   : {} updates -> {} pairs raw vs {} compressed ({} recompressions); \
         query {} vs {} ({:.1}x)",
        long_lazy.window,
        long_lazy.uncompressed_pairs,
        long_lazy.compressed_pairs,
        long_lazy.recompressions,
        per(long_lazy.uncompressed_query_secs),
        per(long_lazy.compressed_query_secs),
        long_lazy.long_lazy_query_speedup,
    );
    println!(
        "   lazy memory : raw {} at window end vs compressed peak {} / end {}; \
         drift {:.2e}",
        incsim_metrics::timing::fmt_bytes(long_lazy.uncompressed_heap_bytes),
        incsim_metrics::timing::fmt_bytes(long_lazy.compressed_heap_peak_bytes),
        incsim_metrics::timing::fmt_bytes(long_lazy.compressed_heap_end_bytes),
        long_lazy.max_abs_diff_compressed_vs_uncompressed,
    );

    // Matrix-free probe serving at sizes no dense engine could touch.
    // The sub-quadratic heap gate is asserted inside the measurement.
    let probe_n = scaled_cap(base_probe_n).max(64);
    let probe = measure_probe_single_source(probe_n, k);
    println!(
        "   probe       : single-source {} @ n={} vs {} @ n={} ({} walks); \
         peak heap {} -> {} (x{:.1} for 4x nodes; dense matrix would need {})",
        per(probe.query_secs_small),
        probe.n_small,
        per(probe.query_secs_large),
        probe.n_large,
        probe.walks,
        incsim_metrics::timing::fmt_bytes(probe.heap_peak_bytes_small),
        incsim_metrics::timing::fmt_bytes(probe.heap_peak_bytes_large),
        probe.heap_growth,
        incsim_metrics::timing::fmt_bytes(probe.dense_bytes_large),
    );

    // Durability tax: the WAL append cost on the serving write path,
    // paired against an identical log-free router. Contract: < 5% of the
    // per-update cost at full scale.
    let wal = measure_wal_overhead(n, k, cap);
    println!(
        "   wal         : {} plain vs {} durable per update; append envelope {} \
         ({:.3}% tax, {:.0} log bytes/op)",
        per(wal.plain_per_update_secs),
        per(wal.durable_per_update_secs),
        per(wal.wal_append_envelope_secs),
        wal.wal_overhead_pct,
        wal.wal_bytes_per_op,
    );

    // Temporal epoch ring: time-travel reads against the last `retain`
    // published epochs. The exactness gate (oldest-epoch trajectory to
    // 1e-12) and the sub-quadratic retained-heap gate (8x under dense at
    // n >= 1024) are asserted inside the measurement.
    let epoch = measure_epoch_ring(n, k, retain.max(2), cap.max(retain));
    println!(
        "   epoch ring  : {} epochs x {} ops, publish {} each; oldest pair_at {} \
         (head read {}); retained {} vs dense {} ({:.0}x compressed, drift {:.1e})",
        epoch.publishes,
        epoch.ops_per_epoch,
        per(epoch.publish_secs),
        per(epoch.reconstruct_pair_secs),
        per(epoch.head_pair_secs),
        incsim_metrics::timing::fmt_bytes(epoch.retained_heap_bytes),
        incsim_metrics::timing::fmt_bytes(epoch.dense_equivalent_bytes),
        epoch.retained_ratio,
        epoch.oldest_epoch_drift,
    );

    // Persistent epoch ring: the v2 checkpoint round's on-disk growth
    // over a head-only image and the ring's share of a crash recovery.
    // The < 2x growth contract (n >= 1024) and the restored-trajectory
    // exactness gate are asserted inside the measurement.
    let recovery = measure_epoch_recovery(n, k, retain.max(2), cap.max(retain));
    println!(
        "   epoch recov : v2 round {} = head {} + ring {} ({:.2}x growth); \
         reopen {} head-only vs {} retained (+{} rehydrate, {} epochs restored, \
         drift {:.1e})",
        incsim_metrics::timing::fmt_bytes(recovery.checkpoint_bytes),
        incsim_metrics::timing::fmt_bytes(recovery.head_image_bytes),
        incsim_metrics::timing::fmt_bytes(recovery.ring_round_bytes),
        recovery.checkpoint_growth,
        per(recovery.head_recover_secs),
        per(recovery.ring_recover_secs),
        per(recovery.ring_rehydrate_secs),
        recovery.restored_epochs,
        recovery.recovered_drift,
    );

    std::fs::write(
        &out,
        snapshot_json(&SnapshotCases {
            modes: &modes,
            micro: &micro,
            service: &service,
            concurrent: &concurrent,
            long_lazy: &long_lazy,
            probe: &probe,
            wal: &wal,
            epoch: &epoch,
            recovery: &recovery,
        }),
    )
    .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("[ok] snapshot written to {out}");

    // Exactness is noise-free at any scale: a nonzero drift means the
    // deferred apply path is wrong, so the gate fails hard — including
    // through the sharded serving path.
    let drift = modes
        .max_abs_diff_fused_vs_eager
        .max(modes.max_abs_diff_lazy_vs_eager);
    if drift > 1e-9 {
        return Err(format!(
            "deferred apply modes drifted {drift:.2e} from eager (tolerance 1e-9)"
        ));
    }
    let sharded_drift = concurrent
        .max_abs_diff_sharded_fused_vs_eager
        .max(concurrent.max_abs_diff_sharded_lazy_vs_eager);
    if sharded_drift > 1e-12 {
        return Err(format!(
            "sharded serving path drifted {sharded_drift:.2e} from eager (tolerance 1e-12)"
        ));
    }
    // The compressed window answers from the same factor representation
    // as the uncompressed one; drift beyond the default tolerance means
    // the recompression maths is wrong, so this gate fails hard at any
    // scale (like the other exactness gates).
    if long_lazy.max_abs_diff_compressed_vs_uncompressed > 1e-12 {
        return Err(format!(
            "recompressed lazy window drifted {:.2e} from the uncompressed one (tolerance 1e-12)",
            long_lazy.max_abs_diff_compressed_vs_uncompressed
        ));
    }
    // The plateau gate is only meaningful when the window was long
    // enough for at least one recompression; a tiny scaled window runs
    // both sides identically (peak == uncompressed) and must not fail.
    if long_lazy.recompressions == 0 {
        println!(
            "[warn] long-lazy window of {} updates never reached the compress threshold {}; \
             plateau gate skipped",
            long_lazy.window, long_lazy.compress_rank
        );
    } else if long_lazy.compressed_heap_peak_bytes >= long_lazy.uncompressed_heap_bytes {
        return Err(format!(
            "recompression failed to bound the buffer: peak {} vs uncompressed {}",
            long_lazy.compressed_heap_peak_bytes, long_lazy.uncompressed_heap_bytes
        ));
    }
    if bench_scale() >= 1.0 && long_lazy.long_lazy_query_speedup < 2.0 {
        println!(
            "[warn] long-lazy-window query speedup {:.2}x is below the 2x budget",
            long_lazy.long_lazy_query_speedup
        );
    }
    if bench_scale() >= 1.0 && concurrent.speedup_4_vs_1 < 2.0 {
        println!(
            "[warn] concurrent 4-thread speedup {:.2}x is below the 2x serving budget",
            concurrent.speedup_4_vs_1
        );
    }
    if modes.fused_speedup < min_speedup {
        return Err(format!(
            "fused speedup {:.2}x is below the required {min_speedup:.2}x",
            modes.fused_speedup
        ));
    }
    if min_speedup == 0.0 && modes.fused_speedup < 2.0 {
        println!(
            "[warn] fused speedup {:.2}x is below the 2x budget for this workload",
            modes.fused_speedup
        );
    }
    if max_overhead > 0.0 && service.overhead_pct > max_overhead {
        return Err(format!(
            "service-layer overhead {:.2}% exceeds the required < {max_overhead:.2}%",
            service.overhead_pct
        ));
    }
    if max_overhead == 0.0 && service.overhead_pct > 2.0 {
        println!(
            "[warn] service-layer overhead {:.2}% is above the 2% budget for this workload",
            service.overhead_pct
        );
    }
    if bench_scale() >= 1.0 && wal.wal_overhead_pct > 5.0 {
        return Err(format!(
            "write-ahead log overhead {:.2}% exceeds the < 5% durability budget",
            wal.wal_overhead_pct
        ));
    }
    if wal.wal_overhead_pct > 5.0 {
        println!(
            "[warn] write-ahead log overhead {:.2}% is above the 5% budget (smoke scale)",
            wal.wal_overhead_pct
        );
    }

    // Cross-PR regression gate against a committed snapshot.
    if !compare_path.is_empty() {
        let committed_json = std::fs::read_to_string(&compare_path)
            .map_err(|e| format!("cannot read committed snapshot {compare_path}: {e}"))?;
        let committed = parse_metrics(&committed_json);
        // The current side never needs parsing — read the structs.
        let current = SnapshotMetrics {
            fused_speedup: Some(modes.fused_speedup),
            lazy_query_secs: Some(modes.lazy_query_secs),
            overhead_pct: Some(service.overhead_pct),
            long_lazy_query_speedup: Some(long_lazy.long_lazy_query_speedup),
            compressed_query_secs: Some(long_lazy.compressed_query_secs),
            probe_query_secs: Some(probe.query_secs_large),
            probe_heap_growth: Some(probe.heap_growth),
            wal_overhead_pct: Some(wal.wal_overhead_pct),
            epoch_retained_ratio: Some(epoch.retained_ratio),
            epoch_reconstruct_secs: Some(epoch.reconstruct_pair_secs),
            checkpoint_growth: Some(recovery.checkpoint_growth),
            ring_rehydrate_secs: Some(recovery.ring_rehydrate_secs),
        };
        let regressions = compare(&current, &committed, tolerance_pct);
        if regressions.is_empty() {
            println!(
                "[ok] no kernel-timing regression vs {compare_path} \
                 (tolerance {tolerance_pct:.0}%)"
            );
        } else {
            for r in &regressions {
                eprintln!("[regression] {r}");
            }
            return Err(format!(
                "{} kernel metric(s) regressed beyond {tolerance_pct:.0}% vs {compare_path}",
                regressions.len()
            ));
        }
    }
    Ok(())
}

//! `bench-snapshot` — records the PR's hot-path perf numbers as JSON.
//!
//! ```text
//! bench-snapshot [--out BENCH_PR3.json] [--n 2048] [--k 15] [--cap 20]
//! ```
//!
//! Runs the fig2a-style unit-update workload under the eager / fused /
//! lazy apply modes, the isolated micro-kernels, and the `service_overhead`
//! case (the `incsim::api` dyn handle vs direct engine calls on an
//! update+query serving workload), and writes a machine-readable snapshot
//! (see `incsim_bench::snapshot`). Measurement caps honour
//! `INCSIM_BENCH_SCALE`; unlike the full experiment suite the snapshot
//! defaults to a quick `0.2` pass when the variable is unset.

use incsim_bench::snapshot::{
    measure_apply_modes, measure_micro_kernels, measure_service_overhead, snapshot_json,
};
use incsim_bench::{bench_scale, scaled_cap};
use incsim_metrics::timing::fmt_duration;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    if std::env::var("INCSIM_BENCH_SCALE").is_err() {
        std::env::set_var("INCSIM_BENCH_SCALE", "0.2");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench-snapshot [--out FILE] [--n N] [--k K] [--cap UPDATES] \
                 [--min-speedup X] [--max-overhead PCT]"
            );
            ExitCode::FAILURE
        }
    }
}

const FLAGS: &[&str] = &[
    "--out",
    "--n",
    "--k",
    "--cap",
    "--min-speedup",
    "--max-overhead",
];

/// Rejects anything that is not a known `--flag value` pair, so a typo'd
/// or `--flag=value`-style argument fails loudly instead of silently
/// running (and gating) the default workload.
fn validate_args(args: &[String]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        if !FLAGS.contains(&args[i].as_str()) {
            return Err(format!("unknown argument {}", args[i]));
        }
        if i + 1 >= args.len() {
            return Err(format!("flag {} expects a value", args[i]));
        }
        i += 2;
    }
    Ok(())
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(pos) => args
            .get(pos + 1)
            .ok_or_else(|| format!("flag {name} expects a value"))?
            .parse()
            .map_err(|_| format!("flag {name} has an invalid value")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    validate_args(args)?;
    let out: String = flag(args, "--out", "BENCH_PR3.json".to_string())?;
    let n: usize = flag(args, "--n", 2048usize)?;
    let k: usize = flag(args, "--k", 15usize)?;
    let base_cap: usize = flag(args, "--cap", 20usize)?;
    // Timing gates for the full-size run; 0.0 (the defaults) only warn —
    // small smoke runs are too noisy to fail on wall-clock.
    let min_speedup: f64 = flag(args, "--min-speedup", 0.0f64)?;
    let max_overhead: f64 = flag(args, "--max-overhead", 0.0f64)?;
    let cap = scaled_cap(base_cap);

    println!(
        "== bench-snapshot: n = {n}, K = {k}, {cap} unit updates per mode (scale {}) ==",
        bench_scale()
    );
    let modes = measure_apply_modes(n, k, cap);
    let per = |secs: f64| fmt_duration(Duration::from_secs_f64(secs));
    println!(
        "   eager       : {}/update",
        per(modes.eager_per_update_secs)
    );
    println!(
        "   fused       : {}/update  ({:.1}x vs eager)",
        per(modes.fused_per_update_secs),
        modes.fused_speedup
    );
    println!(
        "   fused batch : {}/update",
        per(modes.fused_batch_per_update_secs)
    );
    println!(
        "   lazy        : {}/update, {}/pair-query, {} pairs pending",
        per(modes.lazy_per_update_secs),
        per(modes.lazy_query_secs),
        modes.lazy_pending_pairs
    );
    println!(
        "   exactness   : fused {:.2e}, lazy {:.2e} (max |Δ| vs eager)",
        modes.max_abs_diff_fused_vs_eager, modes.max_abs_diff_lazy_vs_eager
    );

    let micro = measure_micro_kernels(600, k + 1, 3.max(cap / 4));
    println!(
        "   micro (n=600, {} pairs): eager sweeps {}, fused {} (serial), {} (parallel)",
        micro.pairs,
        per(micro.eager_sweeps_secs),
        per(micro.fused_apply_secs),
        per(micro.fused_apply_parallel_secs)
    );

    let service = measure_service_overhead(n, k, cap);
    println!(
        "   service     : attributable overhead {:.3}% per step ({} updates x {} queries; \
         envelope {}/update, query {} direct vs {} via api; wall-clock A/B {} vs {})",
        service.overhead_pct,
        service.updates,
        service.queries_per_update,
        per(service.update_envelope_secs),
        per(service.direct_query_secs),
        per(service.service_query_secs),
        per(service.direct_secs),
        per(service.service_secs),
    );

    std::fs::write(&out, snapshot_json(&modes, &micro, &service))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("[ok] snapshot written to {out}");

    // Exactness is noise-free at any scale: a nonzero drift means the
    // deferred apply path is wrong, so the gate fails hard.
    let drift = modes
        .max_abs_diff_fused_vs_eager
        .max(modes.max_abs_diff_lazy_vs_eager);
    if drift > 1e-9 {
        return Err(format!(
            "deferred apply modes drifted {drift:.2e} from eager (tolerance 1e-9)"
        ));
    }
    if modes.fused_speedup < min_speedup {
        return Err(format!(
            "fused speedup {:.2}x is below the required {min_speedup:.2}x",
            modes.fused_speedup
        ));
    }
    if min_speedup == 0.0 && modes.fused_speedup < 2.0 {
        println!(
            "[warn] fused speedup {:.2}x is below the 2x budget for this workload",
            modes.fused_speedup
        );
    }
    if max_overhead > 0.0 && service.overhead_pct > max_overhead {
        return Err(format!(
            "service-layer overhead {:.2}% exceeds the required < {max_overhead:.2}%",
            service.overhead_pct
        ));
    }
    if max_overhead == 0.0 && service.overhead_pct > 2.0 {
        println!(
            "[warn] service-layer overhead {:.2}% is above the 2% budget for this workload",
            service.overhead_pct
        );
    }
    Ok(())
}

//! Cross-PR perf-regression gate: compare a freshly measured snapshot
//! against a committed `BENCH_PR<N>.json` and fail on timing drift.
//!
//! The committed snapshots are full-scale runs on the bench host; CI
//! re-measures at smoke scale on whatever runner it gets. Absolute
//! wall-clock therefore cannot be compared — what *can* is the set of
//! scale-robust kernel metrics:
//!
//! * `fused_speedup` — eager/fused ratio, dimensionless;
//! * `lazy_query_secs` — a single `O(r)` pair read, microsecond scale,
//!   essentially size-independent at smoke workloads (smaller runs carry
//!   a smaller pending `r`, so smoke can only look *faster*);
//! * `overhead_pct` — the service layer's attributable per-step cost, a
//!   percentage;
//! * `long_lazy_query_speedup` — uncompressed/compressed lazy pair-read
//!   ratio at the end of a long window, dimensionless;
//! * `compressed_query_secs` — a single pair read against the
//!   recompressed buffer, microsecond scale;
//! * `query_secs_large` — one matrix-free probe single-source query at
//!   the large point (walk count is fixed, so smoke runs only shrink
//!   the per-walk graph work);
//! * `probe_heap_growth` — probe peak-heap ratio across a 4× node-count
//!   step, dimensionless (≈4 linear, 16 quadratic);
//! * `epoch_retained_ratio` — dense-equivalent bytes over the epoch
//!   ring's factor-compressed footprint, dimensionless (grows with `n`
//!   under the O(n·r) law, collapses to ≈1 if retention goes dense);
//! * `epoch_reconstruct_secs` — one `pair_at` on the oldest retained
//!   epoch, microsecond-to-millisecond scale (smoke runs carry shorter
//!   delta chains, so they can only look faster);
//! * `checkpoint_growth` — the v2 checkpoint round (head image + epoch
//!   ring) over the head-only image, dimensionless (the durability
//!   contract is < 2× at full scale; ≈1 when the ring stays factored);
//! * `ring_rehydrate_secs` — what rehydrating the persisted epoch ring
//!   adds to a crash recovery over a head-only reopen of the same log.
//!   The value is a *difference* of two whole-reopen timings, so its
//!   noise band is hundreds of milliseconds (and it can legitimately
//!   measure ~0 when the two reopens land within noise of each other) —
//!   hence a floor far above the other latency metrics.
//!
//! Each metric fails only on **regression** (improvement always passes),
//! only beyond the configured tolerance factor, and only past a
//! per-metric noise floor (so a 0.01 %-vs-0.03 % overhead wiggle on a
//! shared CI box cannot fail a push, while a genuine 10× slowdown
//! always does). Parsing is a minimal key scanner — the workspace is
//! offline, so no serde.

/// The comparable metrics extracted from a snapshot JSON (any schema
/// version: keys are matched by name, missing keys are skipped).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotMetrics {
    /// `apply_modes.fused_speedup` (higher is better).
    pub fused_speedup: Option<f64>,
    /// `apply_modes.lazy_query_secs` (lower is better).
    pub lazy_query_secs: Option<f64>,
    /// `service_overhead.overhead_pct` (lower is better).
    pub overhead_pct: Option<f64>,
    /// `long_lazy_window.long_lazy_query_speedup` (higher is better).
    pub long_lazy_query_speedup: Option<f64>,
    /// `long_lazy_window.compressed_query_secs` (lower is better).
    pub compressed_query_secs: Option<f64>,
    /// `probe_single_source.query_secs_large` (lower is better).
    pub probe_query_secs: Option<f64>,
    /// `probe_single_source.probe_heap_growth` (lower is better; the
    /// sub-quadratic law says ≈4 for a 4× node step, 16 is quadratic).
    pub probe_heap_growth: Option<f64>,
    /// `wal_overhead.wal_overhead_pct` (lower is better; the durability
    /// tax of logging every op on the serving write path).
    pub wal_overhead_pct: Option<f64>,
    /// `epoch_ring.retained_ratio` (higher is better; dense-equivalent
    /// bytes over the ring's factor-compressed footprint — the O(n·r)
    /// law says it grows with `n`, quadratic storage pins it near 1).
    pub epoch_retained_ratio: Option<f64>,
    /// `epoch_ring.reconstruct_pair_secs` (lower is better; one pair
    /// read on the oldest retained epoch, stacking the full delta
    /// chain).
    pub epoch_reconstruct_secs: Option<f64>,
    /// `epoch_recovery.checkpoint_growth` (lower is better; the v2
    /// round's bytes over the head-only image — the durability contract
    /// is < 2× at full scale, and a ring gone dense blows well past it).
    pub checkpoint_growth: Option<f64>,
    /// `epoch_recovery.ring_rehydrate_secs` (lower is better; the epoch
    /// ring's attributable share of a crash recovery, over the head-only
    /// reopen baseline).
    pub ring_rehydrate_secs: Option<f64>,
}

/// Extracts the first `"key": <number>` occurrence from a JSON text.
/// Good enough for the snapshot files this crate itself writes (flat
/// objects, unique key names, numbers in plain or scientific notation).
fn scan_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the comparable metrics out of a snapshot JSON.
pub fn parse_metrics(json: &str) -> SnapshotMetrics {
    SnapshotMetrics {
        fused_speedup: scan_number(json, "fused_speedup"),
        lazy_query_secs: scan_number(json, "lazy_query_secs"),
        overhead_pct: scan_number(json, "overhead_pct"),
        long_lazy_query_speedup: scan_number(json, "long_lazy_query_speedup"),
        compressed_query_secs: scan_number(json, "compressed_query_secs"),
        probe_query_secs: scan_number(json, "query_secs_large"),
        probe_heap_growth: scan_number(json, "probe_heap_growth"),
        wal_overhead_pct: scan_number(json, "wal_overhead_pct"),
        epoch_retained_ratio: scan_number(json, "retained_ratio"),
        epoch_reconstruct_secs: scan_number(json, "reconstruct_pair_secs"),
        checkpoint_growth: scan_number(json, "checkpoint_growth"),
        ring_rehydrate_secs: scan_number(json, "ring_rehydrate_secs"),
    }
}

/// One detected regression: `current` is worse than `committed` by
/// `factor` (always ≥ 1; the worse-direction ratio).
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Which metric drifted.
    pub metric: &'static str,
    /// The committed (baseline) value.
    pub committed: f64,
    /// The freshly measured value.
    pub current: f64,
    /// How many times worse the current value is.
    pub factor: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.4e} vs committed {:.4e} ({:.1}x worse)",
            self.metric, self.current, self.committed, self.factor
        )
    }
}

/// Noise floors: a metric must be past its floor *and* past the
/// tolerance factor to count as a regression. Values chosen from the
/// observed cross-run spread of the committed snapshots.
const SPEEDUP_FLOOR: f64 = 1.5; // a fused speedup still ≥ 1.5x is healthy
const LAZY_QUERY_FLOOR_SECS: f64 = 2e-6; // sub-2µs pair reads are in-noise
const OVERHEAD_FLOOR_PCT: f64 = 1.0; // the service contract is < 2%
const LONG_LAZY_SPEEDUP_FLOOR: f64 = 2.0; // the acceptance bar at full scale
const PROBE_QUERY_FLOOR_SECS: f64 = 2e-3; // sub-2ms single-source reads are in-noise
const PROBE_HEAP_GROWTH_FLOOR: f64 = 6.0; // < 6x for 4x nodes is comfortably sub-quadratic
const WAL_OVERHEAD_FLOOR_PCT: f64 = 5.0; // the durability contract is < 5% at full scale
const EPOCH_RATIO_FLOOR: f64 = 8.0; // >= 8x under dense is the sub-quadratic bar at n = 2048
const EPOCH_RECONSTRUCT_FLOOR_SECS: f64 = 2e-3; // sub-2ms time-travel reads are in-noise
const CHECKPOINT_GROWTH_FLOOR: f64 = 1.9; // the durability contract is < 2x at full scale
const RING_REHYDRATE_FLOOR_SECS: f64 = 5e-1; // a reopen-minus-reopen diff: sub-500ms is in-noise

/// Compares `current` against `committed` with a tolerance given in
/// percent of allowed drift (e.g. `200` ⇒ up to 3× worse passes).
/// Returns every metric that regressed beyond tolerance *and* floor;
/// empty means the gate passes. Metrics absent on either side are
/// skipped (older snapshots predate some cases).
pub fn compare(
    current: &SnapshotMetrics,
    committed: &SnapshotMetrics,
    tolerance_pct: f64,
) -> Vec<Regression> {
    let factor_allowed = 1.0 + (tolerance_pct.max(0.0) / 100.0);
    let mut out = Vec::new();

    // Higher is better: regression when current falls below
    // committed / allowed — unless it is still above the healthy floor.
    let mut higher_better =
        |metric: &'static str, cur: Option<f64>, com: Option<f64>, floor: f64| {
            if let (Some(cur), Some(com)) = (cur, com) {
                let factor = com / cur.max(1e-12);
                if factor > factor_allowed && cur < floor {
                    out.push(Regression {
                        metric,
                        committed: com,
                        current: cur,
                        factor,
                    });
                }
            }
        };
    higher_better(
        "fused_speedup",
        current.fused_speedup,
        committed.fused_speedup,
        SPEEDUP_FLOOR,
    );
    higher_better(
        "long_lazy_query_speedup",
        current.long_lazy_query_speedup,
        committed.long_lazy_query_speedup,
        LONG_LAZY_SPEEDUP_FLOOR,
    );
    higher_better(
        "epoch_retained_ratio",
        current.epoch_retained_ratio,
        committed.epoch_retained_ratio,
        EPOCH_RATIO_FLOOR,
    );
    // Lower is better for the timing metrics.
    let mut lower_better =
        |metric: &'static str, cur: Option<f64>, com: Option<f64>, floor: f64| {
            if let (Some(cur), Some(com)) = (cur, com) {
                let factor = cur / com.max(1e-12);
                if factor > factor_allowed && cur > floor {
                    out.push(Regression {
                        metric,
                        committed: com,
                        current: cur,
                        factor,
                    });
                }
            }
        };
    lower_better(
        "lazy_query_secs",
        current.lazy_query_secs,
        committed.lazy_query_secs,
        LAZY_QUERY_FLOOR_SECS,
    );
    lower_better(
        "overhead_pct",
        current.overhead_pct,
        committed.overhead_pct,
        OVERHEAD_FLOOR_PCT,
    );
    lower_better(
        "compressed_query_secs",
        current.compressed_query_secs,
        committed.compressed_query_secs,
        LAZY_QUERY_FLOOR_SECS,
    );
    lower_better(
        "probe_query_secs",
        current.probe_query_secs,
        committed.probe_query_secs,
        PROBE_QUERY_FLOOR_SECS,
    );
    lower_better(
        "probe_heap_growth",
        current.probe_heap_growth,
        committed.probe_heap_growth,
        PROBE_HEAP_GROWTH_FLOOR,
    );
    lower_better(
        "wal_overhead_pct",
        current.wal_overhead_pct,
        committed.wal_overhead_pct,
        WAL_OVERHEAD_FLOOR_PCT,
    );
    lower_better(
        "epoch_reconstruct_secs",
        current.epoch_reconstruct_secs,
        committed.epoch_reconstruct_secs,
        EPOCH_RECONSTRUCT_FLOOR_SECS,
    );
    lower_better(
        "checkpoint_growth",
        current.checkpoint_growth,
        committed.checkpoint_growth,
        CHECKPOINT_GROWTH_FLOOR,
    );
    lower_better(
        "ring_rehydrate_secs",
        current.ring_rehydrate_secs,
        committed.ring_rehydrate_secs,
        RING_REHYDRATE_FLOOR_SECS,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(speedup: f64, lazy: f64, overhead: f64) -> SnapshotMetrics {
        SnapshotMetrics {
            fused_speedup: Some(speedup),
            lazy_query_secs: Some(lazy),
            overhead_pct: Some(overhead),
            ..Default::default()
        }
    }

    #[test]
    fn parses_snapshot_keys_in_plain_and_scientific_notation() {
        let json = r#"{
  "apply_modes": { "fused_speedup": 2.751, "lazy_query_secs": 4.254302e-6 },
  "service_overhead": { "overhead_pct": 0.0102 }
}"#;
        let m = parse_metrics(json);
        assert_eq!(m.fused_speedup, Some(2.751));
        assert!((m.lazy_query_secs.unwrap() - 4.254302e-6).abs() < 1e-12);
        assert_eq!(m.overhead_pct, Some(0.0102));
        // Missing keys are None, not errors.
        assert_eq!(parse_metrics("{}"), SnapshotMetrics::default());
    }

    #[test]
    fn equal_or_better_always_passes() {
        let committed = metrics(2.7, 4e-6, 0.05);
        assert!(compare(&committed, &committed, 200.0).is_empty());
        // Strictly better on every axis.
        let better = metrics(3.5, 1e-6, 0.01);
        assert!(compare(&better, &committed, 200.0).is_empty());
    }

    #[test]
    fn a_10x_slowdown_fails_every_timing_metric() {
        let committed = metrics(2.7, 4e-6, 0.9);
        let slow = metrics(0.27, 4e-5, 9.0);
        let regs = compare(&slow, &committed, 200.0);
        let names: Vec<&str> = regs.iter().map(|r| r.metric).collect();
        assert!(names.contains(&"fused_speedup"), "{names:?}");
        assert!(names.contains(&"lazy_query_secs"), "{names:?}");
        assert!(names.contains(&"overhead_pct"), "{names:?}");
        assert!(regs.iter().all(|r| r.factor > 3.0));
        assert!(regs[0].to_string().contains("worse"));
    }

    #[test]
    fn drift_inside_tolerance_or_under_floor_passes() {
        let committed = metrics(2.7, 4e-6, 0.01);
        // 2x worse with 200% tolerance (3x allowed): passes.
        assert!(compare(&metrics(1.4, 8e-6, 0.02), &committed, 200.0).is_empty());
        // 5x worse overhead but still under the 1% floor: passes (this is
        // exactly the smoke-scale noise band the floor exists for).
        assert!(compare(&metrics(2.7, 4e-6, 0.05), &committed, 200.0).is_empty());
        // Sub-floor lazy query stays in-noise even at large ratios.
        let fast_commit = metrics(2.7, 1e-7, 0.01);
        assert!(compare(&metrics(2.7, 1e-6, 0.01), &fast_commit, 200.0).is_empty());
        // A healthy absolute speedup passes even if the committed one was
        // unusually high.
        let high_commit = metrics(8.0, 4e-6, 0.01);
        assert!(compare(&metrics(2.0, 4e-6, 0.01), &high_commit, 200.0).is_empty());
        // But a genuinely collapsed speedup fails.
        assert_eq!(
            compare(&metrics(0.8, 4e-6, 0.01), &high_commit, 200.0).len(),
            1
        );
    }

    #[test]
    fn long_lazy_metrics_gate_like_their_siblings() {
        let committed = SnapshotMetrics {
            long_lazy_query_speedup: Some(16.0),
            compressed_query_secs: Some(4e-6),
            ..Default::default()
        };
        // Healthy current values pass even when far off the committed run.
        let healthy = SnapshotMetrics {
            long_lazy_query_speedup: Some(3.0),
            compressed_query_secs: Some(1e-6), // under the noise floor
            ..Default::default()
        };
        assert!(compare(&healthy, &committed, 200.0).is_empty());
        // A collapsed speedup and a genuinely slow compressed read fail.
        let bad = SnapshotMetrics {
            long_lazy_query_speedup: Some(1.1),
            compressed_query_secs: Some(4e-5),
            ..Default::default()
        };
        let regs = compare(&bad, &committed, 200.0);
        let names: Vec<&str> = regs.iter().map(|r| r.metric).collect();
        assert!(names.contains(&"long_lazy_query_speedup"), "{names:?}");
        assert!(names.contains(&"compressed_query_secs"), "{names:?}");
        // Parsing picks the new keys out of a v4 snapshot body.
        let json = r#"{
  "long_lazy_window": { "long_lazy_query_speedup": 15.2, "compressed_query_secs": 3.1e-6 }
}"#;
        let m = parse_metrics(json);
        assert_eq!(m.long_lazy_query_speedup, Some(15.2));
        assert!((m.compressed_query_secs.unwrap() - 3.1e-6).abs() < 1e-12);
    }

    #[test]
    fn probe_metrics_gate_like_their_siblings() {
        let committed = SnapshotMetrics {
            probe_query_secs: Some(1e-3),
            probe_heap_growth: Some(4.2),
            ..Default::default()
        };
        // In-noise latency and healthy sub-quadratic growth pass even at
        // large ratios off the committed run.
        let healthy = SnapshotMetrics {
            probe_query_secs: Some(1.5e-3), // under the 2ms floor
            probe_heap_growth: Some(5.0),   // under the 6x floor
            ..Default::default()
        };
        assert!(compare(&healthy, &committed, 200.0).is_empty());
        // A genuinely slow query and near-quadratic heap growth fail.
        let bad = SnapshotMetrics {
            probe_query_secs: Some(1e-2),
            probe_heap_growth: Some(14.0),
            ..Default::default()
        };
        let regs = compare(&bad, &committed, 200.0);
        let names: Vec<&str> = regs.iter().map(|r| r.metric).collect();
        assert!(names.contains(&"probe_query_secs"), "{names:?}");
        assert!(names.contains(&"probe_heap_growth"), "{names:?}");
        // Parsing picks the probe keys out of a v5 snapshot body.
        let json = r#"{
  "probe_single_source": { "query_secs_large": 8.4e-4, "probe_heap_growth": 4.31 }
}"#;
        let m = parse_metrics(json);
        assert!((m.probe_query_secs.unwrap() - 8.4e-4).abs() < 1e-12);
        assert_eq!(m.probe_heap_growth, Some(4.31));
    }

    #[test]
    fn wal_overhead_gates_like_its_siblings() {
        let committed = SnapshotMetrics {
            wal_overhead_pct: Some(0.4),
            ..Default::default()
        };
        // Anything under the 5% durability contract passes, whatever the
        // ratio to the committed run (smoke-scale appends are all noise).
        let healthy = SnapshotMetrics {
            wal_overhead_pct: Some(4.0),
            ..Default::default()
        };
        assert!(compare(&healthy, &committed, 200.0).is_empty());
        // Past the floor *and* the tolerance: the append path got slow.
        let bad = SnapshotMetrics {
            wal_overhead_pct: Some(12.0),
            ..Default::default()
        };
        let regs = compare(&bad, &committed, 200.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "wal_overhead_pct");
        // The quoted-key scan keeps `overhead_pct` and `wal_overhead_pct`
        // apart even though one name contains the other.
        let json = r#"{
  "service_overhead": { "overhead_pct": 0.02 },
  "wal_overhead": { "wal_overhead_pct": 0.37 }
}"#;
        let m = parse_metrics(json);
        assert_eq!(m.overhead_pct, Some(0.02));
        assert_eq!(m.wal_overhead_pct, Some(0.37));
    }

    #[test]
    fn epoch_ring_metrics_gate_like_their_siblings() {
        let committed = SnapshotMetrics {
            epoch_retained_ratio: Some(120.0),
            epoch_reconstruct_secs: Some(3e-4),
            ..Default::default()
        };
        // A still-healthy compression factor and an in-noise read pass
        // whatever the ratio to the committed full-scale run.
        let healthy = SnapshotMetrics {
            epoch_retained_ratio: Some(10.0),   // above the 8x floor
            epoch_reconstruct_secs: Some(1e-3), // under the 2ms floor
            ..Default::default()
        };
        assert!(compare(&healthy, &committed, 200.0).is_empty());
        // A ring that went dense and a genuinely slow time-travel read fail.
        let bad = SnapshotMetrics {
            epoch_retained_ratio: Some(1.2),
            epoch_reconstruct_secs: Some(5e-2),
            ..Default::default()
        };
        let regs = compare(&bad, &committed, 200.0);
        let names: Vec<&str> = regs.iter().map(|r| r.metric).collect();
        assert!(names.contains(&"epoch_retained_ratio"), "{names:?}");
        assert!(names.contains(&"epoch_reconstruct_secs"), "{names:?}");
        // Parsing picks the epoch keys out of a v7 snapshot body.
        let json = r#"{
  "epoch_ring": { "reconstruct_pair_secs": 2.7e-4, "retained_ratio": 131.4 }
}"#;
        let m = parse_metrics(json);
        assert_eq!(m.epoch_retained_ratio, Some(131.4));
        assert!((m.epoch_reconstruct_secs.unwrap() - 2.7e-4).abs() < 1e-12);
    }

    #[test]
    fn epoch_recovery_metrics_gate_like_their_siblings() {
        let committed = SnapshotMetrics {
            checkpoint_growth: Some(1.03),
            ring_rehydrate_secs: Some(2e-2),
            ..Default::default()
        };
        // Growth still inside the < 2x durability contract and an
        // in-noise rehydrate pass whatever the ratio to the committed
        // full-scale run.
        let healthy = SnapshotMetrics {
            checkpoint_growth: Some(1.8),    // under the 1.9x floor
            ring_rehydrate_secs: Some(4e-1), // under the 500ms floor
            ..Default::default()
        };
        assert!(compare(&healthy, &committed, 200.0).is_empty());
        // A round whose ring went dense and a genuinely slow rehydrate
        // both fail.
        let bad = SnapshotMetrics {
            checkpoint_growth: Some(4.5),
            ring_rehydrate_secs: Some(2.0),
            ..Default::default()
        };
        let regs = compare(&bad, &committed, 200.0);
        let names: Vec<&str> = regs.iter().map(|r| r.metric).collect();
        assert!(names.contains(&"checkpoint_growth"), "{names:?}");
        assert!(names.contains(&"ring_rehydrate_secs"), "{names:?}");
        // Parsing picks the recovery keys out of a v8 snapshot body.
        let json = r#"{
  "epoch_recovery": { "checkpoint_growth": 1.0412, "ring_rehydrate_secs": 1.8e-2 }
}"#;
        let m = parse_metrics(json);
        assert_eq!(m.checkpoint_growth, Some(1.0412));
        assert!((m.ring_rehydrate_secs.unwrap() - 1.8e-2).abs() < 1e-12);
    }

    #[test]
    fn missing_metrics_are_skipped_not_failed() {
        let committed = SnapshotMetrics {
            fused_speedup: Some(2.7),
            ..Default::default()
        };
        let current = metrics(0.1, 1.0, 99.0);
        let regs = compare(&current, &committed, 200.0);
        assert_eq!(regs.len(), 1, "only the shared metric is judged");
        assert_eq!(regs[0].metric, "fused_speedup");
    }
}

//! A minimal aligned-text table printer for the experiment outputs.

/// An aligned text table (headers + rows), printed in Markdown-ish style so
/// experiment output can be pasted into `EXPERIMENTS.md` directly.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, expected {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<w$} |", cell, w = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        let _ = cols;
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "2.5x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer-name"));
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}

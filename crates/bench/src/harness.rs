//! Shared measurement helpers for the experiment binaries.

use incsim_core::{SimRankMaintainer, UpdateStats};
use incsim_graph::UpdateOp;
use std::time::Instant;

/// Global measurement scale from `INCSIM_BENCH_SCALE` (default 1.0).
///
/// Scales the *number of measured unit updates*, not the datasets, so a
/// quick pass (`0.2`) still exercises the full pipeline.
pub fn bench_scale() -> f64 {
    std::env::var("INCSIM_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Applies the scale to a measurement cap (at least 1).
pub fn scaled_cap(cap: usize) -> usize {
    ((cap as f64 * bench_scale()).round() as usize).max(1)
}

/// Aggregate result of timing an engine over a stream prefix.
#[derive(Debug, Clone)]
pub struct MeasuredUpdates {
    /// Unit updates actually measured.
    pub measured: usize,
    /// Total wall time over the measured updates (seconds).
    pub total_secs: f64,
    /// Mean seconds per unit update.
    pub per_update_secs: f64,
    /// Mean affected pairs per update.
    pub mean_affected_pairs: f64,
    /// Mean `|AFF|` (avg `|A_k|·|B_k|`) per update.
    pub mean_aff: f64,
    /// Mean pruned fraction per update.
    pub mean_pruned_fraction: f64,
    /// Max peak intermediate bytes over the measured updates.
    pub peak_bytes: usize,
}

impl MeasuredUpdates {
    /// Extrapolates total time to a stream of `stream_len` updates.
    pub fn extrapolate_secs(&self, stream_len: usize) -> f64 {
        self.per_update_secs * stream_len as f64
    }
}

/// Times `engine` over the first `cap` ops of `stream` (engine state
/// advances past those ops). Ops that the engine rejects (e.g. duplicate
/// inserts after drift) are skipped without counting.
pub fn measure_per_update(
    engine: &mut dyn SimRankMaintainer,
    stream: &[UpdateOp],
    cap: usize,
) -> MeasuredUpdates {
    let mut stats: Vec<UpdateStats> = Vec::new();
    let start = Instant::now();
    for &op in stream.iter().take(cap) {
        if let Ok(s) = engine.apply(op) {
            stats.push(s);
        }
    }
    let total_secs = start.elapsed().as_secs_f64();
    summarize(&stats, total_secs)
}

fn summarize(stats: &[UpdateStats], total_secs: f64) -> MeasuredUpdates {
    let n = stats.len().max(1) as f64;
    MeasuredUpdates {
        measured: stats.len(),
        total_secs,
        per_update_secs: total_secs / n,
        mean_affected_pairs: stats.iter().map(|s| s.affected_pairs as f64).sum::<f64>() / n,
        mean_aff: stats.iter().map(|s| s.aff_avg).sum::<f64>() / n,
        mean_pruned_fraction: stats.iter().map(|s| s.pruned_fraction).sum::<f64>() / n,
        peak_bytes: stats
            .iter()
            .map(|s| s.peak_intermediate_bytes)
            .max()
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incsim_core::{GraphSink, IncSr, SimRankConfig};
    use incsim_graph::DiGraph;

    #[test]
    fn measures_updates_and_advances_engine() {
        let g = DiGraph::from_edges(10, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cfg = SimRankConfig::new(0.6, 5).unwrap();
        let mut engine = IncSr::from_graph(g, cfg);
        let stream = vec![
            UpdateOp::Insert(4, 5),
            UpdateOp::Insert(5, 6),
            UpdateOp::Delete(0, 1),
        ];
        let m = measure_per_update(&mut engine, &stream, 10);
        assert_eq!(m.measured, 3);
        assert!(m.total_secs >= 0.0);
        assert!(engine.graph().has_edge(4, 5));
        assert!(!engine.graph().has_edge(0, 1));
    }

    #[test]
    fn rejected_ops_are_skipped() {
        let g = DiGraph::from_edges(5, &[(0, 1)]);
        let cfg = SimRankConfig::new(0.6, 3).unwrap();
        let mut engine = IncSr::from_graph(g, cfg);
        let stream = vec![UpdateOp::Insert(0, 1), UpdateOp::Insert(1, 2)];
        let m = measure_per_update(&mut engine, &stream, 10);
        assert_eq!(m.measured, 1);
    }

    #[test]
    fn extrapolation_scales_linearly() {
        let m = MeasuredUpdates {
            measured: 10,
            total_secs: 1.0,
            per_update_secs: 0.1,
            mean_affected_pairs: 0.0,
            mean_aff: 0.0,
            mean_pruned_fraction: 0.0,
            peak_bytes: 0,
        };
        assert!((m.extrapolate_secs(100) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn scale_env_parsing_defaults_to_one() {
        // (Does not set the env var to avoid cross-test interference.)
        assert!(bench_scale() > 0.0);
        assert!(scaled_cap(10) >= 1);
    }
}

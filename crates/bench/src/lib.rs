//! # incsim-bench
//!
//! The experiment harness: one bench target per table/figure of the paper's
//! evaluation (§VI), each printing the same rows/series the paper reports.
//!
//! | target | regenerates | paper artifact |
//! |--------|-------------|----------------|
//! | `exp_fig1_table` | the Fig. 1 table (sim / simtrue / simLi et al.) | Fig. 1 + §IV Examples |
//! | `exp_fig2a_time_real` | time vs `\|E\|+\|ΔE\|` on DBLP/CITH/YOUTU | Fig. 2a |
//! | `exp_fig2b_svd_rank` | % of lossless-SVD rank vs `\|ΔE\|` | Fig. 2b |
//! | `exp_fig2c_time_syn` | time on synthetic insert/delete sweeps | Fig. 2c |
//! | `exp_fig2d_pruning` | Inc-SR vs Inc-uSR time + % pruned pairs | Fig. 2d |
//! | `exp_fig2e_affected_area` | % of `\|AFF\|` vs `\|ΔE\|` | Fig. 2e |
//! | `exp_fig3_memory` | intermediate memory incl. Inc-SVD(r) | Fig. 3 |
//! | `exp_fig4_ndcg` | NDCG₃₀ exactness vs Batch(K=35) | Fig. 4 |
//! | `exp_apply_modes` | eager vs fused vs lazy ΔS application | (extension) |
//! | `micro_kernels` | criterion microbenches of the hot kernels | (supporting) |
//!
//! The `bench-snapshot` binary (see [`snapshot`]) distils the apply-mode
//! workload plus the micro-kernels into a machine-readable
//! `BENCH_PR<N>.json` for cross-PR perf tracking; CI runs it at a small
//! scale as a regression smoke test.
//!
//! Absolute numbers differ from the paper (scaled datasets, different
//! hardware — see `DESIGN.md` §3); the comparisons preserved are *who wins,
//! by roughly what factor, and where the crossovers fall*. `EXPERIMENTS.md`
//! records paper-vs-measured for every artifact.
//!
//! Set `INCSIM_BENCH_SCALE` (e.g. `0.3`) to shrink measurement caps for a
//! quick pass; `1.0` (default) reproduces the full tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod harness;
pub mod snapshot;
pub mod table;

pub use harness::{bench_scale, measure_per_update, scaled_cap, MeasuredUpdates};
pub use table::Table;

//! **Apply-mode comparison** — eager vs fused vs lazy-query on the
//! fig2a-style unit-update workload (extension beyond the paper; supports
//! the `LowRankDelta` deferred-update subsystem).
//!
//! The paper's Algorithm 1 applies `ΔS = Σ_k (ξ_k·η_kᵀ + η_k·ξ_kᵀ)` term by
//! term: `K+1` full sweeps of the `n × n` score matrix per unit update.
//! The deferred modes buffer the factors instead:
//!
//! * **fused** folds them in with one cache-blocked parallel sweep per
//!   mutation call (`≥ 2×` expected on memory-bound sizes),
//! * **fused batch** shares one sweep across the whole stream,
//! * **lazy** never sweeps — single-pair queries read `S_base + Δ` in
//!   `O(r)` factor dot-products.
//!
//! Shapes to verify: fused strictly faster than eager and approaching the
//! cost of the Sylvester iteration alone; lazy per-update ≈ iteration cost
//! with near-free queries; all three exact to ~1e-12 of each other.

use incsim_bench::snapshot::measure_apply_modes;
use incsim_bench::{scaled_cap, Table};
use incsim_metrics::timing::fmt_duration;
use std::time::Duration;

fn main() {
    println!("== Apply modes: eager vs fused vs lazy on unit-update streams ==\n");
    let k = 15;
    let mut table = Table::new(&[
        "n",
        "eager/upd",
        "fused/upd",
        "fused-batch/upd",
        "lazy/upd",
        "lazy query",
        "speedup",
    ]);
    let mut worst_diff = 0.0f64;
    let mut last_speedup = 0.0f64;
    for n in [512usize, 1024, 2048] {
        let cap = scaled_cap(if n >= 2048 { 12 } else { 20 });
        let m = measure_apply_modes(n, k, cap);
        let per = |secs: f64| fmt_duration(Duration::from_secs_f64(secs));
        table.row(vec![
            format!("{n}"),
            per(m.eager_per_update_secs),
            per(m.fused_per_update_secs),
            per(m.fused_batch_per_update_secs),
            per(m.lazy_per_update_secs),
            per(m.lazy_query_secs),
            format!("{:.1}x", m.fused_speedup),
        ]);
        worst_diff = worst_diff
            .max(m.max_abs_diff_fused_vs_eager)
            .max(m.max_abs_diff_lazy_vs_eager);
        last_speedup = m.fused_speedup;
    }
    table.print();
    println!("   worst cross-mode |Δ|: {worst_diff:.2e}");
    assert!(
        worst_diff < 1e-9,
        "apply modes diverged beyond tolerance: {worst_diff:.2e}"
    );
    println!(
        "[ok] apply-mode comparison regenerated (fused {last_speedup:.1}x vs eager at n=2048)."
    );
}

//! **Fig. 2b** — the % of the lossless-SVD rank w.r.t. `|ΔE|` on the DBLP
//! and CITH stand-ins.
//!
//! The paper's point: for real graphs the rank needed for a *lossless* SVD
//! is **not** negligibly smaller than `n` (≈95% on DBLP, ≈80% on CITH), so
//! Inc-SVD — whose cost is quartic in the target rank — cannot be both fast
//! and accurate. Here the numerical rank of `Q̃ = Q + ΔQ` is measured with
//! rank-revealing QR after inserting `|ΔE|` random edges.
//!
//! Graphs are trimmed to their first `N_RANK` arrived nodes: the
//! rank-revealing QR is `O(n³)` dense work and rank *fractions* are
//! n-stable (documented in EXPERIMENTS.md).

use incsim_bench::Table;
use incsim_datagen::updates::random_insertions;
use incsim_datagen::{cith_like, dblp_like};
use incsim_graph::transition::backward_transition;
use incsim_graph::DiGraph;
use incsim_metrics::timing::Stopwatch;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_RANK: usize = 1000;

fn main() {
    println!("== Fig. 2b: % of lossless SVD rank w.r.t. |ΔE| ==");
    println!("   (numerical rank of Q̃ via rank-revealing QR, first {N_RANK} nodes)\n");

    let mut table = Table::new(&["dataset", "|ΔE|/|E|", "rank(Q̃)", "n", "% of n"]);
    let mut fractions = Vec::new();
    for (mut ds, seed) in [(dblp_like(), 11u64), (cith_like(), 13u64)] {
        let name = ds.name;
        let base_full = ds.base_graph();
        let g0 = induced_prefix(&base_full, N_RANK);
        let m0 = g0.edge_count();
        // The paper sweeps |ΔE| = 6K, 12K, 18K on |E| ≈ 93K–421K; scaled to
        // the same |ΔE|/|E| ratios.
        for (ratio_label, ratio) in [("6.4%", 0.064), ("12.8%", 0.128), ("19.2%", 0.192)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = g0.clone();
            let delta = ((m0 as f64 * ratio) as usize).max(1);
            for op in random_insertions(&g0, delta, &mut rng) {
                op.apply(&mut g).expect("stream valid");
            }
            let q = backward_transition(&g).to_dense();
            let sw = Stopwatch::start();
            let rank = incsim_linalg::qr::rank_qrcp(&q, 1e-10);
            let pct = 100.0 * rank as f64 / N_RANK as f64;
            fractions.push(pct);
            table.row(vec![
                name.into(),
                ratio_label.into(),
                rank.to_string(),
                N_RANK.to_string(),
                format!("{pct:.1}%  ({:.1}s QR)", sw.secs()),
            ]);
        }
    }
    table.print();

    let min = fractions.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nminimum lossless-rank fraction observed: {min:.1}% — never negligibly smaller than n,"
    );
    println!(
        "matching the paper's 80–95% observation; Inc-SVD's O(r⁴n²) cannot be cheap and exact."
    );
    assert!(min > 40.0, "rank fraction unexpectedly small: {min}%");
    println!("\n[ok] Fig. 2b series regenerated.");
}

/// The induced subgraph on nodes `0..k` (linkage-model graphs arrive in id
/// order, so this is the "first k arrivals" prefix).
fn induced_prefix(g: &DiGraph, k: usize) -> DiGraph {
    let mut out = DiGraph::new(k);
    for (u, v) in g.edges() {
        if (u as usize) < k && (v as usize) < k {
            out.insert_edge(u, v).expect("edges are unique");
        }
    }
    out
}

//! **Fig. 3** — intermediate memory space of the incremental engines.
//!
//! "Intermediate space" follows the paper's definition: the state an engine
//! memoises while processing one link update, excluding the final write of
//! the n² similarity outputs. Paper shapes to verify:
//!
//! * Inc-SR and Inc-uSR sit **orders of magnitude** below Inc-SVD (the
//!   rank-one trick needs only vectors; Inc-SVD memoises factor matrices
//!   and tensor products);
//! * Inc-SR is several times below Inc-uSR (it memoises only the affected
//!   parts of w/ξ/η);
//! * Inc-SVD grows steeply with the target rank r (r⁴ system) and is
//!   infeasible at the paper's full scale on the largest dataset.

use incsim_baselines::{IncSvd, IncSvdOptions};
use incsim_bench::{measure_per_update, scaled_cap, Table};
use incsim_core::{batch_simrank, IncSr, IncUSr, SimRankConfig};
use incsim_datagen::{cith_like, dblp_like, youtu_like, Dataset};
use incsim_metrics::timing::fmt_bytes;

fn main() {
    println!("== Fig. 3: intermediate memory space per link update ==\n");
    let mut table = Table::new(&[
        "dataset",
        "Inc-SR",
        "Inc-uSR",
        "Inc-SVD (r=5)",
        "Inc-SVD (r=15)",
        "Inc-SVD (r=25)",
    ]);
    for (mut ds, k_iters, svd_ranks) in [
        (dblp_like(), 15usize, vec![5usize, 15, 25]),
        (cith_like(), 15, vec![5]),
        (youtu_like(), 5, vec![]),
    ] {
        run_dataset(&mut ds, k_iters, &svd_ranks, &mut table);
    }
    table.print();
    println!("\n('—' = not run: the paper reports memory explosion/crash there; CITH r>5 and");
    println!(" YOUTU are r- and n-infeasible at the paper's full scale)");
    println!("\n[ok] Fig. 3 regenerated.");
}

fn run_dataset(ds: &mut Dataset, k_iters: usize, svd_ranks: &[usize], table: &mut Table) {
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let base = ds.base_graph();
    let s_base = batch_simrank(&base, &cfg);
    let stream = ds.updates_to_increment(0);
    let cap = scaled_cap(15);

    let mut incsr = IncSr::new(base.clone(), s_base.clone(), cfg);
    let m_sr = measure_per_update(&mut incsr, &stream, cap);
    let mut incusr = IncUSr::new(base.clone(), s_base.clone(), cfg);
    let m_usr = measure_per_update(&mut incusr, &stream, cap.min(scaled_cap(6)));

    let mut svd_cells: Vec<String> = Vec::new();
    for &r in &[5usize, 15, 25] {
        if svd_ranks.contains(&r) {
            let mut engine = IncSvd::new(
                base.clone(),
                cfg,
                IncSvdOptions {
                    rank: r,
                    ..Default::default()
                },
            )
            .expect("Inc-SVD construction");
            let m = measure_per_update(&mut engine, &stream, scaled_cap(3));
            svd_cells.push(fmt_bytes(m.peak_bytes));
        } else {
            svd_cells.push("—".into());
        }
    }

    table.row(vec![
        format!("{} (n={})", ds.name, base.node_count()),
        fmt_bytes(m_sr.peak_bytes),
        fmt_bytes(m_usr.peak_bytes),
        svd_cells[0].clone(),
        svd_cells[1].clone(),
        svd_cells[2].clone(),
    ]);
}

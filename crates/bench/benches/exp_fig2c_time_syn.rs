//! **Fig. 2c** — time efficiency on synthetic data: controlled edge
//! *insertion* and *deletion* sweeps on a linkage-model graph.
//!
//! The paper fixes `|V|` and sweeps `|E|` 485K→560K in +15K insertions
//! (resp. 560K→485K in deletions), with the update sequence produced by
//! the **linkage generation model** itself (§VI-A) — i.e. growth-shaped
//! edges, not uniform random pairs. This harness does the same: the
//! insertion stream is the model's own continuation of the graph, and the
//! deletion sweep removes exactly that edge mass in reverse.
//!
//! Shapes to verify: Inc-SR < Inc-uSR < Inc-SVD on every step, and
//! deletions behaving like insertions.

use incsim_baselines::{IncSvd, IncSvdOptions};
use incsim_bench::{measure_per_update, scaled_cap, Table};
use incsim_core::{batch_simrank_detailed, BatchOptions, IncSr, IncUSr, SimRankConfig};
use incsim_datagen::linkage::{linkage_model, LinkageParams};
use incsim_graph::{DiGraph, UpdateOp};
use incsim_metrics::timing::{fmt_duration, Stopwatch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const STEPS: usize = 5;

fn main() {
    println!("== Fig. 2c: time efficiency on synthetic data (insertions & deletions) ==\n");
    let cfg = SimRankConfig::new(0.6, 15).expect("valid config");

    // Scaled stand-in for the paper's |V| = 79,483 / |E| = 485K–560K sweep
    // (≈15.5% total churn): grow a linkage-model graph and use its own
    // continuation as the update stream.
    let mut rng = StdRng::seed_from_u64(0x5715);
    let params = LinkageParams {
        nodes: 1_500,
        edges_per_node: 7.0,
        pref_mix: 0.7,
        reciprocity: 0.0,
        cite_past_only: false,
        communities: 0,
        community_bias: 0.0,
    };
    let mut timeline = linkage_model(&params, &mut rng);
    let t_base = (params.nodes as f64 * 0.85) as u64;
    let g_low = timeline.snapshot_at(t_base);
    let inserts = timeline.updates_between(t_base, u64::MAX);
    let step = inserts.len() / STEPS;
    println!(
        "synthetic linkage graph: n = {}, |E| = {} → {} in {STEPS} model-driven steps of {step}\n",
        g_low.node_count(),
        g_low.edge_count(),
        g_low.edge_count() + inserts.len(),
    );

    run_sweep("edge insertion (|E| grows)", &g_low, &inserts, step, &cfg);

    // Deletion sweep mirrors the paper's |E| 560K→485K decrements: the same
    // edge mass is removed, newest first.
    let mut g_high = g_low.clone();
    for op in &inserts {
        op.apply(&mut g_high).expect("insert stream valid");
    }
    let deletes: Vec<UpdateOp> = inserts.iter().rev().map(UpdateOp::inverse).collect();
    run_sweep("edge deletion (|E| shrinks)", &g_high, &deletes, step, &cfg);

    println!("[ok] Fig. 2c series regenerated.");
}

fn run_sweep(label: &str, base: &DiGraph, stream: &[UpdateOp], step: usize, cfg: &SimRankConfig) {
    println!("-- {label} --");
    let s_base = batch_simrank_detailed(base, cfg, &BatchOptions::default()).scores;

    let mut incsr = IncSr::new(base.clone(), s_base.clone(), *cfg);
    let m_incsr = measure_per_update(&mut incsr, stream, scaled_cap(40));
    let mut incusr = IncUSr::new(base.clone(), s_base.clone(), *cfg);
    let m_incusr = measure_per_update(&mut incusr, stream, scaled_cap(12));
    let mut incsvd = IncSvd::new(
        base.clone(),
        *cfg,
        IncSvdOptions {
            rank: 5,
            ..Default::default()
        },
    )
    .expect("Inc-SVD construction");
    let m_incsvd = measure_per_update(&mut incsvd, stream, scaled_cap(8));

    let mut table = Table::new(&["|E| after step", "Inc-SR", "Inc-uSR", "Inc-SVD", "Batch"]);
    let mut g_target = base.clone();
    for s in 1..=STEPS {
        let count = (step * s).min(stream.len());
        for op in &stream[step * (s - 1)..count] {
            op.apply(&mut g_target).expect("stream valid");
        }
        let sw = Stopwatch::start();
        let _ = batch_simrank_detailed(&g_target, cfg, &BatchOptions::default());
        let batch_secs = sw.secs();
        table.row(vec![
            format!("{}", g_target.edge_count()),
            fmt_duration(Duration::from_secs_f64(m_incsr.extrapolate_secs(count))),
            fmt_duration(Duration::from_secs_f64(m_incusr.extrapolate_secs(count))),
            fmt_duration(Duration::from_secs_f64(m_incsvd.extrapolate_secs(count))),
            fmt_duration(Duration::from_secs_f64(batch_secs)),
        ]);
    }
    table.print();
    println!(
        "   per-update: Inc-SR {:.2}ms | Inc-uSR {:.2}ms ({:.1}x) | Inc-SVD {:.2}ms ({:.1}x)\n",
        m_incsr.per_update_secs * 1e3,
        m_incusr.per_update_secs * 1e3,
        m_incusr.per_update_secs / m_incsr.per_update_secs,
        m_incsvd.per_update_secs * 1e3,
        m_incsvd.per_update_secs / m_incsr.per_update_secs,
    );
}

//! **Fig. 2e** — the size of the "affected areas" in ΔS as a percentage of
//! all `n²` node pairs, w.r.t. the update size `|ΔE|`.
//!
//! The affected area of one unit update is `A_∪ × B_∪` (the union of the
//! Theorem 4 sets across iterations); the paper reports the union of these
//! areas over the whole `ΔE` stream, relative to `n²`. Shapes to verify:
//! the affected fraction is far below 100% (19–28% in the paper) and grows
//! only mildly as `|ΔE|` increases — the headroom the pruning of Inc-SR
//! exploits.

use incsim_bench::{scaled_cap, Table};
use incsim_core::{batch_simrank, GraphSink, IncSr, SimRankConfig};
use incsim_datagen::{cith_like, dblp_like, youtu_like, Dataset};

fn main() {
    println!("== Fig. 2e: % of |AFF| (affected area of ΔS) w.r.t. |ΔE| ==\n");
    let mut table = Table::new(&[
        "dataset",
        "|ΔE|/|E|",
        "stream |AFF| / n²",
        "per-update |AFF| / n²",
    ]);
    for (mut ds, k_iters) in [(dblp_like(), 15usize), (cith_like(), 15), (youtu_like(), 5)] {
        run_dataset(&mut ds, k_iters, &mut table);
    }
    table.print();
    println!(
        "\n(stream |AFF| ≪ n² throughout — the Theorem 4 pruning target; growth with |ΔE| is mild)"
    );
    println!("\n[ok] Fig. 2e regenerated.");
}

fn run_dataset(ds: &mut Dataset, k_iters: usize, table: &mut Table) {
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let base = ds.base_graph();
    let n = base.node_count();
    let n2 = (n * n) as f64;
    let s_base = batch_simrank(&base, &cfg);
    let mut full = ds.updates_to_increment(ds.increment_times.len() - 1);
    // Bound the replayed stream on the largest dataset (per-update cost is
    // memory-bound there); the three |ΔE| points stay proportional.
    let limit = if n > 3000 {
        scaled_cap(450)
    } else {
        scaled_cap(2500)
    };
    full.truncate(limit);

    // Three |ΔE| prefixes matching the paper's 6K/12K/18K sweep ratios.
    let fractions = [(1.0 / 3.0, "≈6.4%"), (2.0 / 3.0, "≈12.8%"), (1.0, "≈19.2%")];
    let mut engine = IncSr::new(base.clone(), s_base, cfg);
    let mut a_stream = vec![false; n];
    let mut b_stream = vec![false; n];
    let (mut a_count, mut b_count) = (0usize, 0usize);
    let mut per_update_aff = 0.0f64;
    let mut samples = 0usize;
    let mut applied = 0usize;
    for (frac, label) in fractions {
        let upto = ((full.len() as f64 * frac) as usize).min(full.len());
        for &op in &full[applied..upto] {
            if engine.apply(op).is_ok() {
                let (a_sup, b_sup) = engine.last_affected();
                per_update_aff += (a_sup.len() * b_sup.len()) as f64;
                samples += 1;
                for &a in a_sup {
                    if !a_stream[a as usize] {
                        a_stream[a as usize] = true;
                        a_count += 1;
                    }
                }
                for &b in b_sup {
                    if !b_stream[b as usize] {
                        b_stream[b as usize] = true;
                        b_count += 1;
                    }
                }
            }
        }
        applied = upto;
        table.row(vec![
            format!("{} (n={n})", ds.name),
            label.into(),
            format!("{:.1}%", 100.0 * (a_count * b_count) as f64 / n2),
            format!(
                "{:.2}%",
                100.0 * per_update_aff / samples.max(1) as f64 / n2
            ),
        ]);
    }
}

//! Ablations of the design choices called out in `DESIGN.md`:
//!
//! 1. **Partial-sum sharing** in batch SimRank (the fine-grained
//!    memoisation of the paper's `Batch` [6]) — on vs off.
//! 2. **Iteration count K** — the accuracy/time trade-off the paper tunes
//!    (`K = 15` for `C^K ≤ 5e-4`; `K = 5` on the largest dataset).
//! 3. **Randomized vs full-Jacobi initial SVD** for the Inc-SVD baseline.
//! 4. **Pruning** (Inc-SR vs Inc-uSR) is the paper's own ablation — see
//!    `exp_fig2d_pruning`.

use incsim_baselines::{IncSvd, IncSvdOptions};
use incsim_bench::Table;
use incsim_core::{
    batch_simrank, batch_simrank_detailed, BatchOptions, GraphSink, IncSr, MatrixAccess,
    SimRankConfig,
};
use incsim_datagen::presets::mini;
use incsim_metrics::timing::{fmt_duration, Stopwatch};
use incsim_metrics::{max_error, ndcg_at_k};
use std::time::Duration;

fn main() {
    println!("== Ablations ==\n");
    ablate_partial_sums();
    ablate_iteration_count();
    ablate_svd_method();
    println!("[ok] ablations complete.");
}

/// Sharing identical in-neighbour rows: lossless, and faster when the
/// graph has duplicate in-neighbourhoods.
fn ablate_partial_sums() {
    println!("-- 1. batch partial-sum sharing --");
    let mut ds = mini("ablate-share", 1200, 0xA1);
    let g = ds.base_graph();
    let cfg = SimRankConfig::new(0.6, 15).expect("valid config");
    let mut table = Table::new(&["variant", "time", "shared rows", "max |Δ| vs other"]);
    let sw = Stopwatch::start();
    let with = batch_simrank_detailed(&g, &cfg, &BatchOptions::default());
    let t_with = sw.elapsed();
    let sw = Stopwatch::start();
    let without = batch_simrank_detailed(
        &g,
        &cfg,
        &BatchOptions {
            share_partial_sums: false,
            ..Default::default()
        },
    );
    let t_without = sw.elapsed();
    let drift = with.scores.max_abs_diff(&without.scores);
    table.row(vec![
        "sharing on".into(),
        fmt_duration(t_with),
        with.shared_rows.to_string(),
        format!("{drift:.1e}"),
    ]);
    table.row(vec![
        "sharing off".into(),
        fmt_duration(t_without),
        "0".into(),
        format!("{drift:.1e}"),
    ]);
    table.print();
    assert!(drift < 1e-12, "sharing must be lossless");
    println!();
}

/// K controls the C^{K+1} truncation error of both batch and incremental
/// paths; the time grows linearly in K.
fn ablate_iteration_count() {
    println!("-- 2. iteration count K (Inc-SR accuracy/time trade-off) --");
    let mut ds = mini("ablate-k", 800, 0xA2);
    let g = ds.base_graph();
    let stream = ds.updates_to_increment(0);
    let truth_cfg = SimRankConfig::new(0.6, 60).expect("valid config");
    let s_base = batch_simrank(&g, &truth_cfg);
    // Ground truth after the stream.
    let mut g_new = g.clone();
    for op in &stream {
        op.apply(&mut g_new).expect("valid stream");
    }
    let truth = batch_simrank(&g_new, &truth_cfg);

    let mut table = Table::new(&["K", "C^{K+1} bound", "stream time", "max err", "NDCG30"]);
    for k in [3usize, 5, 10, 15] {
        let cfg = SimRankConfig::new(0.6, k).expect("valid config");
        let mut engine = IncSr::new(g.clone(), s_base.clone(), cfg);
        let sw = Stopwatch::start();
        engine.apply_batch(&stream).expect("valid stream");
        let t = sw.elapsed();
        table.row(vec![
            k.to_string(),
            format!("{:.1e}", cfg.truncation_bound()),
            fmt_duration(t),
            format!("{:.1e}", max_error(engine.scores(), &truth)),
            format!("{:.3}", ndcg_at_k(&truth, engine.scores(), 30)),
        ]);
    }
    table.print();
    println!();
}

/// The randomized range finder matches the full Jacobi SVD's leading
/// subspace at a fraction of the cost — this is why the Inc-SVD baseline
/// stays runnable at bench scale.
fn ablate_svd_method() {
    println!("-- 3. Inc-SVD initial factorisation: randomized vs full Jacobi --");
    let mut ds = mini("ablate-svd", 700, 0xA3);
    let g = ds.base_graph();
    let cfg = SimRankConfig::new(0.6, 15).expect("valid config");
    let mut table = Table::new(&["method", "build time", "max |Δscores| between methods"]);
    let sw = Stopwatch::start();
    let mut rand_engine = IncSvd::new(
        g.clone(),
        cfg,
        IncSvdOptions {
            rank: 8,
            randomized: true,
            power_iters: 4,
            oversample: 10,
            ..Default::default()
        },
    )
    .expect("construction");
    let t_rand = sw.elapsed();
    let sw = Stopwatch::start();
    let mut jacobi_engine = IncSvd::new(
        g.clone(),
        cfg,
        IncSvdOptions {
            rank: 8,
            randomized: false,
            ..Default::default()
        },
    )
    .expect("construction");
    let t_jacobi = sw.elapsed();
    let delta = max_error(rand_engine.scores(), jacobi_engine.scores());
    table.row(vec![
        "randomized (r=8, q=4)".into(),
        fmt_duration(t_rand),
        format!("{delta:.1e}"),
    ]);
    table.row(vec![
        "full Jacobi, truncated".into(),
        fmt_duration(t_jacobi),
        format!("{delta:.1e}"),
    ]);
    table.print();
    let speedup = t_jacobi.as_secs_f64() / t_rand.as_secs_f64().max(1e-9);
    println!("   randomized build is {speedup:.0}x faster at bench scale\n");
    let _ = Duration::ZERO;
}

//! **Fig. 1 + §IV** — the running example: incremental SimRank as edge
//! `(i, j)` is added to a 15-node citation graph, comparing
//!
//! * `sim`      — old scores in `G`,
//! * `simtrue`  — batch recomputation on `G ∪ {(i,j)}` (ground truth),
//! * `Inc-SR`   — this paper's exact incremental result,
//! * `simLi`    — Li et al.'s Inc-SVD with **lossless** SVD, which is
//!   nevertheless approximate whenever `rank(Q) < n` (§IV).
//!
//! The paper's exact Fig. 1 edge list is unpublished; this is the
//! reconstruction from `incsim_datagen::fig1` with the identical set-up
//! (`d_j = 2`, in-neighbours `{h, k}`). Expect the same phenomena, not the
//! same decimals: grey-row pairs unchanged, Inc-SR ≡ simtrue, simLi drifting.

use incsim_baselines::{IncSvd, IncSvdOptions};
use incsim_bench::Table;
use incsim_core::{batch_simrank, GraphSink, IncSr, MatrixAccess, SimRankConfig};
use incsim_datagen::fig1::{fig1_graph, FIG1_DAMPING, INSERTED_EDGE};
use incsim_graph::transition::backward_transition;
use incsim_linalg::norms::spectral_norm_est;
use incsim_linalg::qr::rank_qrcp;
use incsim_linalg::svd::jacobi_svd;

fn main() {
    println!("== Fig. 1: incremental SimRank as edge (i, j) is inserted ==");
    println!("   (15-node citation graph, C = {FIG1_DAMPING}, lossless-SVD Inc-SVD baseline)\n");

    let g = fig1_graph();
    let (ei, ej) = INSERTED_EDGE;
    let cfg = SimRankConfig::new(FIG1_DAMPING, 60).expect("valid config");

    // Old scores on G.
    let s_old = batch_simrank(&g, &cfg);

    // Ground truth on G ∪ {(i,j)}.
    let mut g_new = g.clone();
    g_new.insert_edge(ei, ej).expect("edge is absent in G");
    let s_true = batch_simrank(&g_new, &cfg);

    // Inc-SR (this paper).
    let mut incsr = IncSr::new(g.clone(), s_old.clone(), cfg);
    incsr.insert_edge(ei, ej).expect("valid insertion");

    // Inc-SVD (Li et al.) with lossless rank r = rank(Q).
    let q_dense = backward_transition(&g).to_dense();
    let rank_q = rank_qrcp(&q_dense, 1e-10);
    let n = g.node_count();
    println!("rank(Q) = {rank_q} < n = {n}  ⇒  §IV predicts Inc-SVD loses eigen-information\n");
    let mut incsvd = IncSvd::new(
        g.clone(),
        cfg,
        IncSvdOptions {
            rank: rank_q,
            randomized: false,
            ..Default::default()
        },
    )
    .expect("Inc-SVD construction");
    incsvd.insert_edge(ei, ej).expect("valid insertion");

    // The Fig. 1 table over representative pairs (near + far from (i,j)).
    let pairs: &[(char, char)] = &[
        ('a', 'b'),
        ('a', 'd'),
        ('i', 'f'),
        ('k', 'g'),
        ('k', 'h'),
        ('j', 'f'),
        ('m', 'l'),
        ('j', 'b'),
        ('i', 'j'),
    ];
    let idx = |ch: char| (ch as u8 - b'a') as usize;
    let mut table = Table::new(&[
        "node-pair",
        "sim (G)",
        "simtrue (G∪ΔG)",
        "Inc-SR",
        "simLi et al.",
        "unchanged?",
    ]);
    for &(x, y) in pairs {
        let (a, b) = (idx(x), idx(y));
        let old = s_old.get(a, b);
        let truth = s_true.get(a, b);
        let ours = incsr.scores().get(a, b);
        let li = incsvd.scores().get(a, b);
        table.row(vec![
            format!("({x}, {y})"),
            format!("{old:.3}"),
            format!("{truth:.3}"),
            format!("{ours:.3}"),
            format!("{li:.3}"),
            if (old - truth).abs() < 5e-4 {
                "yes (grey row)".into()
            } else {
                "".into()
            },
        ]);
    }
    table.print();

    // Headline errors, as in §IV.
    let err_incsr = incsr.scores().max_abs_diff(&s_true);
    let err_li = incsvd.scores().max_abs_diff(&s_true);
    println!("\nmax |error| vs simtrue:  Inc-SR = {err_incsr:.2e}   Inc-SVD = {err_li:.2e}");

    // Example 3-style factor residual: ‖Q̃ − Ũ·Σ̃·Ṽᵀ‖₂.
    let recon = incsvd.factors().reconstruct();
    let q_new = backward_transition(incsvd.graph()).to_dense();
    let mut resid = q_new;
    resid.add_scaled(-1.0, &recon);
    println!(
        "factor residual ‖Q̃ − Ũ·Σ̃·Ṽᵀ‖₂ = {:.4}  (paper's Example 3 exhibits 1.0 on its 2×2 case)",
        spectral_norm_est(&resid, 60)
    );

    // Example 2 verification on the paper's own 2×2 matrices.
    let q2 = incsim_linalg::DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
    let svd2 = jacobi_svd(&q2).truncate(1);
    let uut = svd2.u.matmul_nt(&svd2.u);
    println!(
        "Example 2: U·Uᵀ = [[{:.0}, {:.0}], [{:.0}, {:.0}]] ≠ I₂  (rank(Q) = 1 < n = 2)",
        uut.get(0, 0),
        uut.get(0, 1),
        uut.get(1, 0),
        uut.get(1, 1)
    );

    assert!(err_incsr < 1e-8, "Inc-SR must reproduce simtrue");
    assert!(
        err_li > 1e-3,
        "lossless-SVD Inc-SVD must remain approximate here"
    );
    println!("\n[ok] Inc-SR exact; Inc-SVD approximate despite lossless SVD — Fig. 1 reproduced.");
}

//! **Fig. 2a** — time efficiency of incremental SimRank on (scaled stand-ins
//! of) the real datasets, edges inserted snapshot by snapshot.
//!
//! For each dataset the old graph `G` is the base snapshot; each x-axis
//! point `|E| + |ΔE|` is a later snapshot, and every engine processes the
//! update stream from `G` to that snapshot:
//!
//! * `Inc-SR` / `Inc-uSR` / `Inc-SVD`: mean per-update time is measured on
//!   a stream prefix (caps scale with `INCSIM_BENCH_SCALE`) and
//!   extrapolated to the stream length — the honest way to keep the suite
//!   in minutes; shapes are unaffected (per-update cost is stationary).
//! * `Batch`: one from-scratch recomputation per snapshot.
//!
//! Paper shapes to verify: Inc-SR fastest throughout; Inc-SVD worst of the
//! incremental engines; Batch flat, overtaking the incremental engines only
//! once `|ΔE|` grows large; Inc-SVD absent on YOUTU (memory crash at the
//! paper's full scale — marked `—` here).

use incsim_baselines::{IncSvd, IncSvdOptions};
use incsim_bench::{measure_per_update, scaled_cap, Table};
use incsim_core::{batch_simrank_detailed, BatchOptions, IncSr, IncUSr, SimRankConfig};
use incsim_datagen::{cith_like, dblp_like, youtu_like, Dataset};
use incsim_metrics::timing::{fmt_duration, Stopwatch};
use std::time::Duration;

fn main() {
    println!("== Fig. 2a: time efficiency of incremental SimRank on real-data stand-ins ==\n");
    for (mut ds, k_iters, svd_ok) in [
        (dblp_like(), 15usize, true),
        (cith_like(), 15, true),
        (youtu_like(), 5, false), // paper: K=5 on YOUTU; Inc-SVD memory-crashes
    ] {
        run_dataset(&mut ds, k_iters, svd_ok);
    }
    println!("[ok] Fig. 2a series regenerated.");
}

fn run_dataset(ds: &mut Dataset, k_iters: usize, svd_ok: bool) {
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let name = ds.name;
    let base = ds.base_graph();
    let n = base.node_count();
    let base_edges = base.edge_count();
    println!("-- {name}: n = {n}, base |E| = {base_edges}, K = {k_iters}, C = 0.6 --");

    // Precompute old scores once (the paper's workflow).
    let sw = Stopwatch::start();
    let s_base = batch_simrank_detailed(&base, &cfg, &BatchOptions::default()).scores;
    println!(
        "   batch precompute of S on G: {}",
        fmt_duration(sw.elapsed())
    );

    // Per-update costs measured once from the base state.
    let full_stream = ds.updates_to_increment(ds.increment_times.len() - 1);
    let mut incsr = IncSr::new(base.clone(), s_base.clone(), cfg);
    let m_incsr = measure_per_update(&mut incsr, &full_stream, scaled_cap(40));
    let mut incusr = IncUSr::new(base.clone(), s_base.clone(), cfg);
    let cap_usr = if n > 3000 {
        scaled_cap(6)
    } else {
        scaled_cap(12)
    };
    let m_incusr = measure_per_update(&mut incusr, &full_stream, cap_usr);
    let m_incsvd = if svd_ok {
        let mut engine = IncSvd::new(
            base.clone(),
            cfg,
            IncSvdOptions {
                rank: 5, // the paper's speed-favouring setting
                ..Default::default()
            },
        )
        .expect("Inc-SVD construction");
        Some(measure_per_update(&mut engine, &full_stream, scaled_cap(8)))
    } else {
        None
    };

    let mut table = Table::new(&["|E|+|ΔE|", "Inc-SR", "Inc-uSR", "Inc-SVD", "Batch"]);
    let mut last_ratio_svd = 0.0f64;
    let mut last_ratio_batch = 0.0f64;
    for idx in 0..ds.increment_times.len() {
        let stream = ds.updates_to_increment(idx);
        let target = ds.timeline.snapshot_at(ds.increment_times[idx]);
        let sw = Stopwatch::start();
        let _ = batch_simrank_detailed(&target, &cfg, &BatchOptions::default());
        let batch_secs = sw.secs();

        let t_incsr = m_incsr.extrapolate_secs(stream.len());
        let t_incusr = m_incusr.extrapolate_secs(stream.len());
        let t_incsvd = m_incsvd.as_ref().map(|m| m.extrapolate_secs(stream.len()));
        table.row(vec![
            format!("{}", target.edge_count()),
            fmt_duration(Duration::from_secs_f64(t_incsr)),
            fmt_duration(Duration::from_secs_f64(t_incusr)),
            t_incsvd.map_or_else(
                || "— (mem)".into(),
                |t| fmt_duration(Duration::from_secs_f64(t)),
            ),
            fmt_duration(Duration::from_secs_f64(batch_secs)),
        ]);
        if let Some(t) = t_incsvd {
            last_ratio_svd = t / t_incsr;
        }
        last_ratio_batch = batch_secs / t_incsr;
    }
    table.print();
    print!(
        "   Inc-SR vs Inc-uSR: {:.1}x faster;",
        m_incusr.per_update_secs / m_incsr.per_update_secs
    );
    if svd_ok {
        print!(" vs Inc-SVD: {last_ratio_svd:.1}x;");
    }
    println!(
        " vs Batch at the largest |ΔE|: {:.1}x {}",
        last_ratio_batch.max(1.0 / last_ratio_batch),
        if last_ratio_batch >= 1.0 {
            "faster"
        } else {
            "slower"
        }
    );
    println!();
}

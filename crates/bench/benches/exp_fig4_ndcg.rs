//! **Fig. 4** — exactness: NDCG₃₀ of the top-30 most-similar node pairs
//! against a 35-iteration batch baseline, after a stream of link updates.
//!
//! Paper shapes to verify: Inc-SR and Inc-uSR reach NDCG₃₀ ≈ 1 (and are
//! *identical* to each other — pruning is lossless), already high at K=5;
//! Inc-SVD sits far below regardless of rank, because its factor update
//! loses eigen-information on rank-deficient real graphs (§IV).

use incsim_baselines::{IncSvd, IncSvdOptions};
use incsim_bench::{scaled_cap, Table};
use incsim_core::{batch_simrank, GraphSink, IncSr, IncUSr, MatrixAccess, SimRankConfig};
use incsim_datagen::{cith_like, dblp_like, youtu_like, Dataset};
use incsim_graph::UpdateOp;
use incsim_metrics::ndcg_at_k;

const NDCG_K: usize = 30;
/// The paper uses Batch at K=35 as the exact baseline (covers all diameters).
const BASELINE_ITERS: usize = 35;

fn main() {
    println!("== Fig. 4: NDCG30 exactness vs Batch(K=35) after link updates ==\n");
    let mut table = Table::new(&[
        "dataset",
        "Inc-SR (K=5)",
        "Inc-SR (K=15)",
        "Inc-uSR (K=5)",
        "Inc-uSR (K=15)",
        "Inc-SVD (r=5)",
        "Inc-SVD (r=15)",
    ]);
    for (mut ds, svd_ok) in [
        (dblp_like(), true),
        (cith_like(), true),
        (youtu_like(), false),
    ] {
        run_dataset(&mut ds, svd_ok, &mut table);
    }
    table.print();
    println!("\n(Inc-SR ≡ Inc-uSR per K — pruning does not sacrifice exactness;");
    println!(" Inc-SVD trails regardless of rank, as §IV predicts)");
    println!("\n[ok] Fig. 4 regenerated.");
}

fn run_dataset(ds: &mut Dataset, svd_ok: bool, table: &mut Table) {
    let name = ds.name;
    let base = ds.base_graph();
    let n = base.node_count();
    // Converged old scores shared by all engines.
    let cfg_base = SimRankConfig::new(0.6, BASELINE_ITERS).expect("valid config");
    let s_base = batch_simrank(&base, &cfg_base);

    let full = ds.updates_to_increment(0);
    let cap = if n > 3000 {
        scaled_cap(20)
    } else {
        scaled_cap(60)
    };
    let stream: Vec<UpdateOp> = full.into_iter().take(cap).collect();

    // Ground-truth graph + baseline scores after the stream.
    let mut g_new = base.clone();
    for op in &stream {
        op.apply(&mut g_new).expect("stream valid");
    }
    let baseline = batch_simrank(&g_new, &cfg_base);

    let mut cells = vec![format!("{name} (n={n})")];
    for k in [5usize, 15] {
        let cfg = SimRankConfig::new(0.6, k).expect("valid config");
        let mut engine = IncSr::new(base.clone(), s_base.clone(), cfg);
        for op in &stream {
            engine.apply(*op).expect("stream valid");
        }
        cells.push(format!(
            "{:.2}",
            ndcg_at_k(&baseline, engine.scores(), NDCG_K)
        ));
    }
    for k in [5usize, 15] {
        let cfg = SimRankConfig::new(0.6, k).expect("valid config");
        let mut engine = IncUSr::new(base.clone(), s_base.clone(), cfg);
        for op in &stream {
            engine.apply(*op).expect("stream valid");
        }
        cells.push(format!(
            "{:.2}",
            ndcg_at_k(&baseline, engine.scores(), NDCG_K)
        ));
    }
    for r in [5usize, 15] {
        if svd_ok {
            let cfg = SimRankConfig::new(0.6, 15).expect("valid config");
            let mut engine = IncSvd::new(
                base.clone(),
                cfg,
                IncSvdOptions {
                    rank: r,
                    ..Default::default()
                },
            )
            .expect("Inc-SVD construction");
            for op in &stream {
                engine.apply(*op).expect("stream valid");
            }
            cells.push(format!(
                "{:.2}",
                ndcg_at_k(&baseline, engine.scores(), NDCG_K)
            ));
        } else {
            cells.push("— (mem)".into());
        }
    }
    table.row(cells);
}

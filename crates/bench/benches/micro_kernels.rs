//! Criterion microbenchmarks of the hot kernels behind every experiment:
//! the sparse matvec (`Q·x`), the symmetric rank-two score update
//! (`S += ξηᵀ + ηξᵀ`), one batch iteration, and a full unit update through
//! each incremental engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use incsim_core::{batch_simrank, GraphSink, IncSr, IncUSr, MatrixAccess, SimRankConfig};
use incsim_datagen::linkage::{linkage_model, LinkageParams};
use incsim_graph::transition::backward_transition;
use incsim_graph::DiGraph;
use incsim_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fixture(n: usize) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(99);
    let params = LinkageParams {
        nodes: n,
        edges_per_node: 6.0,
        pref_mix: 0.7,
        reciprocity: 0.0,
        cite_past_only: true,
        communities: 0,
        community_bias: 0.0,
    };
    linkage_model(&params, &mut rng).snapshot_at(u64::MAX)
}

fn bench_kernels(c: &mut Criterion) {
    let n = 600;
    let g = fixture(n);
    let q = backward_transition(&g);
    let cfg = SimRankConfig::new(0.6, 10).expect("valid config");
    let scores = batch_simrank(&g, &cfg);

    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut y = vec![0.0; n];
    c.bench_function("spmv_q_x", |b| {
        b.iter(|| {
            q.matvec(black_box(&x), &mut y);
            black_box(&y);
        });
    });

    let eta: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
    c.bench_function("add_sym_outer_600", |b| {
        b.iter_batched(
            || scores.clone(),
            |mut s| {
                s.add_sym_outer(1.0, black_box(&x), black_box(&eta));
                black_box(s)
            },
            BatchSize::LargeInput,
        );
    });

    c.bench_function("batch_iteration_600", |b| {
        let one_iter = SimRankConfig::new(0.6, 1).expect("valid config");
        b.iter(|| black_box(batch_simrank(black_box(&g), &one_iter)));
    });

    let mut m = DenseMatrix::zeros(n, n);
    c.bench_function("rank_one_update_600", |b| {
        b.iter(|| {
            m.rank_one_update(1.0, black_box(&x), black_box(&eta));
            black_box(&m);
        });
    });

    // One fused LowRankDelta sweep applying K+1 = 16 buffered rank-two
    // terms vs the equivalent 16 eager add_sym_outer sweeps: same FLOPs,
    // 1/8th of the S row traffic (16 pairs at DENSE_GROUP = 8 per pass).
    let pairs: Vec<(Vec<f64>, Vec<f64>)> = (0..16)
        .map(|t| {
            let xi: Vec<f64> = (0..n)
                .map(|i| ((i * 7 + t * 13) as f64 * 0.21).sin())
                .collect();
            let yi: Vec<f64> = (0..n)
                .map(|i| ((i * 3 + t * 29) as f64 * 0.17).cos())
                .collect();
            (xi, yi)
        })
        .collect();
    c.bench_function("lowrank_fused_apply_16x600", |b| {
        b.iter_batched(
            || {
                let mut d = incsim_linalg::LowRankDelta::new(n);
                for (xi, yi) in &pairs {
                    d.push_dense(xi.clone(), yi.clone());
                }
                (scores.clone(), d)
            },
            |(mut s, mut d)| {
                d.apply_to_with_threads(&mut s, 1);
                black_box(s)
            },
            BatchSize::LargeInput,
        );
    });
    c.bench_function("lowrank_eager_equiv_16x600", |b| {
        b.iter_batched(
            || scores.clone(),
            |mut s| {
                for (xi, yi) in &pairs {
                    s.add_sym_outer(1.0, xi, yi);
                }
                black_box(s)
            },
            BatchSize::LargeInput,
        );
    });

    // Full unit update through each engine (K = 10).
    c.bench_function("incsr_unit_insert_600", |b| {
        b.iter_batched(
            || IncSr::new(g.clone(), scores.clone(), cfg),
            |mut e| {
                e.insert_edge(0, (n - 1) as u32).expect("edge absent");
                black_box(e.scores().get(0, 1))
            },
            BatchSize::LargeInput,
        );
    });
    c.bench_function("incusr_unit_insert_600", |b| {
        b.iter_batched(
            || IncUSr::new(g.clone(), scores.clone(), cfg),
            |mut e| {
                e.insert_edge(0, (n - 1) as u32).expect("edge absent");
                black_box(e.scores().get(0, 1))
            },
            BatchSize::LargeInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(benches);

//! **Fig. 2d** — the effect of pruning: Inc-SR vs Inc-uSR elapsed time,
//! with the % of pruned node-pairs annotated per dataset.
//!
//! The paper reports Inc-SR beating Inc-uSR by ~0.5 orders of magnitude
//! with 76–82% of node pairs pruned. Shapes to verify here: a consistent
//! multi-x speedup on every dataset, achieved losslessly (the engines'
//! score matrices stay identical, asserted below).

use incsim_bench::{measure_per_update, scaled_cap, Table};
use incsim_core::{batch_simrank, GraphSink, IncSr, IncUSr, MatrixAccess, SimRankConfig};
use incsim_datagen::{cith_like, dblp_like, youtu_like, Dataset};
use incsim_metrics::timing::fmt_duration;
use std::time::Duration;

fn main() {
    println!("== Fig. 2d: effect of pruning (Inc-SR vs Inc-uSR) ==\n");
    let mut table = Table::new(&[
        "dataset",
        "% pruned pairs",
        "Inc-uSR (stream)",
        "Inc-SR (stream)",
        "speedup",
        "max |Inc-SR − Inc-uSR|",
    ]);
    for (mut ds, k_iters) in [(dblp_like(), 15usize), (cith_like(), 15), (youtu_like(), 5)] {
        run_dataset(&mut ds, k_iters, &mut table);
    }
    table.print();
    println!("\n(the last column certifies pruning is lossless: identical scores)");
    println!("\n[ok] Fig. 2d regenerated.");
}

fn run_dataset(ds: &mut Dataset, k_iters: usize, table: &mut Table) {
    let cfg = SimRankConfig::new(0.6, k_iters).expect("valid config");
    let base = ds.base_graph();
    let n = base.node_count();
    let s_base = batch_simrank(&base, &cfg);
    let stream = ds.updates_to_increment(ds.increment_times.len() - 1);

    let cap_sr = scaled_cap(40);
    let cap_usr = if n > 3000 {
        scaled_cap(6)
    } else {
        scaled_cap(12)
    };
    let common = cap_sr.min(cap_usr); // compare scores after identical prefixes

    let mut incsr = IncSr::new(base.clone(), s_base.clone(), cfg);
    let m_sr_common = measure_per_update(&mut incsr, &stream, common);
    let mut incusr = IncUSr::new(base.clone(), s_base.clone(), cfg);
    let m_usr = measure_per_update(&mut incusr, &stream, common);
    let drift = incsr.scores().max_abs_diff(incusr.scores());

    // Continue Inc-SR beyond the comparison prefix: a steadier per-update
    // estimate plus the stream-level affected-area union (the paper's
    // "% of pruned node-pairs" black bars are stream-level).
    let mut a_stream = vec![false; n];
    let mut b_stream = vec![false; n];
    let (mut a_count, mut b_count) = (0usize, 0usize);
    let mut union_in = |engine: &IncSr| {
        let (a_sup, b_sup) = engine.last_affected();
        for &a in a_sup {
            if !a_stream[a as usize] {
                a_stream[a as usize] = true;
                a_count += 1;
            }
        }
        for &b in b_sup {
            if !b_stream[b as usize] {
                b_stream[b as usize] = true;
                b_count += 1;
            }
        }
        (a_count, b_count)
    };
    union_in(&incsr); // the last measured update's area
    let mut extra_secs = 0.0;
    let mut extra_count = 0usize;
    for &op in stream
        .iter()
        .skip(common)
        .take(cap_sr.saturating_sub(common))
    {
        let sw = incsim_metrics::Stopwatch::start();
        if incsr.apply(op).is_ok() {
            extra_secs += sw.secs();
            extra_count += 1;
            union_in(&incsr);
        }
    }
    let per_sr =
        (m_sr_common.total_secs + extra_secs) / (m_sr_common.measured + extra_count).max(1) as f64;
    let stream_pruned = 1.0 - (a_count * b_count) as f64 / (n * n) as f64;

    let t_usr = m_usr.per_update_secs * stream.len() as f64;
    let t_sr = per_sr * stream.len() as f64;
    table.row(vec![
        format!("{} (n={n})", ds.name),
        format!("{:.1}%", 100.0 * stream_pruned),
        fmt_duration(Duration::from_secs_f64(t_usr)),
        fmt_duration(Duration::from_secs_f64(t_sr)),
        format!("{:.1}x", t_usr / t_sr),
        format!("{drift:.1e}"),
    ]);
    assert!(drift < 1e-9, "pruning must be lossless, drift = {drift}");
}

//! The "linkage generation model": preferential-attachment growth with
//! timestamped arrivals.
//!
//! The paper's synthetic graphs come from GraphGen configured with the
//! linkage generation model of Garg et al. (IMC 2009), which grows a graph
//! node by node; each arriving node links to existing nodes chosen
//! preferentially by their current in-degree. This module reproduces that
//! growth process and records every edge with its arrival timestamp, so the
//! same run yields both the snapshots (`|E|` on the x-axis of Fig. 2a) and
//! the inter-snapshot update streams.

use incsim_graph::EvolvingGraph;
use rand::Rng;

/// Parameters of the growth model.
#[derive(Debug, Clone, Copy)]
pub struct LinkageParams {
    /// Total nodes to grow.
    pub nodes: usize,
    /// Mean out-edges created per arriving node.
    pub edges_per_node: f64,
    /// Probability that an endpoint is chosen preferentially (by in-degree)
    /// rather than uniformly. `0.0` = pure random, `1.0` = pure preferential.
    pub pref_mix: f64,
    /// Probability that a created link is reciprocated (`v → u` added along
    /// with `u → v`), as in related-video graphs. `0.0` for citation DAGs.
    pub reciprocity: f64,
    /// If `true`, targets are restricted to *older* nodes (citation
    /// semantics: papers cite the past).
    pub cite_past_only: bool,
    /// Number of communities (`0` or `1` disables community structure).
    /// Node `v` belongs to community `v mod communities`.
    pub communities: usize,
    /// Probability that a created link stays inside the source node's
    /// community. Related-video and social graphs are strongly clustered;
    /// clustering is what keeps SimRank's affected areas local.
    pub community_bias: f64,
}

impl Default for LinkageParams {
    fn default() -> Self {
        LinkageParams {
            nodes: 1000,
            edges_per_node: 5.0,
            pref_mix: 0.7,
            reciprocity: 0.0,
            cite_past_only: true,
            communities: 0,
            community_bias: 0.0,
        }
    }
}

/// Grows a timestamped graph with the linkage generation model.
///
/// Timestamps are arrival ranks (`0..nodes`), so `snapshot_at(t)` gives the
/// graph after the first `t+1` nodes arrived — the "year"/"video age"
/// snapshots of the paper's Exp-1.
pub fn linkage_model<R: Rng>(params: &LinkageParams, rng: &mut R) -> EvolvingGraph {
    let n = params.nodes;
    let mut timeline = EvolvingGraph::new(n);
    if n == 0 {
        return timeline;
    }
    // The urn holds one entry per in-edge endpoint (plus one per node so
    // new nodes are reachable): sampling uniformly from it realises
    // preferential attachment by in-degree + 1.
    let mut urn: Vec<u32> = Vec::with_capacity(n * (params.edges_per_node as usize + 1));
    let mut exists = std::collections::HashSet::new();
    urn.push(0);

    for v in 1..n as u32 {
        let time = v as u64;
        // Number of out-edges: edges_per_node in expectation, at least 1,
        // capped by the number of candidate targets.
        let base = params.edges_per_node.floor() as usize;
        let frac = params.edges_per_node - base as f64;
        let mut k = base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)));
        k = k.clamp(1, v as usize);
        let mut made = 0usize;
        let mut attempts = 0usize;
        let m_comm = params.communities;
        let use_communities = m_comm > 1;
        while made < k && attempts < 20 * k {
            attempts += 1;
            let want_in_community =
                use_communities && rng.gen_bool(params.community_bias.clamp(0.0, 1.0));
            let target = if want_in_community {
                // Prefer a hub inside the community; fall back to a uniform
                // community member (community c = id mod m, members c+k·m).
                let comm = v as usize % m_comm;
                let mut pick = None;
                if rng.gen_bool(params.pref_mix.clamp(0.0, 1.0)) {
                    for _ in 0..6 {
                        let cand = urn[rng.gen_range(0..urn.len())];
                        if cand as usize % m_comm == comm {
                            pick = Some(cand);
                            break;
                        }
                    }
                }
                match pick {
                    Some(t) => t,
                    None => {
                        let count = (v as usize).saturating_sub(comm).div_ceil(m_comm);
                        if count == 0 {
                            rng.gen_range(0..v)
                        } else {
                            (comm + m_comm * rng.gen_range(0..count)) as u32
                        }
                    }
                }
            } else if rng.gen_bool(params.pref_mix.clamp(0.0, 1.0)) && !urn.is_empty() {
                urn[rng.gen_range(0..urn.len())]
            } else {
                rng.gen_range(0..v)
            };
            let target_ok = target != v && (!params.cite_past_only || target < v);
            if !target_ok {
                continue;
            }
            if !exists.insert((v, target)) {
                continue;
            }
            timeline.record_insert(v, target, time);
            urn.push(target);
            made += 1;
            if params.reciprocity > 0.0
                && rng.gen_bool(params.reciprocity.clamp(0.0, 1.0))
                && exists.insert((target, v))
            {
                timeline.record_insert(target, v, time);
                urn.push(v);
            }
        }
        urn.push(v);
    }
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grows_requested_node_count() {
        let mut rng = StdRng::seed_from_u64(11);
        let params = LinkageParams {
            nodes: 200,
            edges_per_node: 4.0,
            ..Default::default()
        };
        let mut timeline = linkage_model(&params, &mut rng);
        let g = timeline.snapshot_at(u64::MAX);
        assert_eq!(g.node_count(), 200);
        // Roughly 4 edges per node (first node contributes none).
        let m = g.edge_count() as f64;
        assert!(m > 199.0 * 2.0 && m < 199.0 * 6.0, "m={m}");
        g.validate().unwrap();
    }

    #[test]
    fn citation_mode_only_links_to_the_past() {
        let mut rng = StdRng::seed_from_u64(12);
        let params = LinkageParams {
            nodes: 100,
            cite_past_only: true,
            reciprocity: 0.0,
            ..Default::default()
        };
        let mut timeline = linkage_model(&params, &mut rng);
        let g = timeline.snapshot_at(u64::MAX);
        for (u, v) in g.edges() {
            assert!(v < u, "citation edge ({u},{v}) points forward in time");
        }
    }

    #[test]
    fn reciprocity_creates_mutual_links() {
        let mut rng = StdRng::seed_from_u64(13);
        let params = LinkageParams {
            nodes: 300,
            edges_per_node: 5.0,
            reciprocity: 0.5,
            cite_past_only: false,
            ..Default::default()
        };
        let mut timeline = linkage_model(&params, &mut rng);
        let g = timeline.snapshot_at(u64::MAX);
        let mutual = g.edges().filter(|&(u, v)| g.has_edge(v, u)).count();
        assert!(
            mutual as f64 > 0.2 * g.edge_count() as f64,
            "expected substantial reciprocity, got {mutual}/{}",
            g.edge_count()
        );
    }

    #[test]
    fn preferential_attachment_skews_in_degree() {
        let mut rng = StdRng::seed_from_u64(14);
        let params = LinkageParams {
            nodes: 500,
            edges_per_node: 4.0,
            pref_mix: 0.9,
            ..Default::default()
        };
        let mut timeline = linkage_model(&params, &mut rng);
        let g = timeline.snapshot_at(u64::MAX);
        // A hub should exist: max in-degree well above the mean.
        let avg = g.avg_in_degree();
        assert!(
            g.max_in_degree() as f64 > 4.0 * avg,
            "max={} avg={avg}",
            g.max_in_degree()
        );
    }

    #[test]
    fn snapshots_grow_monotonically() {
        let mut rng = StdRng::seed_from_u64(15);
        let params = LinkageParams {
            nodes: 120,
            ..Default::default()
        };
        let mut timeline = linkage_model(&params, &mut rng);
        let m30 = timeline.snapshot_at(30).edge_count();
        let m60 = timeline.snapshot_at(60).edge_count();
        let m119 = timeline.snapshot_at(119).edge_count();
        assert!(m30 < m60 && m60 < m119);
    }

    #[test]
    fn update_stream_between_snapshots_is_all_insertions() {
        let mut rng = StdRng::seed_from_u64(16);
        let params = LinkageParams {
            nodes: 80,
            ..Default::default()
        };
        let mut timeline = linkage_model(&params, &mut rng);
        let ops = timeline.updates_between(40, 60);
        assert!(!ops.is_empty());
        assert!(ops
            .iter()
            .all(|op| matches!(op, incsim_graph::UpdateOp::Insert(_, _))));
    }
}

//! # incsim-datagen
//!
//! Synthetic graphs, scaled dataset stand-ins, and link-update streams for
//! the `incsim` experiments.
//!
//! The paper evaluates on three real datasets (DBLP, CITH/cit-HepPh, YOUTU)
//! plus GraphGen synthetics built with the "linkage generation model" of
//! Garg et al. None of those inputs are available offline, so this crate
//! provides behaviour-preserving substitutes (see `DESIGN.md` §3):
//!
//! * [`er::erdos_renyi`] — directed G(n, m) baseline randomness;
//! * [`linkage::linkage_model`] — preferential-attachment growth with
//!   timestamped arrivals (the linkage-model synthetic), which doubles as
//!   the snapshot source: the paper extracts DBLP snapshots by *year* and
//!   YOUTU snapshots by *video age*, i.e. by arrival time;
//! * [`presets`] — `dblp_like` / `cith_like` / `youtu_like`: scaled-down
//!   stand-ins that keep each dataset's average in-degree and growth
//!   character (citation DAG vs. related-video graph with reciprocal
//!   links);
//! * [`updates`] — random insert/delete/mixed update streams `ΔG`;
//! * [`fig1`] — a 15-node citation graph in the spirit of the paper's
//!   running example (Fig. 1; the paper does not publish its edge list, so
//!   this is a reconstruction with the same structural set-up: the inserted
//!   edge `(i, j)` lands on a node with in-degree 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod er;
pub mod fig1;
pub mod linkage;
pub mod presets;
pub mod rmat;
pub mod updates;

pub use presets::{cith_like, dblp_like, youtu_like, Dataset};

//! Directed Erdős–Rényi graphs `G(n, m)`.

use incsim_graph::DiGraph;
use rand::Rng;

/// Samples a graph of `blocks` **disjoint** ER components, component `b`
/// on the contiguous id block `[b·per, (b+1)·per)` with `edges_per_block`
/// edges. This is the workload shape of the serving layer's exactness
/// contract (`incsim::serve`): a block partition over it is
/// component-aligned, so every sharded answer is globally exact.
pub fn erdos_renyi_blocks<R: Rng>(
    blocks: usize,
    per: usize,
    edges_per_block: usize,
    rng: &mut R,
) -> DiGraph {
    let mut g = DiGraph::new(blocks * per);
    for b in 0..blocks {
        let base = (b * per) as u32;
        for (u, v) in erdos_renyi(per, edges_per_block, rng).edges() {
            g.insert_edge(base + u, base + v)
                .expect("component edges land in distinct blocks");
        }
    }
    g
}

/// Samples a directed graph with exactly `m` distinct edges chosen
/// uniformly among all `n·(n−1)` non-loop ordered pairs.
///
/// # Panics
/// Panics if `m > n·(n−1)`.
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, rng: &mut R) -> DiGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    assert!(
        m <= max_edges,
        "erdos_renyi: m={m} exceeds the {max_edges} possible edges"
    );
    let mut g = DiGraph::new(n);
    // Rejection sampling is fine while m ≪ n²; fall back to dense
    // enumeration when the request is a large fraction of all pairs.
    if m * 3 < max_edges {
        while g.edge_count() < m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                let _ = g.insert_edge(u, v);
            }
        }
    } else {
        let mut pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| (0..n as u32).filter(move |&v| v != u).map(move |v| (u, v)))
            .collect();
        // Partial Fisher–Yates for the first m pairs.
        for k in 0..m {
            let pick = rng.gen_range(k..pairs.len());
            pairs.swap(k, pick);
            let (u, v) = pairs[k];
            g.insert_edge(u, v).expect("pairs are distinct");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(50, 200, &mut rng);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 200);
        g.validate().unwrap();
    }

    #[test]
    fn dense_request_uses_enumeration_path() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi(10, 80, &mut rng); // 80 of 90 possible
        assert_eq!(g.edge_count(), 80);
        g.validate().unwrap();
    }

    #[test]
    fn no_self_loops() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi(20, 100, &mut rng);
        for v in 0..20 {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = erdos_renyi(30, 90, &mut StdRng::seed_from_u64(7));
        let g2 = erdos_renyi(30, 90, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }

    #[test]
    fn block_graph_components_stay_disjoint() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_blocks(3, 8, 16, &mut rng);
        assert_eq!(g.node_count(), 24);
        assert_eq!(g.edge_count(), 48);
        for (u, v) in g.edges() {
            assert_eq!(u / 8, v / 8, "edge ({u},{v}) crosses blocks");
        }
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_impossible_edge_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = erdos_renyi(3, 7, &mut rng);
    }
}

//! Random link-update streams `ΔG`.
//!
//! The paper's synthetic experiments (Fig. 2c) sweep edge insertions and
//! deletions of controlled size `|ΔG|`; these generators produce such
//! streams, guaranteed valid when applied in order to the given base graph.

use incsim_graph::{DiGraph, UpdateOp};
use rand::Rng;

/// Samples `count` edge insertions valid against `g` (applied in order).
///
/// Endpoints are chosen uniformly; existing and duplicate edges are
/// rejected. Self-loops are excluded (real evolving graphs rarely add
/// them, and the paper's updates are plain links).
pub fn random_insertions<R: Rng>(g: &DiGraph, count: usize, rng: &mut R) -> Vec<UpdateOp> {
    let n = g.node_count() as u32;
    assert!(n >= 2, "need at least two nodes to insert edges");
    let mut shadow = g.clone();
    let mut ops = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let budget = count.saturating_mul(100).max(1000);
    while ops.len() < count && attempts < budget {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        if shadow.insert_edge(u, v).is_ok() {
            ops.push(UpdateOp::Insert(u, v));
        }
    }
    assert_eq!(
        ops.len(),
        count,
        "could not find {count} free edge slots (graph too dense?)"
    );
    ops
}

/// Samples `count` valid edge **toggles** against an evolving shadow
/// graph, restricted to node ids in `nodes` (pass `0..n` for the whole
/// graph): each op flips the presence of a random non-loop pair and is
/// recorded in `shadow`, so the stream applies cleanly in order — and so
/// repeated calls with the same shadow keep extending one valid stream
/// (the serving benchmarks generate load this way). The insert/delete
/// mix follows the current edge density, the steady-state churn of a
/// link-evolving graph.
///
/// # Panics
/// Panics if `nodes` spans fewer than two ids or exceeds the graph.
pub fn random_toggles_in<R: Rng>(
    shadow: &mut DiGraph,
    nodes: std::ops::Range<u32>,
    count: usize,
    rng: &mut R,
) -> Vec<UpdateOp> {
    assert!(
        nodes.end - nodes.start >= 2,
        "need at least two nodes to toggle edges"
    );
    assert!(
        nodes.end as usize <= shadow.node_count(),
        "toggle block {nodes:?} exceeds the graph"
    );
    let mut ops = Vec::with_capacity(count);
    while ops.len() < count {
        let u = rng.gen_range(nodes.clone());
        let v = rng.gen_range(nodes.clone());
        if u == v {
            continue;
        }
        if shadow.has_edge(u, v) {
            shadow.remove_edge(u, v).expect("tracked as present");
            ops.push(UpdateOp::Delete(u, v));
        } else {
            shadow.insert_edge(u, v).expect("tracked as absent");
            ops.push(UpdateOp::Insert(u, v));
        }
    }
    ops
}

/// [`random_toggles_in`] spread **round-robin** across several blocks:
/// op `i` toggles inside `blocks[i % blocks.len()]`, so every block
/// receives the same op count (±1). This is the balanced ingest stream
/// of the sharded serving benchmarks — even per-shard fan-out by
/// construction.
///
/// # Panics
/// Panics if `blocks` is empty or any block is invalid for
/// [`random_toggles_in`].
pub fn random_toggles_blocks<R: Rng>(
    shadow: &mut DiGraph,
    blocks: &[std::ops::Range<u32>],
    count: usize,
    rng: &mut R,
) -> Vec<UpdateOp> {
    assert!(!blocks.is_empty(), "need at least one toggle block");
    let mut ops = Vec::with_capacity(count);
    for i in 0..count {
        ops.extend(random_toggles_in(
            shadow,
            blocks[i % blocks.len()].clone(),
            1,
            rng,
        ));
    }
    ops
}

/// Samples `count` deletions of distinct existing edges of `g`.
///
/// # Panics
/// Panics if `g` has fewer than `count` edges.
pub fn random_deletions<R: Rng>(g: &DiGraph, count: usize, rng: &mut R) -> Vec<UpdateOp> {
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    assert!(
        edges.len() >= count,
        "cannot delete {count} of {} edges",
        edges.len()
    );
    // Partial Fisher–Yates.
    for k in 0..count {
        let pick = rng.gen_range(k..edges.len());
        edges.swap(k, pick);
    }
    edges[..count]
        .iter()
        .map(|&(u, v)| UpdateOp::Delete(u, v))
        .collect()
}

/// Samples a mixed stream: each op is an insertion with probability
/// `p_insert`, else a deletion — always valid against the evolving state.
pub fn random_mixed<R: Rng>(
    g: &DiGraph,
    count: usize,
    p_insert: f64,
    rng: &mut R,
) -> Vec<UpdateOp> {
    let n = g.node_count() as u32;
    let mut shadow = g.clone();
    let mut ops = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let budget = count.saturating_mul(200).max(1000);
    while ops.len() < count && attempts < budget {
        attempts += 1;
        if rng.gen_bool(p_insert.clamp(0.0, 1.0)) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && shadow.insert_edge(u, v).is_ok() {
                ops.push(UpdateOp::Insert(u, v));
            }
        } else if shadow.edge_count() > 0 {
            // Pick a random existing edge via a random start node scan.
            let edges: Vec<(u32, u32)> = shadow.edges().collect();
            let (u, v) = edges[rng.gen_range(0..edges.len())];
            shadow.remove_edge(u, v).expect("edge listed as existing");
            ops.push(UpdateOp::Delete(u, v));
        }
    }
    assert_eq!(ops.len(), count, "mixed stream generation starved");
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> DiGraph {
        DiGraph::from_edges(20, &(0..19u32).map(|v| (v, v + 1)).collect::<Vec<_>>())
    }

    #[test]
    fn insertions_apply_cleanly() {
        let g = base();
        let mut rng = StdRng::seed_from_u64(5);
        let ops = random_insertions(&g, 30, &mut rng);
        assert_eq!(ops.len(), 30);
        let mut h = g.clone();
        for op in &ops {
            op.apply(&mut h).unwrap();
        }
        assert_eq!(h.edge_count(), g.edge_count() + 30);
    }

    #[test]
    fn deletions_apply_cleanly_and_are_distinct() {
        let g = base();
        let mut rng = StdRng::seed_from_u64(6);
        let ops = random_deletions(&g, 10, &mut rng);
        let mut h = g.clone();
        for op in &ops {
            op.apply(&mut h).unwrap();
        }
        assert_eq!(h.edge_count(), g.edge_count() - 10);
    }

    #[test]
    fn mixed_stream_is_valid_in_order() {
        let g = base();
        let mut rng = StdRng::seed_from_u64(7);
        let ops = random_mixed(&g, 40, 0.6, &mut rng);
        let mut h = g.clone();
        for op in &ops {
            op.apply(&mut h).unwrap();
        }
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, UpdateOp::Insert(_, _)))
            .count();
        assert!(inserts > 10 && inserts < 40, "inserts={inserts}");
    }

    #[test]
    #[should_panic(expected = "cannot delete")]
    fn deleting_more_than_edges_panics() {
        let g = base();
        let mut rng = StdRng::seed_from_u64(8);
        let _ = random_deletions(&g, 1000, &mut rng);
    }

    #[test]
    fn toggles_track_the_shadow_and_respect_blocks() {
        let g = base();
        let mut shadow = g.clone();
        let mut rng = StdRng::seed_from_u64(10);
        // Two successive calls extend one valid stream.
        let mut ops = random_toggles_in(&mut shadow, 0..10, 15, &mut rng);
        ops.extend(random_toggles_in(&mut shadow, 2..9, 10, &mut rng));
        let mut h = g.clone();
        for op in &ops {
            op.apply(&mut h).unwrap();
        }
        assert_eq!(&h, &shadow, "shadow tracks exactly the applied stream");
        for op in &ops[15..] {
            let (u, v) = op.endpoints();
            assert!(
                (2..9).contains(&u) && (2..9).contains(&v),
                "block respected"
            );
        }
        assert!(ops.iter().any(|o| matches!(o, UpdateOp::Delete(..))));
        assert!(ops.iter().any(|o| matches!(o, UpdateOp::Insert(..))));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn toggles_reject_degenerate_blocks() {
        let mut shadow = base();
        let mut rng = StdRng::seed_from_u64(11);
        let _ = random_toggles_in(&mut shadow, 3..4, 1, &mut rng);
    }

    #[test]
    fn no_self_loops_in_insertions() {
        let g = base();
        let mut rng = StdRng::seed_from_u64(9);
        for op in random_insertions(&g, 50, &mut rng) {
            let (u, v) = op.endpoints();
            assert_ne!(u, v);
        }
    }
}

//! R-MAT recursive-matrix graph generator (Chakrabarti, Zhan & Faloutsos,
//! SDM 2004) — the standard synthetic for power-law graph benchmarks,
//! complementing the linkage model with a second, structurally different
//! source of skewed degree distributions.

use incsim_graph::DiGraph;
use rand::Rng;

/// R-MAT quadrant probabilities. Must be positive and sum to ~1.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left quadrant probability (the "community core"); the classic
    /// setting is 0.57.
    pub a: f64,
    /// Top-right probability (classic 0.19).
    pub b: f64,
    /// Bottom-left probability (classic 0.19).
    pub c: f64,
    /// Noise added per recursion level to smooth the degree staircase.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }
}

/// Generates an R-MAT graph with `2^scale` nodes and `edges` distinct
/// edges (self-loops excluded, duplicates rejected).
///
/// # Panics
/// Panics if the parameters are not a probability split, or if `edges`
/// exceeds half the possible pairs (duplicate rejection would stall).
pub fn rmat<R: Rng>(scale: u32, edges: usize, params: &RmatParams, rng: &mut R) -> DiGraph {
    let d = 1.0 - params.a - params.b - params.c;
    assert!(
        params.a > 0.0 && params.b >= 0.0 && params.c >= 0.0 && d >= 0.0,
        "R-MAT quadrant probabilities must be a valid split, got d={d}"
    );
    let n = 1usize << scale;
    let max_edges = n * (n - 1);
    assert!(
        edges <= max_edges / 2,
        "requested {edges} edges of {max_edges} possible — too dense for rejection sampling"
    );
    let mut g = DiGraph::new(n);
    let mut attempts = 0usize;
    let budget = edges.saturating_mul(100).max(10_000);
    while g.edge_count() < edges && attempts < budget {
        attempts += 1;
        let (mut lo_u, mut hi_u) = (0usize, n);
        let (mut lo_v, mut hi_v) = (0usize, n);
        for _ in 0..scale {
            // Jitter the quadrant split per level.
            let mut jitter = |p: f64| {
                (p * (1.0 - params.noise + 2.0 * params.noise * rng.gen::<f64>())).max(1e-9)
            };
            let (pa, pb, pc, pd) = (
                jitter(params.a),
                jitter(params.b),
                jitter(params.c),
                jitter(d.max(1e-9)),
            );
            let total = pa + pb + pc + pd;
            let roll = rng.gen::<f64>() * total;
            let (right, down) = if roll < pa {
                (false, false)
            } else if roll < pa + pb {
                (true, false)
            } else if roll < pa + pb + pc {
                (false, true)
            } else {
                (true, true)
            };
            let mid_u = (lo_u + hi_u) / 2;
            let mid_v = (lo_v + hi_v) / 2;
            if down {
                lo_u = mid_u;
            } else {
                hi_u = mid_u;
            }
            if right {
                lo_v = mid_v;
            } else {
                hi_v = mid_v;
            }
        }
        let (u, v) = (lo_u as u32, lo_v as u32);
        if u != v {
            let _ = g.insert_edge(u, v);
        }
    }
    assert_eq!(
        g.edge_count(),
        edges,
        "R-MAT sampling starved after {attempts} attempts"
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = rmat(8, 1000, &RmatParams::default(), &mut rng);
        assert_eq!(g.node_count(), 256);
        assert_eq!(g.edge_count(), 1000);
        g.validate().unwrap();
    }

    #[test]
    fn default_parameters_produce_skew() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = rmat(9, 2000, &RmatParams::default(), &mut rng);
        // Power-law-ish: the max in-degree dwarfs the average.
        let avg = g.avg_in_degree();
        assert!(
            g.max_in_degree() as f64 > 5.0 * avg,
            "max {} vs avg {avg}",
            g.max_in_degree()
        );
    }

    #[test]
    fn uniform_parameters_produce_no_skew() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            noise: 0.0,
        };
        let g = rmat(9, 2000, &params, &mut rng);
        let avg = g.avg_in_degree();
        assert!(
            (g.max_in_degree() as f64) < 6.0 * avg,
            "uniform R-MAT should look Erdős–Rényi-ish: max {} avg {avg}",
            g.max_in_degree()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = rmat(
            7,
            300,
            &RmatParams::default(),
            &mut StdRng::seed_from_u64(5),
        );
        let b = rmat(
            7,
            300,
            &RmatParams::default(),
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = rmat(6, 200, &RmatParams::default(), &mut rng);
        for v in 0..64 {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    #[should_panic(expected = "too dense")]
    fn rejects_overdense_request() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = rmat(3, 40, &RmatParams::default(), &mut rng);
    }
}

//! A 15-node citation graph in the spirit of the paper's Fig. 1.
//!
//! The paper's running example is a 15-node fraction of DBLP with nodes
//! labelled `a`–`o` and an inserted edge `(i, j)`; its exact edge list is
//! not published. This module reconstructs a graph with the same structural
//! set-up that the example's calculations rely on:
//!
//! * node `j` has old in-degree 2 with in-neighbours `{h, k}` (so the
//!   insertion exercises the `d_j > 0` branch with `u = e_j/3`, exactly as
//!   in the paper's Example 4);
//! * the old similarity column `[S]_{:,i}` is supported on a small cluster
//!   around `{f, i, j}`;
//! * distant pairs (`(m,l)`, `(k,g)`, `(k,h)`) have nonzero scores that an
//!   exact incremental algorithm must leave untouched — the grey rows of
//!   the Fig. 1 table.

use incsim_graph::DiGraph;

/// The inserted edge `(i, j)` of the running example.
pub const INSERTED_EDGE: (u32, u32) = (8, 9);

/// The damping factor the running example uses.
pub const FIG1_DAMPING: f64 = 0.8;

/// Maps a node id (0–14) to its letter label (`a`–`o`).
pub fn node_label(v: u32) -> char {
    assert!(v < 15, "Fig. 1 graph has nodes 0..15");
    (b'a' + v as u8) as char
}

/// Maps a letter label (`a`–`o`) to its node id.
pub fn label_index(label: char) -> u32 {
    let v = (label as u8).wrapping_sub(b'a');
    assert!(v < 15, "label must be a..o");
    v as u32
}

/// Builds the 15-node citation graph (see module docs).
pub fn fig1_graph() -> DiGraph {
    let e = |s: char, d: char| (label_index(s), label_index(d));
    DiGraph::from_edges(
        15,
        &[
            // a and b share the in-neighbourhood {c, e}.
            e('c', 'a'),
            e('e', 'a'),
            e('c', 'b'),
            e('e', 'b'),
            // d is cited only by a.
            e('a', 'd'),
            // g, k, h share citers (b; h also cited by d).
            e('b', 'g'),
            e('b', 'k'),
            e('b', 'h'),
            e('d', 'h'),
            // The f/i/j cluster: f←{g,h}, i←{g,k}, j←{h,k}.
            e('g', 'f'),
            e('h', 'f'),
            e('g', 'i'),
            e('k', 'i'),
            e('h', 'j'),
            e('k', 'j'),
            // The far component l/m cited by n and o.
            e('n', 'l'),
            e('o', 'l'),
            e('n', 'm'),
            e('o', 'm'),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_j_has_indegree_two_with_h_and_k() {
        let g = fig1_graph();
        let (_, j) = INSERTED_EDGE;
        assert_eq!(g.in_degree(j), 2);
        assert_eq!(
            g.in_neighbors(j),
            &[label_index('h'), label_index('k')],
            "I(j) must be {{h, k}} as in Example 4"
        );
    }

    #[test]
    fn inserted_edge_is_absent_in_old_graph() {
        let g = fig1_graph();
        let (i, j) = INSERTED_EDGE;
        assert!(!g.has_edge(i, j));
    }

    #[test]
    fn labels_roundtrip() {
        for v in 0..15u32 {
            assert_eq!(label_index(node_label(v)), v);
        }
        assert_eq!(node_label(8), 'i');
        assert_eq!(node_label(9), 'j');
    }

    #[test]
    fn graph_shape() {
        let g = fig1_graph();
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 19);
        g.validate().unwrap();
    }

    #[test]
    fn far_component_is_disconnected_from_ij() {
        let g = fig1_graph();
        // l, m, n, o have no path to/from the f/i/j cluster.
        for far in ['l', 'm', 'n', 'o'] {
            let v = label_index(far);
            for near in ['f', 'i', 'j'] {
                let u = label_index(near);
                assert!(!g.has_edge(v, u) && !g.has_edge(u, v));
            }
        }
    }
}

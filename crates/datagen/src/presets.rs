//! Scaled stand-ins for the paper's three real datasets.
//!
//! | paper dataset | nodes | edges | avg-d | character |
//! |---------------|-------|-------|-------|-----------|
//! | DBLP (co-citation snapshots by year) | 13,634 | 93,560 | 6.9 | citation DAG |
//! | CITH (cit-HepPh from e-Arxiv) | 34,546 | 421,578 | 12.2 | citation DAG, denser |
//! | YOUTU (related-video snapshots by age) | 178,470 | 953,534 | 5.3 | reciprocal links |
//!
//! The stand-ins scale `n` down ~7–45× while keeping each dataset's average
//! in-degree and growth character, which are what drive the paper's
//! measured quantities (|AFF| sparsity, pruning effectiveness, Inc-SVD
//! rank behaviour). Scaling rationale is recorded in `DESIGN.md` §3; the
//! paper-vs-measured comparison lives in `EXPERIMENTS.md`.

use crate::linkage::{linkage_model, LinkageParams};
use incsim_graph::{DiGraph, EvolvingGraph, UpdateOp};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named evolving dataset with canonical snapshot points.
pub struct Dataset {
    /// Display name matching the paper's figures.
    pub name: &'static str,
    /// The timestamped edge timeline.
    pub timeline: EvolvingGraph,
    /// Timestamp of the base snapshot used as the "old graph" `G`.
    pub base_time: u64,
    /// Snapshot timestamps after `base_time` (the `|E| + |ΔE|` x-axis).
    pub increment_times: Vec<u64>,
}

impl Dataset {
    /// The base graph `G` (the paper's "old graph" that SimRank is
    /// precomputed on).
    pub fn base_graph(&mut self) -> DiGraph {
        self.timeline.snapshot_at(self.base_time)
    }

    /// Update stream from the base snapshot up to `increment_times[idx]`.
    pub fn updates_to_increment(&mut self, idx: usize) -> Vec<UpdateOp> {
        let t1 = self.increment_times[idx];
        self.timeline.updates_between(self.base_time, t1)
    }

    /// Number of nodes in the universe.
    pub fn node_count(&self) -> usize {
        self.timeline.node_count()
    }
}

/// Builds a dataset from growth parameters: the base snapshot holds
/// `base_fraction` of the nodes; the rest arrive across `increments`
/// equal slices.
fn preset(
    name: &'static str,
    params: LinkageParams,
    seed: u64,
    base_fraction: f64,
    increments: usize,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let timeline = linkage_model(&params, &mut rng);
    let n = params.nodes as u64;
    let base_time = (n as f64 * base_fraction) as u64;
    let remaining = n.saturating_sub(base_time);
    let step = (remaining / increments as u64).max(1);
    let increment_times = (1..=increments as u64)
        .map(|k| (base_time + k * step).min(n))
        .collect();
    Dataset {
        name,
        timeline,
        base_time,
        increment_times,
    }
}

/// DBLP-like citation graph: n=2,000, m≈13.7K, avg-d ≈ 6.9, pure DAG.
pub fn dblp_like() -> Dataset {
    preset(
        "DBLP",
        LinkageParams {
            nodes: 2_000,
            edges_per_node: 6.9,
            pref_mix: 0.65,
            reciprocity: 0.0,
            cite_past_only: true,
            communities: 0,
            community_bias: 0.0,
        },
        0xDB1F,
        0.85,
        5,
    )
}

/// CITH-like (cit-HepPh) citation graph: n=2,500, m≈30.5K, avg-d ≈ 12.2.
pub fn cith_like() -> Dataset {
    preset(
        "CitH",
        LinkageParams {
            nodes: 2_500,
            edges_per_node: 12.2,
            pref_mix: 0.75,
            reciprocity: 0.0,
            cite_past_only: true,
            communities: 0,
            community_bias: 0.0,
        },
        0xC17A,
        0.94,
        5,
    )
}

/// YOUTU-like related-video graph: n=6,000, m≈32K, avg-d ≈ 5.3, with
/// reciprocal related-video links. The largest preset: the paper's point
/// on YOUTU is that update locality grows with scale, so this stand-in is
/// deliberately the largest of the trio.
pub fn youtu_like() -> Dataset {
    preset(
        "YouTu",
        LinkageParams {
            nodes: 6_000,
            edges_per_node: 4.4, // reciprocity pushes the realised avg to ≈5.3
            pref_mix: 0.6,
            reciprocity: 0.2,
            cite_past_only: false,
            // Related-video graphs are strongly clustered by topic; the
            // clustering is what keeps SimRank's affected areas local.
            communities: 40,
            community_bias: 0.85,
        },
        0x70_07_0B,
        0.973,
        5,
    )
}

/// A smaller variant of any preset for fast tests (same shape, fewer nodes).
pub fn mini(name: &'static str, nodes: usize, seed: u64) -> Dataset {
    preset(
        name,
        LinkageParams {
            nodes,
            edges_per_node: 5.0,
            pref_mix: 0.7,
            reciprocity: 0.0,
            cite_past_only: true,
            communities: 0,
            community_bias: 0.0,
        },
        seed,
        0.8,
        3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dblp_like_matches_target_statistics() {
        let mut d = dblp_like();
        let g = d.timeline.snapshot_at(u64::MAX);
        assert_eq!(g.node_count(), 2000);
        let avg = g.avg_in_degree();
        assert!(
            (5.5..=7.5).contains(&avg),
            "DBLP-like avg in-degree {avg} not near 6.9"
        );
    }

    #[test]
    fn cith_like_is_denser_than_dblp_like() {
        let mut c = cith_like();
        let mut d = dblp_like();
        let gc = c.timeline.snapshot_at(u64::MAX);
        let gd = d.timeline.snapshot_at(u64::MAX);
        assert!(gc.avg_in_degree() > 1.4 * gd.avg_in_degree());
    }

    #[test]
    fn youtu_like_has_reciprocal_links() {
        let mut y = youtu_like();
        let g = y.timeline.snapshot_at(u64::MAX);
        let mutual = g.edges().filter(|&(u, v)| g.has_edge(v, u)).count();
        assert!(mutual > 0, "expected reciprocal related-video links");
        let avg = g.avg_in_degree();
        assert!((4.0..=6.5).contains(&avg), "YouTu-like avg in-degree {avg}");
    }

    #[test]
    fn increments_produce_applicable_update_streams() {
        let mut d = mini("Mini", 150, 42);
        let mut g = d.base_graph();
        let base_edges = g.edge_count();
        let ops = d.updates_to_increment(0);
        assert!(!ops.is_empty());
        for op in &ops {
            op.apply(&mut g).expect("stream must apply cleanly");
        }
        assert!(g.edge_count() > base_edges);
        // Must land exactly on the snapshot at that increment.
        let expect = d.timeline.snapshot_at(d.increment_times[0]);
        assert_eq!(g, expect);
    }

    #[test]
    fn increment_times_are_increasing() {
        let d = dblp_like();
        let t = &d.increment_times;
        assert_eq!(t.len(), 5);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
        assert!(d.base_time < t[0]);
    }

    #[test]
    fn presets_are_deterministic() {
        let mut a = dblp_like();
        let mut b = dblp_like();
        assert_eq!(
            a.timeline.snapshot_at(u64::MAX),
            b.timeline.snapshot_at(u64::MAX)
        );
    }
}

//! Wall-clock measurement and table formatting helpers.

use std::time::{Duration, Instant};

/// A tiny stopwatch for the experiment harness.
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts and returns the lap time.
    pub fn lap(&mut self) -> Duration {
        let e = self.started.elapsed();
        self.started = Instant::now();
        e
    }
}

/// Formats a duration like the paper's tables (`83.7s`, `937.4s`, `12ms`).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Formats bytes like the paper's Fig. 3 (`70.3MB`, `3.12GB`).
pub fn fmt_bytes(bytes: usize) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.2}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic_and_laps_restart() {
        // Ordering-only assertions: wall-clock magnitudes are unreliable
        // on loaded CI runners, but `Instant` is guaranteed monotonic.
        let mut sw = Stopwatch::start();
        let t1 = sw.elapsed();
        let t2 = sw.elapsed();
        assert!(t2 >= t1, "elapsed must be non-decreasing");
        assert!(sw.secs() >= 0.0);

        // A lap reads at least as much time as any earlier elapsed() and
        // restarts the clock, so post-lap readings stay monotonic too.
        let t3 = sw.elapsed();
        let lap = sw.lap();
        assert!(lap >= t3, "lap covers everything elapsed before it");
        let t4 = sw.elapsed();
        let t5 = sw.elapsed();
        assert!(t5 >= t4, "restarted clock must still be monotonic");

        // The second lap starts from the restart, so it too covers every
        // reading taken since then.
        let lap2 = sw.lap();
        assert!(lap2 >= t5, "second lap covers post-restart readings");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(120)), "120s");
        assert_eq!(fmt_duration(Duration::from_secs_f64(83.7)), "83.7s");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0µs");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(70_300_000), "70.3MB");
        assert_eq!(fmt_bytes(3_120_000_000), "3.12GB");
        assert_eq!(fmt_bytes(2_048), "2.0KB");
    }
}

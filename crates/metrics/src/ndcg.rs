//! NDCG@k over top-k node pairs — the paper's Exp-4 exactness metric.
//!
//! The paper "adopt\[s\] the NDCG metrics to assess top-30 most similar
//! node-pairs", using a 35-iteration batch run as the ideal ranking. Here:
//! the *baseline* matrix defines both the ideal ordering and the relevance
//! of every pair (its baseline score); a candidate matrix is scored by the
//! discounted cumulative gain of *its own* top-k pairs, measured in
//! baseline relevance.

use crate::topk::top_k_pairs;
use incsim_linalg::DenseMatrix;

/// Computes NDCG@k of `candidate`'s top-k pair ranking against the ideal
/// ranking induced by `baseline`.
///
/// Returns 1.0 when the candidate's top-k pairs carry the same baseline
/// relevance mass, in order, as the ideal top-k (in particular when the
/// rankings agree); values near 0 mean the candidate surfaces pairs the
/// baseline considers irrelevant.
///
/// # Panics
/// Panics if the matrices have different shapes or `k == 0`.
///
/// ```
/// use incsim_linalg::DenseMatrix;
/// use incsim_metrics::ndcg_at_k;
///
/// let mut baseline = DenseMatrix::zeros(3, 3);
/// baseline.set(1, 2, 0.9);
/// baseline.set(2, 1, 0.9);
/// // A candidate with the same ranking scores 1.0 …
/// assert_eq!(ndcg_at_k(&baseline, &baseline, 2), 1.0);
/// // … an all-zero candidate surfaces irrelevant pairs first (its
/// // deterministic top-1 is (0,1), which the baseline scores 0).
/// let flat = DenseMatrix::zeros(3, 3);
/// assert!(ndcg_at_k(&baseline, &flat, 1) < 1e-12);
/// ```
pub fn ndcg_at_k(baseline: &DenseMatrix, candidate: &DenseMatrix, k: usize) -> f64 {
    assert!(k > 0, "ndcg_at_k requires k >= 1");
    assert_eq!(baseline.rows(), candidate.rows(), "shape mismatch");
    assert_eq!(baseline.cols(), candidate.cols(), "shape mismatch");

    let ideal = top_k_pairs(baseline, k);
    let got = top_k_pairs(candidate, k);

    let dcg: f64 = got
        .iter()
        .enumerate()
        .map(|(rank, p)| {
            let rel = baseline.get(p.a as usize, p.b as usize).max(0.0);
            gain(rel) / (rank as f64 + 2.0).log2()
        })
        .sum();
    let idcg: f64 = ideal
        .iter()
        .enumerate()
        .map(|(rank, p)| gain(p.score.max(0.0)) / (rank as f64 + 2.0).log2())
        .sum();
    if idcg == 0.0 {
        // Baseline has no relevant pairs at all: any ranking is "perfect".
        1.0
    } else {
        (dcg / idcg).clamp(0.0, 1.0)
    }
}

/// Exponential gain, standard for graded relevance in (0, 1].
#[inline]
fn gain(rel: f64) -> f64 {
    (2.0f64).powf(rel) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(entries: &[(usize, usize, f64)], n: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(n, n);
        for &(a, b, v) in entries {
            m.set(a, b, v);
            m.set(b, a, v);
        }
        m
    }

    #[test]
    fn identical_rankings_score_one() {
        let s = mat(&[(0, 1, 0.9), (1, 2, 0.5), (0, 3, 0.3)], 5);
        assert!((ndcg_at_k(&s, &s, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perturbed_scores_with_same_order_score_one() {
        let base = mat(&[(0, 1, 0.9), (1, 2, 0.5), (0, 3, 0.3)], 5);
        let cand = mat(&[(0, 1, 0.8), (1, 2, 0.45), (0, 3, 0.29)], 5);
        assert!((ndcg_at_k(&base, &cand, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_top_pairs_score_below_one() {
        let base = mat(&[(0, 1, 0.9), (1, 2, 0.5)], 6);
        // Candidate promotes an irrelevant pair to the top.
        let cand = mat(&[(4, 5, 0.99), (0, 1, 0.1)], 6);
        let score = ndcg_at_k(&base, &cand, 2);
        assert!(score < 0.9, "score={score}");
        assert!(score > 0.0);
    }

    #[test]
    fn completely_disjoint_ranking_scores_zero() {
        let base = mat(&[(0, 1, 1.0), (2, 3, 0.8)], 8);
        let cand = mat(&[(4, 5, 1.0), (6, 7, 0.8)], 8);
        let score = ndcg_at_k(&base, &cand, 2);
        assert!(score < 1e-12, "score={score}");
    }

    #[test]
    fn zero_baseline_scores_one() {
        let base = DenseMatrix::zeros(4, 4);
        let cand = mat(&[(0, 1, 0.5)], 4);
        assert_eq!(ndcg_at_k(&base, &cand, 2), 1.0);
    }

    #[test]
    fn swapped_order_discounts() {
        // Baseline: (0,1) ≫ (2,3). Candidate ranks them in reverse order.
        let base = mat(&[(0, 1, 0.9), (2, 3, 0.2)], 6);
        let cand = mat(&[(0, 1, 0.2), (2, 3, 0.9)], 6);
        let score = ndcg_at_k(&base, &cand, 2);
        assert!(score < 1.0 - 1e-6, "score={score}");
        assert!(score > 0.5);
    }
}

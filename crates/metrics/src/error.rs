//! Error norms between score matrices.

use incsim_linalg::norms::diff_fro;
use incsim_linalg::DenseMatrix;

/// Maximum absolute entry-wise error `‖A − B‖_max`.
pub fn max_error(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    a.max_abs_diff(b)
}

/// Frobenius error `‖A − B‖_F`.
pub fn frobenius_error(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    diff_fro(a, b)
}

/// Mean absolute error over all entries.
pub fn mean_abs_error(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    assert_eq!(a.rows(), b.rows(), "shape mismatch");
    assert_eq!(a.cols(), b.cols(), "shape mismatch");
    let total: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .sum();
    total / (a.rows() * a.cols()).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_on_known_matrices() {
        let a = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let b = DenseMatrix::from_rows(&[&[0.0, 0.0], &[0.0, 0.0]]);
        assert_eq!(max_error(&a, &b), 1.0);
        assert!((frobenius_error(&a, &b) - 2f64.sqrt()).abs() < 1e-12);
        assert!((mean_abs_error(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_matrices_have_zero_error() {
        let a = DenseMatrix::identity(3);
        assert_eq!(max_error(&a, &a), 0.0);
        assert_eq!(frobenius_error(&a, &a), 0.0);
        assert_eq!(mean_abs_error(&a, &a), 0.0);
    }
}

//! # incsim-metrics
//!
//! Evaluation apparatus for the `incsim` experiments:
//!
//! * [`ndcg`] — NDCG@k over top-k most-similar node pairs, the exactness
//!   metric of the paper's Exp-4 (Fig. 4 reports NDCG₃₀ against a
//!   35-iteration batch baseline);
//! * [`error`] — max / Frobenius error between score matrices;
//! * [`topk`] — top-k node-pair extraction from a symmetric score matrix;
//! * [`timing`] — a tiny stopwatch + human-readable duration/byte
//!   formatting for the experiment tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ndcg;
pub mod timing;
pub mod topk;

pub use error::{frobenius_error, max_error, mean_abs_error};
pub use ndcg::ndcg_at_k;
pub use timing::Stopwatch;
pub use topk::{top_k_pairs, ScoredPair};

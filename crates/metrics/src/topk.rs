//! Top-k node-pair extraction from symmetric score matrices.

use incsim_linalg::DenseMatrix;

/// A node pair with its similarity score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPair {
    /// First node (always `< b`).
    pub a: u32,
    /// Second node.
    pub b: u32,
    /// Similarity score.
    pub score: f64,
}

/// Returns the `k` highest-scoring **off-diagonal** pairs `(a, b)` with
/// `a < b`, sorted by descending score (ties broken by `(a, b)` for
/// determinism).
///
/// Diagonal entries are excluded: every node is trivially most similar to
/// itself, so top-k similarity search (the paper's Exp-4) ranks distinct
/// pairs only.
pub fn top_k_pairs(s: &DenseMatrix, k: usize) -> Vec<ScoredPair> {
    assert_eq!(s.rows(), s.cols(), "top_k_pairs expects a square matrix");
    let n = s.rows();
    // Binary-heap selection keeps this O(n² log k) instead of sorting n².
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct MinEntry(ScoredPair);
    impl Eq for MinEntry {}
    impl PartialOrd for MinEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for MinEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: smallest score at the top of the heap. Ties order by
            // (a, b) DESC here so the lexicographically-smallest pair wins.
            other
                .0
                .score
                .partial_cmp(&self.0.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| (other.0.a, other.0.b).cmp(&(self.0.a, self.0.b)))
        }
    }

    let mut heap: BinaryHeap<MinEntry> = BinaryHeap::with_capacity(k + 1);
    for a in 0..n {
        for b in (a + 1)..n {
            let pair = ScoredPair {
                a: a as u32,
                b: b as u32,
                score: s.get(a, b),
            };
            if heap.len() < k {
                heap.push(MinEntry(pair));
            } else if let Some(top) = heap.peek() {
                let worse = pair.score > top.0.score
                    || (pair.score == top.0.score && (pair.a, pair.b) < (top.0.a, top.0.b));
                if worse {
                    heap.pop();
                    heap.push(MinEntry(pair));
                }
            }
        }
    }
    let mut out: Vec<ScoredPair> = heap.into_iter().map(|e| e.0).collect();
    out.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        let mut m = DenseMatrix::identity(4);
        m.set(0, 1, 0.9);
        m.set(1, 0, 0.9);
        m.set(0, 2, 0.5);
        m.set(2, 0, 0.5);
        m.set(1, 3, 0.7);
        m.set(3, 1, 0.7);
        m
    }

    #[test]
    fn returns_descending_offdiagonal_pairs() {
        let top = top_k_pairs(&sample(), 2);
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].a, top[0].b), (0, 1));
        assert_eq!(top[0].score, 0.9);
        assert_eq!((top[1].a, top[1].b), (1, 3));
    }

    #[test]
    fn k_larger_than_pairs_returns_all() {
        let top = top_k_pairs(&sample(), 100);
        assert_eq!(top.len(), 6); // C(4,2)
                                  // Last ones are the zero pairs.
        assert_eq!(top[5].score, 0.0);
    }

    #[test]
    fn diagonal_is_excluded() {
        let top = top_k_pairs(&sample(), 6);
        assert!(top.iter().all(|p| p.a != p.b));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let m = DenseMatrix::zeros(5, 5);
        let t1 = top_k_pairs(&m, 3);
        let t2 = top_k_pairs(&m, 3);
        assert_eq!(t1, t2);
        // Lexicographically smallest pairs win ties.
        assert_eq!((t1[0].a, t1[0].b), (0, 1));
        assert_eq!((t1[1].a, t1[1].b), (0, 2));
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k_pairs(&sample(), 0).is_empty());
    }
}

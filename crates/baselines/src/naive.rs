//! Batch SimRank in the classic *iterative form* (Jeh & Widom 2002), plus
//! Lizorkin et al.'s partial-sums speed-up.
//!
//! The iterative form pins the diagonal to `s(a,a) = 1` after every sweep
//! (Eq. 1 of the paper); the matrix form maintained by `incsim-core` does
//! not — its diagonal carries `(1−C)·I` instead. The two are documented
//! companions, not interchangeable outputs; this module exists as the
//! classic reference semantics and as an independent cross-check of the
//! recurrence evaluation.

use incsim_graph::DiGraph;
use incsim_linalg::DenseMatrix;

/// Jeh & Widom's direct iteration (`O(K·d²·n²)`).
///
/// `s_0 = I`; for `a ≠ b`,
/// `s_{k+1}(a,b) = C/(|I(a)|·|I(b)|) · Σ_{i∈I(a)} Σ_{j∈I(b)} s_k(i,j)`,
/// zero when either in-neighbourhood is empty; `s(a,a) = 1` throughout.
///
/// Intended for small graphs (ground truth in tests); use
/// [`partial_sums_simrank`] for anything larger.
pub fn naive_simrank(g: &DiGraph, c: f64, k: usize) -> DenseMatrix {
    let n = g.node_count();
    let mut s = DenseMatrix::identity(n);
    let mut next = DenseMatrix::zeros(n, n);
    for _ in 0..k {
        next.fill_zero();
        for a in 0..n {
            next.set(a, a, 1.0);
            for b in (a + 1)..n {
                let ia = g.in_neighbors(a as u32);
                let ib = g.in_neighbors(b as u32);
                if ia.is_empty() || ib.is_empty() {
                    continue;
                }
                let mut acc = 0.0;
                for &i in ia {
                    for &j in ib {
                        acc += s.get(i as usize, j as usize);
                    }
                }
                let val = c * acc / (ia.len() as f64 * ib.len() as f64);
                next.set(a, b, val);
                next.set(b, a, val);
            }
        }
        std::mem::swap(&mut s, &mut next);
    }
    s
}

/// Lizorkin et al.'s partial-sums memoisation (`O(K·d·n²)`).
///
/// Identical output to [`naive_simrank`] — the double sum over
/// `I(a) × I(b)` is factored through per-node partial sums
/// `P_b[i] = Σ_{j∈I(b)} s_k(i,j)`, each shared by all pairs `(·, b)`.
pub fn partial_sums_simrank(g: &DiGraph, c: f64, k: usize) -> DenseMatrix {
    let n = g.node_count();
    let mut s = DenseMatrix::identity(n);
    let mut partial = DenseMatrix::zeros(n, n); // partial[b][i] = P_b[i]
    let mut next = DenseMatrix::zeros(n, n);
    for _ in 0..k {
        // P_b = Σ_{j ∈ I(b)} s_k[:, j]  (rows of s by symmetry).
        partial.fill_zero();
        for b in 0..n {
            let row = partial.row_mut(b);
            for &j in g.in_neighbors(b as u32) {
                incsim_linalg::vecops::axpy(1.0, s.row(j as usize), row);
            }
        }
        next.fill_zero();
        for a in 0..n {
            next.set(a, a, 1.0);
            let ia = g.in_neighbors(a as u32);
            if ia.is_empty() {
                continue;
            }
            for b in (a + 1)..n {
                let ib = g.in_neighbors(b as u32);
                if ib.is_empty() {
                    continue;
                }
                let mut acc = 0.0;
                let pb = partial.row(b);
                for &i in ia {
                    acc += pb[i as usize];
                }
                let val = c * acc / (ia.len() as f64 * ib.len() as f64);
                next.set(a, b, val);
                next.set(b, a, val);
            }
        }
        std::mem::swap(&mut s, &mut next);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> DiGraph {
        DiGraph::from_edges(6, &[(0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 2), (1, 4)])
    }

    #[test]
    fn partial_sums_equals_naive() {
        let g = fixture();
        for k in [1, 3, 8] {
            let a = naive_simrank(&g, 0.6, k);
            let b = partial_sums_simrank(&g, 0.6, k);
            assert!(
                a.max_abs_diff(&b) < 1e-12,
                "partial sums diverged at k={k}: {}",
                a.max_abs_diff(&b)
            );
        }
    }

    #[test]
    fn diagonal_is_pinned_to_one() {
        let s = naive_simrank(&fixture(), 0.8, 10);
        for a in 0..6 {
            assert_eq!(s.get(a, a), 1.0);
        }
    }

    #[test]
    fn iterative_form_hand_computed_two_node_case() {
        // 0→2←1 : s(0,1)=0 (no in-neighbors), s(2,2)=1,
        // and for the pair (0,1) both in-sets empty ⇒ 0.
        // Add 2→0, 2→1: then I(0)=I(1)={2} ⇒ s(0,1) = C·s(2,2) = C.
        let g = DiGraph::from_edges(3, &[(2, 0), (2, 1)]);
        let s = naive_simrank(&g, 0.8, 5);
        assert!((s.get(0, 1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_in_neighbourhood_scores_zero() {
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]);
        let s = naive_simrank(&g, 0.6, 5);
        // Node 0 and 1 have no in-neighbors: s(0,1) = 0.
        assert_eq!(s.get(0, 1), 0.0);
        // s(0,2) = 0 too (I(0) empty).
        assert_eq!(s.get(0, 2), 0.0);
    }

    #[test]
    fn symmetric_pair_scores() {
        let g = fixture();
        let s = partial_sums_simrank(&g, 0.6, 10);
        assert!(s.is_symmetric(1e-12));
    }

    #[test]
    fn scores_within_unit_interval() {
        let s = partial_sums_simrank(&fixture(), 0.8, 15);
        for a in 0..6 {
            for b in 0..6 {
                let v = s.get(a, b);
                assert!((0.0..=1.0 + 1e-12).contains(&v), "s({a},{b})={v}");
            }
        }
    }

    #[test]
    fn monotone_in_k() {
        // The iterates are non-decreasing entrywise for this recurrence.
        let g = fixture();
        let s3 = naive_simrank(&g, 0.6, 3);
        let s6 = naive_simrank(&g, 0.6, 6);
        for a in 0..6 {
            for b in 0..6 {
                assert!(s6.get(a, b) + 1e-14 >= s3.get(a, b));
            }
        }
    }
}

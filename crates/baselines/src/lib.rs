//! # incsim-baselines
//!
//! The comparison algorithms of *"Fast Incremental SimRank on Link-Evolving
//! Graphs"* (Yu, Lin & Zhang, ICDE 2014), implemented from scratch:
//!
//! * [`naive`] — Jeh & Widom's original iterative SimRank (`O(K·d²·n²)`)
//!   and Lizorkin et al.'s partial-sums memoisation (`O(K·d·n²)`), in the
//!   classic *iterative form* whose diagonal is pinned to 1.
//! * [`incsvd`] — the **Inc-SVD** method of Li et al. (EDBT 2010), the
//!   prior link-incremental algorithm the paper compares against: batch
//!   SimRank through a rank-`r` SVD of the transition matrix, plus the
//!   incremental factor update `Ũ = U·U_C, Σ̃ = Σ_C, Ṽ = V·V_C` (Eq. 4–5).
//!   §IV of the paper proves this update *inherently approximate* whenever
//!   `rank(Q) < n` (it assumes `U·Uᵀ = I`); this implementation reproduces
//!   the flaw faithfully, and the paper's Examples 2–3 are regression tests.
//! * [`recompute`] — the paper's **Batch** comparator as an engine:
//!   rerun matrix-form batch SimRank from scratch after every link update.
//!   Exact by construction; the cost every incremental speedup is
//!   measured against.
//!
//! The Inc-SVD and batch-recompute engines implement the same
//! [`SimRankMaintainer`](incsim_core::SimRankMaintainer) interface as the
//! paper's own algorithms so the experiment harness and the `incsim::api`
//! service layer can swap engines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod incsvd;
pub mod naive;
pub mod recompute;

pub use incsvd::{svd_simrank, IncSvd, IncSvdError, IncSvdOptions};
pub use naive::{naive_simrank, partial_sums_simrank};
pub use recompute::BatchRecompute;

//! **Batch recompute**: the paper's "Batch" comparator as a maintainer.
//!
//! The naive way to keep SimRank fresh on an evolving graph is to rerun
//! the batch algorithm after every link update — exactly what the paper's
//! experiments charge the `Batch` column for. This engine packages that
//! strategy behind the common [`SimRankMaintainer`] interface so the
//! service layer (`incsim::api`, where it is `EngineKind::Naive` — this
//! crate sits below `incsim` and cannot link upward) and the
//! conformance suite can drive it interchangeably with the incremental
//! engines: it is exact by construction (its scores *are* the batch
//! scores of the current graph), which makes it the ground-truth anchor
//! every other engine is measured against.
//!
//! Cost: `O(K·d·n²)` per update — the quantity the paper's Inc-uSR/Inc-SR
//! speedups are relative to.

use incsim_core::rankone::UpdateKind;
use incsim_core::{
    batch_simrank, validate_update, GraphSink, MatrixAccess, SimRankConfig, SimRankMaintainer,
    UpdateError, UpdateStats,
};
use incsim_graph::DiGraph;
use incsim_linalg::DenseMatrix;

/// The recompute-from-scratch engine. See the [module docs](self).
///
/// ```
/// use incsim_baselines::BatchRecompute;
/// use incsim_core::{GraphSink, MatrixAccess, SimRankConfig};
/// use incsim_graph::DiGraph;
///
/// let g = DiGraph::from_edges(4, &[(2, 0), (2, 1), (0, 3)]);
/// let mut engine = BatchRecompute::from_graph(g, SimRankConfig::paper_default());
/// engine.insert_edge(1, 3).unwrap();
/// assert!(engine.scores().get(0, 1) > 0.0);
/// ```
pub struct BatchRecompute {
    graph: DiGraph,
    scores: DenseMatrix,
    cfg: SimRankConfig,
}

impl BatchRecompute {
    /// Creates the engine from a graph and its (pre-computed) score matrix.
    ///
    /// # Panics
    /// Panics if `scores` is not `n × n` for the graph's `n`.
    pub fn new(graph: DiGraph, scores: DenseMatrix, cfg: SimRankConfig) -> Self {
        let n = graph.node_count();
        assert_eq!(scores.rows(), n, "scores must be n x n");
        assert_eq!(scores.cols(), n, "scores must be n x n");
        BatchRecompute { graph, scores, cfg }
    }

    /// Convenience constructor that batch-computes the initial scores.
    pub fn from_graph(graph: DiGraph, cfg: SimRankConfig) -> Self {
        let scores = batch_simrank(&graph, &cfg);
        BatchRecompute::new(graph, scores, cfg)
    }

    /// Consumes the engine, returning `(graph, scores)`.
    pub fn into_parts(self) -> (DiGraph, DenseMatrix) {
        (self.graph, self.scores)
    }

    fn apply_update(
        &mut self,
        i: u32,
        j: u32,
        kind: UpdateKind,
    ) -> Result<UpdateStats, UpdateError> {
        validate_update(&self.graph, i, j, kind)?;
        match kind {
            UpdateKind::Insert => self.graph.insert_edge(i, j)?,
            UpdateKind::Delete => self.graph.remove_edge(i, j)?,
        }
        self.scores = batch_simrank(&self.graph, &self.cfg);
        let n = self.graph.node_count();
        Ok(UpdateStats {
            kind,
            edge: (i, j),
            iterations: self.cfg.iterations,
            affected_pairs: n * n,
            aff_avg: (n * n) as f64,
            pruned_fraction: 0.0,
            // batch_simrank double-buffers: one n² scratch matrix beyond
            // the output.
            peak_intermediate_bytes: n * n * std::mem::size_of::<f64>(),
            gamma_density: 1.0,
            applied_mode: incsim_core::ApplyMode::Eager,
            pending_rank: 0,
        })
    }
}

impl MatrixAccess for BatchRecompute {
    fn base_scores(&self) -> &DenseMatrix {
        &self.scores
    }
}

impl SimRankMaintainer for BatchRecompute {
    fn matrix(&self) -> Option<&dyn MatrixAccess> {
        Some(self)
    }

    fn matrix_mut(&mut self) -> Option<&mut dyn MatrixAccess> {
        Some(self)
    }
}

impl GraphSink for BatchRecompute {
    fn name(&self) -> &'static str {
        "Batch"
    }

    fn graph(&self) -> &DiGraph {
        &self.graph
    }

    fn config(&self) -> &SimRankConfig {
        &self.cfg
    }

    fn insert_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError> {
        self.apply_update(i, j, UpdateKind::Insert)
    }

    fn remove_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError> {
        self.apply_update(i, j, UpdateKind::Delete)
    }

    fn add_node(&mut self) -> u32 {
        let v = self.graph.add_node();
        self.scores = batch_simrank(&self.graph, &self.cfg);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> DiGraph {
        DiGraph::from_edges(6, &[(0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 2)])
    }

    #[test]
    fn scores_always_equal_batch_truth() {
        let cfg = SimRankConfig::new(0.6, 20).unwrap();
        let mut engine = BatchRecompute::from_graph(fixture(), cfg);
        engine.insert_edge(0, 4).unwrap();
        engine.remove_edge(2, 3).unwrap();
        let truth = batch_simrank(engine.graph(), &cfg);
        assert_eq!(engine.scores().max_abs_diff(&truth), 0.0);
    }

    #[test]
    fn invalid_updates_leave_state_untouched() {
        let cfg = SimRankConfig::paper_default();
        let mut engine = BatchRecompute::from_graph(fixture(), cfg);
        let before = engine.scores().clone();
        assert!(engine.insert_edge(0, 2).is_err());
        assert!(engine.remove_edge(0, 3).is_err());
        assert_eq!(engine.scores().max_abs_diff(&before), 0.0);
    }

    #[test]
    fn view_is_never_deferred() {
        let cfg = SimRankConfig::paper_default();
        let mut engine = BatchRecompute::from_graph(fixture(), cfg);
        engine.insert_edge(0, 4).unwrap();
        assert!(!engine.view().is_deferred());
        assert_eq!(engine.pending_rank(), 0);
        let via_view = engine.view().pair(0, 1);
        assert_eq!(via_view, engine.scores().get(0, 1));
    }

    #[test]
    fn add_node_recomputes() {
        let cfg = SimRankConfig::paper_default();
        let mut engine = BatchRecompute::from_graph(fixture(), cfg);
        let v = engine.add_node();
        assert_eq!(v, 6);
        assert_eq!(engine.scores().rows(), 7);
        assert!((engine.scores().get(6, 6) - 0.4).abs() < 1e-12);
    }
}

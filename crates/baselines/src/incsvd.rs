//! **Inc-SVD**: the SVD-based incremental SimRank of Li et al. (EDBT 2010),
//! the prior method the paper compares against — reproduced faithfully,
//! *including the flaw* analysed in §IV of the paper.
//!
//! ## Batch: SimRank from a rank-`r` SVD
//!
//! With `Q = U·Σ·Vᵀ`, the series `S = (1−C)·Σ_k Cᵏ·Qᵏ(Qᵀ)ᵏ` has the
//! Woodbury closed form
//!
//! ```text
//! S = (1−C)·( Iₙ + C·U·(Σ·Y·Σ)·Uᵀ ),
//! vec(Y) solves (I_{r²} − C·(H ⊗ H))·vec(Y) = vec(I_r),   H = (Vᵀ·U)·Σ
//! ```
//!
//! The `r² × r²` system is materialised explicitly and LU-solved, matching
//! the tensor-product formulation whose `r⁴` memory and `r`-quartic cost the
//! paper measures in Fig. 3 (Inc-SVD "crashes" past small ranks — here that
//! becomes a clean [`UpdateError::ResourceExhausted`] via a memory budget).
//!
//! ## Incremental: factor update per link change (Eq. 4–5)
//!
//! `C̃ = Σ + Uᵀ·ΔQ·V` (an `r × r` matrix, rank-one-updated diagonal), then
//! `C̃ = U_C·Σ_C·V_Cᵀ` and `Ũ = U·U_C`, `Σ̃ = Σ_C`, `Ṽ = V·V_C`.
//!
//! §IV of the paper proves this rests on `U·Uᵀ = V·Vᵀ = Iₙ`, which fails
//! whenever `rank(Q) < n` — the update then *loses eigen-information* and
//! the maintained factorisation drifts from `Q̃` (Examples 2–3, unit-tested
//! below with the paper's exact matrices).

use incsim_core::rankone::{rank_one_decomposition, UpdateKind};
use incsim_core::{
    validate_update, GraphSink, MatrixAccess, SimRankConfig, SimRankMaintainer, UpdateError,
    UpdateStats,
};
use incsim_graph::transition::backward_transition;
use incsim_graph::DiGraph;
use incsim_linalg::lu::LuFactors;
use incsim_linalg::svd::{jacobi_svd, truncated_svd};
use incsim_linalg::{DenseMatrix, LinalgError, Svd};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Errors specific to the Inc-SVD pipeline.
#[derive(Debug)]
pub enum IncSvdError {
    /// The `r²×r²` system would exceed the configured memory budget.
    MemoryBudget {
        /// Bytes needed for the explicit Kronecker system (two copies: the
        /// system matrix and its LU factors).
        needed: usize,
        /// Configured budget.
        budget: usize,
    },
    /// A linear-algebra routine failed.
    Linalg(LinalgError),
}

impl std::fmt::Display for IncSvdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncSvdError::MemoryBudget { needed, budget } => {
                write!(f, "Inc-SVD needs {needed} bytes (> budget {budget})")
            }
            IncSvdError::Linalg(e) => write!(f, "Inc-SVD linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for IncSvdError {}

impl From<LinalgError> for IncSvdError {
    fn from(e: LinalgError) -> Self {
        IncSvdError::Linalg(e)
    }
}

impl From<IncSvdError> for UpdateError {
    fn from(e: IncSvdError) -> Self {
        match e {
            IncSvdError::MemoryBudget { needed, budget } => UpdateError::ResourceExhausted {
                needed_bytes: needed,
                budget_bytes: budget,
            },
            IncSvdError::Linalg(_) => UpdateError::Numerical("Inc-SVD linear algebra failure"),
        }
    }
}

/// Options for the Inc-SVD engine.
#[derive(Debug, Clone, Copy)]
pub struct IncSvdOptions {
    /// Target rank `r` of the truncated SVD. The paper notes `r = 5` gives
    /// Inc-SVD its best speed and tunes `r` upward for accuracy.
    pub rank: usize,
    /// Use the randomized range finder for the initial SVD (recommended for
    /// `n ≳ 300`); otherwise a full Jacobi SVD is truncated.
    pub randomized: bool,
    /// Oversampling columns for the randomized SVD.
    pub oversample: usize,
    /// Power iterations for the randomized SVD.
    pub power_iters: usize,
    /// RNG seed for the randomized SVD (determinism in experiments).
    pub seed: u64,
    /// Memory budget in bytes for the explicit `r²×r²` system
    /// (`0` = unlimited). Mirrors the paper's observed memory crashes.
    pub memory_budget_bytes: usize,
}

impl Default for IncSvdOptions {
    fn default() -> Self {
        IncSvdOptions {
            rank: 5,
            randomized: true,
            oversample: 8,
            power_iters: 2,
            seed: 0x1ce_2014,
            memory_budget_bytes: 0,
        }
    }
}

/// Bytes the explicit Kronecker system needs (system matrix + LU copy).
fn kron_system_bytes(r: usize) -> usize {
    2 * r * r * r * r * std::mem::size_of::<f64>()
}

/// Computes SimRank from SVD factors of `Q` via the Woodbury closed form
/// (Li et al.'s batch algorithm).
///
/// Exact when the factorisation is lossless (`U·Σ·Vᵀ = Q`); a rank-`r`
/// approximation otherwise.
pub fn svd_simrank(
    svd: &Svd,
    c: f64,
    memory_budget_bytes: usize,
) -> Result<DenseMatrix, IncSvdError> {
    let n = svd.u.rows();
    let r = svd.k();
    if r == 0 {
        // Q ≈ 0: S = (1−C)·I.
        let mut s = DenseMatrix::identity(n);
        s.scale(1.0 - c);
        return Ok(s);
    }
    let needed = kron_system_bytes(r);
    if memory_budget_bytes > 0 && needed > memory_budget_bytes {
        return Err(IncSvdError::MemoryBudget {
            needed,
            budget: memory_budget_bytes,
        });
    }

    // H = (Vᵀ·U)·Σ  (r × r).
    let g = svd.v.matmul_tn(&svd.u);
    let mut h = g;
    for row in 0..r {
        for col in 0..r {
            let val = h.get(row, col) * svd.s[col];
            h.set(row, col, val);
        }
    }

    // A_sys = I_{r²} − C·(H ⊗ H); rhs = vec(I_r) (column stacking).
    let r2 = r * r;
    let mut a_sys = DenseMatrix::identity(r2);
    for p in 0..r {
        for q in 0..r {
            let hpq = h.get(p, q);
            if hpq == 0.0 {
                continue;
            }
            for a in 0..r {
                for b in 0..r {
                    // (H⊗H)[p·r+a, q·r+b] = H[p,q]·H[a,b]
                    let val = c * hpq * h.get(a, b);
                    if val != 0.0 {
                        a_sys.add_to(p * r + a, q * r + b, -val);
                    }
                }
            }
        }
    }
    let mut rhs = vec![0.0; r2];
    for i in 0..r {
        rhs[i * r + i] = 1.0;
    }
    let y_vec = LuFactors::new(&a_sys)?.solve(&rhs)?;

    // Y from vec (column-major), then P = Σ·Y·Σ.
    let mut p_mat = DenseMatrix::zeros(r, r);
    for col in 0..r {
        for row in 0..r {
            p_mat.set(row, col, svd.s[row] * y_vec[col * r + row] * svd.s[col]);
        }
    }

    // S = (1−C)·(Iₙ + C·U·P·Uᵀ).
    let up = svd.u.matmul(&p_mat); // n×r
    let mut s = up.matmul_nt(&svd.u); // n×n
    s.scale((1.0 - c) * c);
    for i in 0..n {
        s.add_to(i, i, 1.0 - c);
    }
    Ok(s)
}

/// The Inc-SVD engine of Li et al., behind the common
/// [`SimRankMaintainer`] interface.
pub struct IncSvd {
    graph: DiGraph,
    cfg: SimRankConfig,
    opts: IncSvdOptions,
    u: DenseMatrix,
    sigma: Vec<f64>,
    v: DenseMatrix,
    scores: DenseMatrix,
    rng: StdRng,
}

impl IncSvd {
    /// Builds the engine: rank-`r` SVD of `Q` plus the initial batch scores.
    pub fn new(
        graph: DiGraph,
        cfg: SimRankConfig,
        opts: IncSvdOptions,
    ) -> Result<Self, IncSvdError> {
        let q = backward_transition(&graph);
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let svd = if opts.randomized {
            truncated_svd(&q, opts.rank, opts.oversample, opts.power_iters, &mut rng)
        } else {
            jacobi_svd(&q.to_dense()).truncate(opts.rank)
        };
        let scores = svd_simrank(&svd, cfg.c, opts.memory_budget_bytes)?;
        Ok(IncSvd {
            graph,
            cfg,
            opts,
            u: svd.u,
            sigma: svd.s,
            v: svd.v,
            scores,
            rng,
        })
    }

    /// The current factorisation as an [`Svd`] (diagnostics; e.g. measuring
    /// `‖Q̃ − Ũ·Σ̃·Ṽᵀ‖₂` as in Example 3 of the paper).
    pub fn factors(&self) -> Svd {
        Svd {
            u: self.u.clone(),
            s: self.sigma.clone(),
            v: self.v.clone(),
        }
    }

    /// Re-runs the initial SVD from the current graph (used by experiments
    /// to reset drift; not part of Li et al.'s incremental loop).
    pub fn refactorize(&mut self) -> Result<(), IncSvdError> {
        let q = backward_transition(&self.graph);
        let svd = if self.opts.randomized {
            truncated_svd(
                &q,
                self.opts.rank,
                self.opts.oversample,
                self.opts.power_iters,
                &mut self.rng,
            )
        } else {
            jacobi_svd(&q.to_dense()).truncate(self.opts.rank)
        };
        self.u = svd.u;
        self.sigma = svd.s;
        self.v = svd.v;
        self.scores = svd_simrank(&self.factors(), self.cfg.c, self.opts.memory_budget_bytes)?;
        Ok(())
    }

    fn apply_update(
        &mut self,
        i: u32,
        j: u32,
        kind: UpdateKind,
    ) -> Result<UpdateStats, UpdateError> {
        validate_update(&self.graph, i, j, kind)?;
        let n = self.graph.node_count();
        let r = self.sigma.len();

        // ΔQ = u·vᵀ (Theorem 1 of the paper; Li et al. use the same shape).
        let upd = rank_one_decomposition(&self.graph, i, j, kind);

        // C̃ = Σ + (Uᵀ·u)·(Vᵀ·v)ᵀ — two thin projections, then r×r SVD.
        let mut a_vec = vec![0.0; r];
        for (t, av) in a_vec.iter_mut().enumerate() {
            *av = upd.u_coeff * self.u.get(j as usize, t);
        }
        let mut b_vec = vec![0.0; r];
        for &(idx, val) in &upd.v {
            for (t, bv) in b_vec.iter_mut().enumerate() {
                *bv += val * self.v.get(idx as usize, t);
            }
        }
        let mut c_aux = DenseMatrix::from_diag(&self.sigma);
        c_aux.rank_one_update(1.0, &a_vec, &b_vec);
        let small = jacobi_svd(&c_aux);

        // Ũ = U·U_C, Σ̃ = Σ_C, Ṽ = V·V_C  (Eq. 4) — the step that silently
        // assumes U·Uᵀ = I and loses eigen-information when rank(Q) < n.
        self.u = self.u.matmul(&small.u);
        self.v = self.v.matmul(&small.v);
        self.sigma = small.s;

        // Recompute all scores from the updated factors (the expensive
        // tensor-product step the paper's Exp-1 measures).
        self.scores = svd_simrank(&self.factors(), self.cfg.c, self.opts.memory_budget_bytes)
            .map_err(UpdateError::from)?;

        match kind {
            UpdateKind::Insert => self.graph.insert_edge(i, j)?,
            UpdateKind::Delete => self.graph.remove_edge(i, j)?,
        }

        let factor_bytes = self.u.heap_bytes()
            + self.v.heap_bytes()
            + self.sigma.capacity() * std::mem::size_of::<f64>();
        // The tensor-product working set of the closed form: the n×r
        // projection U·P and the n×n product it expands into before the
        // diagonal correction turns it into the output ("the last step of
        // writing n² similarity outputs" is excluded, per the paper's
        // intermediate-space definition — the product itself is not).
        let work_bytes = (n * r + n * n) * std::mem::size_of::<f64>();
        Ok(UpdateStats {
            kind,
            edge: (i, j),
            iterations: 0,
            affected_pairs: n * n,
            aff_avg: (n * n) as f64,
            pruned_fraction: 0.0,
            peak_intermediate_bytes: factor_bytes + kron_system_bytes(r) + work_bytes,
            // No γ vector: the closed form rebuilds all n² scores.
            gamma_density: 1.0,
            applied_mode: incsim_core::ApplyMode::Eager,
            pending_rank: 0,
        })
    }
}

impl MatrixAccess for IncSvd {
    fn base_scores(&self) -> &DenseMatrix {
        &self.scores
    }
}

impl SimRankMaintainer for IncSvd {
    fn matrix(&self) -> Option<&dyn MatrixAccess> {
        Some(self)
    }

    fn matrix_mut(&mut self) -> Option<&mut dyn MatrixAccess> {
        Some(self)
    }
}

impl GraphSink for IncSvd {
    fn name(&self) -> &'static str {
        "Inc-SVD"
    }

    fn graph(&self) -> &DiGraph {
        &self.graph
    }

    fn config(&self) -> &SimRankConfig {
        &self.cfg
    }

    fn insert_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError> {
        self.apply_update(i, j, UpdateKind::Insert)
    }

    fn remove_edge(&mut self, i: u32, j: u32) -> Result<UpdateStats, UpdateError> {
        self.apply_update(i, j, UpdateKind::Delete)
    }

    fn add_node(&mut self) -> u32 {
        // Grow the node universe; the factor matrices gain a zero row each
        // (the new node is isolated, contributing nothing to Q).
        let vnew = self.graph.add_node();
        let n = self.graph.node_count();
        let r = self.sigma.len();
        let grow = |m: &DenseMatrix| {
            let mut g = DenseMatrix::zeros(n, r);
            for a in 0..n - 1 {
                g.row_mut(a).copy_from_slice(m.row(a));
            }
            g
        };
        self.u = grow(&self.u);
        self.v = grow(&self.v);
        let mut scores = DenseMatrix::zeros(n, n);
        for a in 0..n - 1 {
            scores.row_mut(a)[..n - 1].copy_from_slice(self.scores.row(a));
        }
        scores.set(n - 1, n - 1, 1.0 - self.cfg.c);
        self.scores = scores;
        vnew
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incsim_core::batch_simrank;
    use incsim_linalg::norms::spectral_norm_est;

    /// §IV Example 2: Q = [0 1; 0 0]; the lossless SVD has rank 1 and
    /// U·Uᵀ ≠ I₂ while Uᵀ·U = I₁.
    #[test]
    fn example_2_uut_is_not_identity() {
        let q = DenseMatrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let svd = jacobi_svd(&q).truncate(1);
        let uut = svd.u.matmul_nt(&svd.u);
        // U·Uᵀ = diag(1, 0) ≠ I.
        assert!((uut.get(0, 0) - 1.0).abs() < 1e-12);
        assert!(uut.get(1, 1).abs() < 1e-12);
        // Uᵀ·U = I₁.
        let utu = svd.u.matmul_tn(&svd.u);
        assert!((utu.get(0, 0) - 1.0).abs() < 1e-12);
    }

    /// §IV Example 3, end to end: insert the edge that makes Q̃ = [0 1; 1 0];
    /// Li et al.'s factor update misses the new eigenvector and
    /// ‖Q̃ − Ũ·Σ̃·Ṽᵀ‖₂ = 1.
    #[test]
    fn example_3_factor_update_misses_eigenvector() {
        // Graph with Q = [0 1; 0 0]: node 0 has in-neighbor 1 ⇒ edge 1→0.
        let g = DiGraph::from_edges(2, &[(1, 0)]);
        let cfg = SimRankConfig::new(0.8, 10).unwrap();
        let opts = IncSvdOptions {
            rank: 2, // lossless target rank (rank(Q)=1 ≤ 2)
            randomized: false,
            ..Default::default()
        };
        let mut engine = IncSvd::new(g, cfg, opts).unwrap();
        // Insert edge 0→1: ΔQ = [0 0; 1 0] (node 1 gains in-neighbor 0).
        engine.insert_edge(0, 1).unwrap();
        let f = engine.factors();
        let recon = f.reconstruct();
        let qt_true = backward_transition(engine.graph()).to_dense();
        let mut resid = qt_true.clone();
        resid.add_scaled(-1.0, &recon);
        let err = spectral_norm_est(&resid, 60);
        assert!(
            (err - 1.0).abs() < 1e-6,
            "paper predicts ‖Q̃ − ŨΣ̃Ṽᵀ‖₂ = 1, got {err}"
        );
    }

    /// On a full-rank Q with lossless SVD, Li et al.'s method IS exact
    /// (the paper: "Only in this case ... produces exact SimRank").
    #[test]
    fn lossless_full_rank_update_is_exact() {
        // A directed cycle: Q is a permutation matrix (full rank).
        let n = 6;
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        let g = DiGraph::from_edges(n, &edges);
        let cfg = SimRankConfig::new(0.6, 200).unwrap();
        let opts = IncSvdOptions {
            rank: n,
            randomized: false,
            ..Default::default()
        };
        let mut engine = IncSvd::new(g, cfg, opts).unwrap();

        // Initial scores match converged batch.
        let batch0 = batch_simrank(engine.graph(), &cfg);
        assert!(
            engine.scores().max_abs_diff(&batch0) < 1e-9,
            "initial svd_simrank diverges: {}",
            engine.scores().max_abs_diff(&batch0)
        );

        // After an update, factors still reconstruct Q̃ exactly...
        engine.insert_edge(0, 3).unwrap();
        let recon = engine.factors().reconstruct();
        let q_new = backward_transition(engine.graph()).to_dense();
        assert!(recon.max_abs_diff(&q_new) < 1e-10);

        // ...and scores match converged batch on the new graph.
        let batch1 = batch_simrank(engine.graph(), &cfg);
        assert!(
            engine.scores().max_abs_diff(&batch1) < 1e-8,
            "post-update svd_simrank diverges: {}",
            engine.scores().max_abs_diff(&batch1)
        );
    }

    /// On rank-deficient graphs the incremental factors drift — the
    /// approximation the paper's Fig. 1 and Fig. 4 measure.
    #[test]
    fn rank_deficient_update_is_approximate() {
        // Star-ish DAG: rank(Q) < n.
        let g = DiGraph::from_edges(6, &[(0, 3), (1, 3), (2, 3), (3, 4), (3, 5)]);
        let cfg = SimRankConfig::new(0.6, 150).unwrap();
        let opts = IncSvdOptions {
            rank: 6,
            randomized: false,
            ..Default::default()
        };
        let mut engine = IncSvd::new(g, cfg, opts).unwrap();
        engine.insert_edge(4, 2).unwrap();
        let q_new = backward_transition(engine.graph()).to_dense();
        let recon = engine.factors().reconstruct();
        assert!(
            recon.max_abs_diff(&q_new) > 1e-3,
            "expected eigen-information loss on rank-deficient Q"
        );
        let batch = batch_simrank(engine.graph(), &cfg);
        assert!(
            engine.scores().max_abs_diff(&batch) > 1e-4,
            "expected approximate scores, got near-exact"
        );
    }

    #[test]
    fn truncated_rank_degrades_gracefully() {
        let g = DiGraph::from_edges(
            8,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
                (1, 5),
            ],
        );
        let cfg = SimRankConfig::new(0.6, 150).unwrap();
        let truth = batch_simrank(&g, &cfg);
        let mut errs = Vec::new();
        for rank in [2, 5, 8] {
            let opts = IncSvdOptions {
                rank,
                randomized: false,
                ..Default::default()
            };
            let mut engine = IncSvd::new(g.clone(), cfg, opts).unwrap();
            errs.push(engine.scores().max_abs_diff(&truth));
        }
        // Error decreases (weakly) as rank grows.
        assert!(errs[0] >= errs[2] - 1e-12, "errors: {errs:?}");
        assert!(
            errs[2] < 1e-6,
            "lossless rank should be near-exact: {errs:?}"
        );
    }

    #[test]
    fn memory_budget_is_enforced() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cfg = SimRankConfig::paper_default();
        let opts = IncSvdOptions {
            rank: 4,
            randomized: false,
            memory_budget_bytes: 64, // absurdly small
            ..Default::default()
        };
        match IncSvd::new(g, cfg, opts) {
            Err(IncSvdError::MemoryBudget { needed, budget }) => {
                assert!(needed > budget);
            }
            other => panic!("expected MemoryBudget error, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn svd_simrank_zero_rank_is_scaled_identity() {
        let svd = Svd {
            u: DenseMatrix::zeros(3, 0),
            s: vec![],
            v: DenseMatrix::zeros(3, 0),
        };
        let s = svd_simrank(&svd, 0.6, 0).unwrap();
        let mut expect = DenseMatrix::identity(3);
        expect.scale(0.4);
        assert!(s.max_abs_diff(&expect) < 1e-15);
    }

    #[test]
    fn engine_add_node_grows_consistently() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cfg = SimRankConfig::paper_default();
        let opts = IncSvdOptions {
            rank: 3,
            randomized: false,
            ..Default::default()
        };
        let mut engine = IncSvd::new(g, cfg, opts).unwrap();
        let v = engine.add_node();
        assert_eq!(v, 4);
        assert_eq!(engine.scores().rows(), 5);
        assert!((engine.scores().get(4, 4) - 0.4).abs() < 1e-12);
        // Engine still functional after growth.
        engine.insert_edge(4, 1).unwrap();
        assert_eq!(engine.graph().edge_count(), 4);
    }

    #[test]
    fn invalid_updates_rejected_before_state_change() {
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        let cfg = SimRankConfig::paper_default();
        let opts = IncSvdOptions {
            rank: 2,
            randomized: false,
            ..Default::default()
        };
        let mut engine = IncSvd::new(g.clone(), cfg, opts).unwrap();
        let s0 = engine.scores().clone();
        assert!(engine.insert_edge(0, 1).is_err());
        assert!(engine.remove_edge(1, 0).is_err());
        assert_eq!(engine.graph(), &g);
        assert!(engine.scores().max_abs_diff(&s0) == 0.0);
    }
}

//! The `registry-dep` rule: a line-oriented `Cargo.toml` scanner that
//! rejects any dependency not resolved by `path` or `workspace = true`.
//! The offline container cannot reach crates.io — a registry dep is not a
//! style problem, it is a build outage (the PR 1 vendoring invariant).

use crate::{Finding, Rule};

/// Dependency-table section suffixes (covers `[dependencies]`,
/// `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]` and `[target.'…'.dependencies]` variants).
fn dep_section(header: &str) -> bool {
    header == "dependencies"
        || header.ends_with(".dependencies")
        || header == "dev-dependencies"
        || header.ends_with(".dev-dependencies")
        || header == "build-dependencies"
        || header.ends_with(".build-dependencies")
}

/// State while scanning a `[dependencies.<name>]` table section.
struct TableDep {
    name: String,
    line: usize,
    resolved: bool,
}

/// Scans one manifest, appending `registry-dep` findings.
pub fn scan_manifest(rel_path: &str, text: &str, out: &mut Vec<Finding>) {
    let mut in_dep_section = false;
    let mut table: Option<TableDep> = None;

    let flush_table = |t: Option<TableDep>, out: &mut Vec<Finding>| {
        if let Some(t) = t {
            if !t.resolved {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: t.line,
                    rule: Rule::RegistryDep,
                    snippet: format!(
                        "[dependencies.{}] has no `path` or `workspace = true`",
                        t.name
                    ),
                });
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_table(table.take(), out);
            let header = line.trim_matches(|c| c == '[' || c == ']').to_string();
            // `[dependencies.foo]` / `[workspace.dependencies.foo]`:
            // a one-dep table section.
            if let Some((section, name)) = split_table_dep(&header) {
                if dep_section(&section) {
                    table = Some(TableDep {
                        name,
                        line: line_no,
                        resolved: false,
                    });
                    in_dep_section = false;
                    continue;
                }
            }
            in_dep_section = dep_section(&header);
            continue;
        }
        if let Some(t) = table.as_mut() {
            if line.starts_with("path") || is_workspace_true(&line) {
                t.resolved = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // One `name = value` (or `name.workspace = true`) dependency line.
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        let dotted_workspace = key.ends_with(".workspace") && value.starts_with("true");
        let inline_ok = value.starts_with('{')
            && (value.contains("path") && value.contains('=')
                || value.contains("workspace") && value.contains("true"));
        if dotted_workspace || inline_ok {
            continue;
        }
        out.push(Finding {
            file: rel_path.to_string(),
            line: line_no,
            rule: Rule::RegistryDep,
            snippet: raw.trim().to_string(),
        });
    }
    flush_table(table.take(), out);
}

/// Splits `dependencies.foo` → (`dependencies`, `foo`), keeping dotted
/// prefixes (`workspace.dependencies.foo` → (`workspace.dependencies`,
/// `foo`)). `None` when there is no dot.
fn split_table_dep(header: &str) -> Option<(String, String)> {
    let (prefix, name) = header.rsplit_once('.')?;
    Some((prefix.to_string(), name.trim_matches('"').to_string()))
}

fn is_workspace_true(line: &str) -> bool {
    let Some((key, value)) = line.split_once('=') else {
        return false;
    };
    key.trim() == "workspace" && value.trim().starts_with("true")
}

/// Strips a `#` comment, honouring basic `"…"` strings (a `#` inside a
/// quoted value — e.g. a registry URL — is not a comment).
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        scan_manifest("Cargo.toml", text, &mut out);
        out
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let text = "[dependencies]\nincsim-core = { path = \"crates/core\" }\nrand.workspace = true\nproptest = { workspace = true }\n";
        assert!(scan(text).is_empty(), "{:?}", scan(text));
    }

    #[test]
    fn version_string_dep_fails() {
        let text = "[dependencies]\nserde = \"1.0\"\n";
        let f = scan(text);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::RegistryDep);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn inline_version_only_table_fails() {
        let text =
            "[dev-dependencies]\ncriterion = { version = \"0.5\", default-features = false }\n";
        assert_eq!(scan(text).len(), 1);
    }

    #[test]
    fn dep_table_section_forms() {
        let ok = "[dependencies.incsim-core]\npath = \"crates/core\"\n";
        assert!(scan(ok).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1.0\"\nfeatures = [\"derive\"]\n";
        let f = scan(bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn workspace_dependencies_checked_too() {
        let bad = "[workspace.dependencies]\nrand = \"0.8\"\n";
        assert_eq!(scan(bad).len(), 1);
        let ok = "[workspace.dependencies]\nrand = { path = \"vendor/rand\" }\n";
        assert!(scan(ok).is_empty());
    }

    #[test]
    fn non_dep_sections_ignored() {
        let text = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n[features]\ndefault = []\n[workspace.package]\nversion = \"0.1.0\"\n";
        assert!(scan(text).is_empty());
    }

    #[test]
    fn comments_do_not_hide_deps() {
        let text = "[dependencies]\nserde = \"1.0\" # temporarily\n";
        assert_eq!(scan(text).len(), 1);
    }
}

//! CLI for the workspace static analyzer. See the library docs for the
//! rules and the suppression protocol.
//!
//! ```text
//! incsim-lint --workspace [--root DIR] [--format text|json] [--max-suppressions N]
//! incsim-lint FILE.rs [FILE.rs ...]
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed findings (or the suppression
//! cap exceeded), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    root: PathBuf,
    json: bool,
    max_suppressions: Option<usize>,
    files: Vec<PathBuf>,
}

const USAGE: &str = "usage: incsim-lint (--workspace | FILE.rs ...) \
                     [--root DIR] [--format text|json] [--max-suppressions N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        json: false,
        max_suppressions: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--format" => match it.next().as_deref() {
                Some("text") => args.json = false,
                Some("json") => args.json = true,
                other => return Err(format!("--format must be text or json, got {other:?}")),
            },
            "--max-suppressions" => {
                let v = it.next().ok_or("--max-suppressions needs a number")?;
                args.max_suppressions = Some(v.parse().map_err(|_| format!("bad number: {v}"))?);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.files.push(PathBuf::from(other)),
        }
    }
    if !args.workspace && args.files.is_empty() {
        return Err("pass --workspace or at least one file".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("incsim-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let report = if args.workspace {
        match incsim_lint::lint_workspace(&args.root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("incsim-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut report = incsim_lint::Report::default();
        for path in &args.files {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("incsim-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let rel = path.to_string_lossy().replace('\\', "/");
            let sub = incsim_lint::lint_source(&rel, &text);
            report.findings.extend(sub.findings);
            report.suppressed.extend(sub.suppressed);
            report.files_scanned += 1;
        }
        report
    };

    let over_cap = args
        .max_suppressions
        .is_some_and(|cap| report.suppressed.len() > cap);

    if args.json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        for s in &report.suppressed {
            println!(
                "{}:{}: [{}] suppressed: {}",
                s.file,
                s.line,
                s.rule.name(),
                s.reason
            );
        }
        println!(
            "incsim-lint: {} file(s), {} finding(s), {} suppression(s)",
            report.files_scanned,
            report.findings.len(),
            report.suppressed.len()
        );
    }
    if over_cap {
        eprintln!(
            "incsim-lint: {} suppressions exceed the cap of {}",
            report.suppressed.len(),
            args.max_suppressions.unwrap_or(0)
        );
    }
    if report.is_clean() && !over_cap {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

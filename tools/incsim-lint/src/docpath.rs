//! `stale-doc-path`: repo paths referenced in markdown must exist.
//!
//! Documentation rots silently — a file gets renamed, the README keeps
//! pointing at the old name, and nothing fails until a reader follows the
//! reference. This scanner makes the reference itself the contract. Two
//! extraction passes run over every line of every tracked `*.md` file:
//!
//! - **link targets** — `[text](target)` — resolved relative to the
//!   markdown file's own directory (external schemes and pure-fragment
//!   anchors are skipped, `#fragment` suffixes stripped);
//! - **bare path tokens** — any token anchored at a known top-level
//!   workspace directory (`src/`, `crates/`, …), wherever it appears:
//!   prose, inline code, tables, or fenced diagram blocks. Resolved
//!   relative to the workspace root.
//!
//! Tokens without such an anchor (`BENCH_PR9.json`, `updates.wal`,
//! `incsim_core::detorder`, URLs) are out of scope by construction — the
//! rule only polices strings that *claim* to be tree paths. A trailing
//! `:<line>` ref is stripped before the existence check, and a resolved
//! path that escapes the root (`../..`) is always a finding.
//!
//! Markdown has no comment syntax the tokenizer understands, so the
//! `lint:allow` protocol does not apply here: a stale path is fixed, not
//! suppressed.

use crate::{Finding, Rule};

/// Top-level directories that anchor a checkable repo path. A token must
/// start with one of these to be treated as a claim about the tree.
const TOP_DIRS: &[&str] = &[
    "src/",
    "crates/",
    "tools/",
    "tests/",
    "examples/",
    "docs/",
    "benches/",
    "vendor/",
    ".github/",
    ".cargo/",
];

/// Characters that delimit a bare token in markdown prose. Splitting on
/// glob/placeholder characters too means `crates/*/src` degrades to its
/// checkable anchor rather than producing a bogus candidate.
const DELIMS: &[char] = &[
    ' ', '\t', '`', '(', ')', '[', ']', '{', '}', '<', '>', '"', '\'', ',', ';', '|', '*',
];

/// Scans one markdown file. `rel_path` is the root-relative path of the
/// file (used both for findings and to resolve relative link targets);
/// `exists` answers whether a root-relative candidate names a real entry.
/// Missing paths are appended to `out` as [`Rule::StaleDocPath`] findings.
pub fn scan_markdown(
    rel_path: &str,
    text: &str,
    exists: &dyn Fn(&str) -> bool,
    out: &mut Vec<Finding>,
) {
    for (idx, line) in text.lines().enumerate() {
        let mut candidates: Vec<String> = Vec::new();
        for target in link_targets(line) {
            if let Some(cand) = resolve_link(rel_path, target) {
                candidates.push(cand);
            }
        }
        for token in line.split(DELIMS) {
            if let Some(cand) = normalize_token(token) {
                candidates.push(cand);
            }
        }
        candidates.sort();
        candidates.dedup();
        for cand in candidates {
            // A candidate that still contains `..` escaped the workspace
            // root during resolution — never checkable, always stale.
            let escaped = cand.split('/').any(|seg| seg == "..");
            if escaped || !exists(&cand) {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: Rule::StaleDocPath,
                    snippet: format!("{cand} (in: {})", line.trim()),
                });
            }
        }
    }
}

/// Extracts every `[text](target)` link target on a line.
fn link_targets(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(p) = rest.find("](") {
        let tail = &rest[p + 2..];
        match tail.find(')') {
            Some(q) => {
                out.push(&tail[..q]);
                rest = &tail[q + 1..];
            }
            None => break,
        }
    }
    out
}

/// Resolves a link target against the markdown file's directory into a
/// root-relative candidate. `None` for external schemes, pure-fragment
/// anchors, and empty targets. `..` segments are folded; any that escape
/// the root survive (and the caller reports them).
fn resolve_link(rel_path: &str, target: &str) -> Option<String> {
    let bare = target.split(['#', '?']).next().unwrap_or("");
    if bare.is_empty() || bare.contains("://") || bare.contains(':') {
        return None;
    }
    let dir = rel_path.rsplit_once('/').map_or("", |(d, _)| d);
    let joined = if dir.is_empty() {
        bare.to_string()
    } else {
        format!("{dir}/{bare}")
    };
    let mut parts: Vec<&str> = Vec::new();
    let mut escaped = false;
    for seg in joined.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                if parts.pop().is_none() {
                    escaped = true;
                }
            }
            seg => parts.push(seg),
        }
    }
    if escaped {
        // Keep a `..` so the caller sees the escape.
        return Some(format!("../{}", parts.join("/")));
    }
    Some(parts.join("/"))
}

/// Normalizes a bare token into a root-relative candidate: trims trailing
/// sentence punctuation, strips `#fragment` and `:<line>` suffixes, and
/// keeps only tokens anchored at a [`TOP_DIRS`] entry.
fn normalize_token(token: &str) -> Option<String> {
    let mut t = token.trim_end_matches(['.', ',', ';', ':', '!', '?']);
    if let Some(i) = t.find('#') {
        t = &t[..i];
    }
    // `src/serve.rs:1119`-style line (and `:line:col`) references.
    while let Some((head, tail)) = t.rsplit_once(':') {
        if tail.is_empty() || !tail.bytes().all(|b| b.is_ascii_digit()) {
            break;
        }
        t = head;
    }
    if t.contains(':') || !TOP_DIRS.iter().any(|d| t.starts_with(d)) {
        return None;
    }
    Some(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_md(rel_path: &str, text: &str, present: &[&str]) -> Vec<Finding> {
        let mut out = Vec::new();
        scan_markdown(rel_path, text, &|c| present.contains(&c), &mut out);
        out
    }

    fn stale(findings: &[Finding]) -> Vec<(usize, String)> {
        findings
            .iter()
            .map(|f| {
                assert_eq!(f.rule, Rule::StaleDocPath);
                let cand = f.snippet.split(" (in: ").next().unwrap().to_string();
                (f.line, cand)
            })
            .collect()
    }

    #[test]
    fn missing_token_fires_and_present_token_does_not() {
        let findings = lint_md(
            "README.md",
            "See `src/serve.rs` and `src/gone.rs` for details.\n",
            &["src/serve.rs"],
        );
        assert_eq!(stale(&findings), vec![(1, "src/gone.rs".to_string())]);
    }

    #[test]
    fn tokens_fire_inside_fenced_blocks_and_tables() {
        let text = "\
| layer | file |\n\
|-------|------|\n\
| serve | `src/nope.rs` |\n\
\n\
```text\n\
crates/missing — the absent crate\n\
```\n";
        let findings = lint_md("docs/ARCHITECTURE.md", text, &[]);
        assert_eq!(
            stale(&findings),
            vec![
                (3, "src/nope.rs".to_string()),
                (6, "crates/missing".to_string()),
            ]
        );
    }

    #[test]
    fn link_targets_resolve_relative_to_the_file() {
        // `docs/X.md` linking `../README.md` must check `README.md`.
        let clean = lint_md("docs/X.md", "[up](../README.md)\n", &["README.md"]);
        assert!(clean.is_empty(), "{clean:?}");
        let bad = lint_md("docs/X.md", "[up](../MISSING.md)\n", &["README.md"]);
        assert_eq!(stale(&bad), vec![(1, "MISSING.md".to_string())]);
    }

    #[test]
    fn fragments_and_line_refs_are_stripped() {
        let findings = lint_md(
            "README.md",
            "[ring](docs/A.md#the-ring) and `src/serve.rs:1119`, `src/wal.rs:12:5`.\n",
            &["docs/A.md", "src/serve.rs", "src/wal.rs"],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unanchored_tokens_and_external_links_are_out_of_scope() {
        let text = "Run `cargo test`; see BENCH_PR9.json, `updates.wal`, \
                    `incsim_core::detorder`, [site](https://example.com/src/x.rs), \
                    [mail](mailto:a@b.c), [anchor](#local), and a/b/c.\n";
        let findings = lint_md("README.md", text, &[]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn directory_references_with_trailing_slash_are_checked() {
        let findings = lint_md(
            "README.md",
            "`src/wal/` holds the sidecars; `src/ghost/` does not exist.\n",
            &["src/wal/"],
        );
        assert_eq!(stale(&findings), vec![(1, "src/ghost/".to_string())]);
    }

    #[test]
    fn links_escaping_the_root_always_fire() {
        let findings = lint_md("docs/X.md", "[out](../../etc/passwd)\n", &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].snippet.starts_with("../"), "{findings:?}");
    }

    #[test]
    fn duplicate_candidates_on_one_line_report_once() {
        let findings = lint_md(
            "README.md",
            "`src/gone.rs` again `src/gone.rs` and [also](src/gone.rs)\n",
            &[],
        );
        assert_eq!(stale(&findings), vec![(1, "src/gone.rs".to_string())]);
    }

    #[test]
    fn glob_and_placeholder_tokens_degrade_to_their_anchor() {
        // `crates/*/src` splits at the `*`; the surviving `crates/` anchor
        // is checked (and exists), never a literal glob path.
        let findings = lint_md("README.md", "expand `crates/*/src` here\n", &["crates/"]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}

//! `incsim-lint` — static analysis for the workspace's own invariants.
//!
//! The headline guarantees of this codebase are *invariants, not
//! features*: fused==eager and serial==parallel bit-for-bit, idempotent
//! keyed-RNG probe snapshots, panics-as-quarantine-events in every
//! serving path, and the offline no-registry dependency rule. This crate
//! machine-checks them. It is deliberately dependency-free (no dylint, no
//! rustc plumbing — the container is offline): a string/char/raw-string/
//! comment-aware tokenizer, a `#[cfg(test)]` region classifier, and a
//! small rule engine over the token stream plus a line-based manifest
//! parser for the dependency rule.
//!
//! ## Rules
//!
//! | rule | invariant it guards |
//! |------|---------------------|
//! | `panic-in-serving-path` | a panic in `src/serve.rs`, `src/wal.rs` (incl. `src/wal/`), or `src/api.rs` is a quarantine event, never an `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` |
//! | `nondeterministic-iteration` | no direct iteration over `HashMap`/`HashSet` (incl. the in-tree `FxHashMap`) in the order-sensitive modules `probe.rs`, `batch.rs`, `grouped.rs`, `wal.rs` — drain through a sorting helper (`incsim_core::detorder`) instead |
//! | `wallclock-in-kernel` | no `Instant::now`/`SystemTime::now` outside bench/metrics/CLI/example code — kernel results must be a function of (input, seed), never of the clock |
//! | `lock-poison-discipline` | guard acquisition is `.lock()/.read()/.write()` + `unwrap_or_else(PoisonError::into_inner)`, never `.unwrap()`/`.expect()` — a poisoned lock must degrade, not cascade the panic |
//! | `registry-dep` | every dependency in every workspace manifest is `path`- or `workspace`-resolved — the offline container cannot fetch crates.io, so a registry dep is a build outage |
//! | `stale-doc-path` | every repo path referenced in a tracked markdown file (link targets and `src/`-, `crates/`-, … anchored tokens) names an entry that exists — docs must not rot as the tree moves |
//! | `bad-suppression` | a `lint:allow` comment without a rule name or a reason suppresses nothing and is itself a finding |
//!
//! ## Suppression protocol
//!
//! ```text
//! // lint:allow(<rule>): <mandatory reason>
//! ```
//!
//! on the finding's line or the line directly above suppresses that one
//! finding. The reason is not optional: an allow without one is reported
//! as `bad-suppression` *and* the original finding stands. Suppressions
//! are counted and reported so CI can cap them (`--max-suppressions`).

use std::fmt;
use std::path::{Path, PathBuf};

pub mod docpath;
pub mod manifest;
pub mod rules;
pub mod tokenize;

pub use rules::Rule;
use tokenize::{tokenize, Tok, TokKind};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Root-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The trimmed source line the finding sits on.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.snippet
        )
    }
}

/// A finding silenced by a justified `lint:allow` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Root-relative path of the suppressed finding.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: usize,
    /// The rule that would have fired.
    pub rule: Rule,
    /// The mandatory justification from the comment.
    pub reason: String,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified `lint:allow`.
    pub suppressed: Vec<Suppression>,
    /// Number of Rust sources, manifests, and markdown files inspected.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when nothing fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name()))
        });
        self.suppressed.sort_by(|a, b| {
            (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name()))
        });
    }

    /// Serializes the report as schema-stable JSON (`version` 1, sorted
    /// findings, fixed key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"snippet\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule.name()),
                json_str(&f.snippet)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
                json_str(&s.file),
                s.line,
                json_str(s.rule.name()),
                json_str(&s.reason)
            ));
        }
        if !self.suppressed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {}\n}}\n",
            self.files_scanned
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An I/O failure while walking or reading the tree (never a finding).
#[derive(Debug)]
pub struct LintIoError {
    /// The path that failed.
    pub path: PathBuf,
    /// The underlying error.
    pub source: std::io::Error,
}

impl fmt::Display for LintIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for LintIoError {}

/// Lints one Rust source with every applicable path-scoped rule.
/// `rel_path` is the root-relative path (with `/` separators) used for
/// rule scoping — fixtures pass virtual paths mirroring the real layout.
pub fn lint_source(rel_path: &str, source: &str) -> Report {
    let toks = tokenize(source);
    let exempt = test_exempt_lines(&toks.code, source.lines().count());
    let mut raw: Vec<Finding> = Vec::new();
    rules::scan_tokens(rel_path, &toks.code, &exempt, source, &mut raw);

    let allows = collect_allows(rel_path, &toks.comments);
    let mut report = Report::default();
    for f in raw {
        match allows.iter().find(|a| {
            a.rule == f.rule && a.reason.is_some() && (a.line == f.line || a.line + 1 == f.line)
        }) {
            Some(a) => report.suppressed.push(Suppression {
                file: f.file,
                line: f.line,
                rule: f.rule,
                reason: a.reason.clone().unwrap_or_default(),
            }),
            None => report.findings.push(f),
        }
    }
    // Malformed allows are findings of their own — and suppress nothing.
    for a in &allows {
        if a.malformed {
            report.findings.push(Finding {
                file: rel_path.to_string(),
                line: a.line,
                rule: Rule::BadSuppression,
                snippet: snippet_at(source, a.line),
            });
        }
    }
    report.files_scanned = 1;
    report.sort();
    report
}

/// Lints a whole tree rooted at `root`: every `.rs` source outside
/// `target/`, `vendor/` code, tests/benches/examples/fixtures, every
/// workspace `Cargo.toml` (vendor manifests included — the vendored shims
/// must themselves stay registry-free), and every tracked markdown file
/// for the `stale-doc-path` rule.
///
/// # Errors
/// Only on I/O failure; violations are findings, not errors.
pub fn lint_workspace(root: &Path) -> Result<Report, LintIoError> {
    let mut report = Report::default();
    let mut sources: Vec<PathBuf> = Vec::new();
    let mut manifests: Vec<PathBuf> = Vec::new();
    let mut docs: Vec<PathBuf> = Vec::new();
    walk(root, root, &mut sources, &mut manifests, &mut docs)?;
    sources.sort();
    manifests.sort();
    docs.sort();

    for path in &sources {
        let text = std::fs::read_to_string(path).map_err(|e| LintIoError {
            path: path.clone(),
            source: e,
        })?;
        let rel = rel_name(root, path);
        let sub = lint_source(&rel, &text);
        report.findings.extend(sub.findings);
        report.suppressed.extend(sub.suppressed);
        report.files_scanned += 1;
    }
    for path in &manifests {
        let text = std::fs::read_to_string(path).map_err(|e| LintIoError {
            path: path.clone(),
            source: e,
        })?;
        let rel = rel_name(root, path);
        manifest::scan_manifest(&rel, &text, &mut report.findings);
        report.files_scanned += 1;
    }
    for path in &docs {
        let text = std::fs::read_to_string(path).map_err(|e| LintIoError {
            path: path.clone(),
            source: e,
        })?;
        let rel = rel_name(root, path);
        docpath::scan_markdown(
            &rel,
            &text,
            &|cand| root.join(cand).exists(),
            &mut report.findings,
        );
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

fn rel_name(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Directory names whose subtrees hold test/bench/demo code — out of
/// scope for the code rules (the rules police shipping paths; `#[cfg(test)]`
/// regions inside shipping files are handled separately).
const SKIP_DIRS: &[&str] = &[
    "target", ".git", "tests", "benches", "examples", "fixtures", ".claude",
];

/// Root-level documents that digest *external* material — the source
/// paper, related-work notes, exemplar snippets from other repositories,
/// and the per-PR issue brief (which names files that do not exist *yet*).
/// Their paths describe other trees, so `stale-doc-path` skips them.
const EXTERNAL_DOCS: &[&str] = &["ISSUE.md", "PAPER.md", "PAPERS.md", "SNIPPETS.md"];

fn walk(
    root: &Path,
    dir: &Path,
    sources: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
    docs: &mut Vec<PathBuf>,
) -> Result<(), LintIoError> {
    let entries = std::fs::read_dir(dir).map_err(|e| LintIoError {
        path: dir.to_path_buf(),
        source: e,
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| LintIoError {
            path: dir.to_path_buf(),
            source: e,
        })?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            // Vendored shims stand in for external crates: their *code* is
            // out of scope, their manifests are not (collected below).
            if name == "vendor" && path.parent() == Some(root) {
                collect_vendor_manifests(&path, manifests)?;
                continue;
            }
            walk(root, &path, sources, manifests, docs)?;
        } else if name == "Cargo.toml" {
            manifests.push(path);
        } else if name.ends_with(".rs") {
            sources.push(path);
        } else if name.ends_with(".md")
            && !(path.parent() == Some(root) && EXTERNAL_DOCS.contains(&name.as_str()))
        {
            docs.push(path);
        }
    }
    Ok(())
}

fn collect_vendor_manifests(
    vendor: &Path,
    manifests: &mut Vec<PathBuf>,
) -> Result<(), LintIoError> {
    let entries = std::fs::read_dir(vendor).map_err(|e| LintIoError {
        path: vendor.to_path_buf(),
        source: e,
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| LintIoError {
            path: vendor.to_path_buf(),
            source: e,
        })?;
        let m = entry.path().join("Cargo.toml");
        if m.is_file() {
            manifests.push(m);
        }
    }
    Ok(())
}

// ---- #[cfg(test)] region classification ---------------------------------

/// Returns a per-line exemption mask: `true` for lines inside a
/// `#[cfg(test)]`-gated item/module or a `#[test]` function. An attribute
/// gates the next item: its brace-delimited body when one opens before the
/// terminating `;`, otherwise just the attribute..`;` span.
fn test_exempt_lines(code: &[Tok], line_count: usize) -> Vec<bool> {
    let mut exempt = vec![false; line_count + 2];
    let mut i = 0;
    while i < code.len() {
        if let Some((attr_end, is_test)) = parse_attr(code, i) {
            if is_test {
                let start_line = code[i].line;
                let end_line = item_end_line(code, attr_end).min(line_count + 1);
                for flag in exempt.iter_mut().take(end_line + 1).skip(start_line) {
                    *flag = true;
                }
                i = attr_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    exempt
}

/// If `code[i]` starts an attribute `#[...]`, returns (index past `]`,
/// whether it test-gates: `#[test]` or any `cfg(...)` mentioning `test`).
fn parse_attr(code: &[Tok], i: usize) -> Option<(usize, bool)> {
    if !matches!(code[i].kind, TokKind::Punct('#')) {
        return None;
    }
    let mut j = i + 1;
    // `#![...]` is an inner attribute; same shape with a `!` in between.
    if j < code.len() && matches!(code[j].kind, TokKind::Punct('!')) {
        j += 1;
    }
    if j >= code.len() || !matches!(code[j].kind, TokKind::Punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    let mut is_test = false;
    let mut saw_cfg = false;
    let mut k = j;
    while k < code.len() {
        match &code[k].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((k + 1, is_test));
                }
            }
            TokKind::Ident(s) if s == "cfg" => saw_cfg = true,
            // Bare `#[test]`, or `test` anywhere inside `cfg(...)`
            // (covers `cfg(test)` and `cfg(any(test, ...))`).
            TokKind::Ident(s) if s == "test" && (saw_cfg || k == j + 1) => is_test = true,
            _ => {}
        }
        k += 1;
    }
    None
}

/// The last line of the item following an attribute: the matching `}` of
/// the first `{` opened before a top-level `;`, or the `;` itself.
/// Subsequent attributes are skipped over first.
fn item_end_line(code: &[Tok], mut i: usize) -> usize {
    while i < code.len() {
        if let Some((next, _)) = parse_attr(code, i) {
            i = next;
            continue;
        }
        break;
    }
    let mut paren = 0isize;
    while i < code.len() {
        match code[i].kind {
            TokKind::Punct(';') if paren == 0 => return code[i].line,
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
            TokKind::Punct('{') => {
                let mut depth = 0isize;
                while i < code.len() {
                    match code[i].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return code[i].line;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                break;
            }
            _ => {}
        }
        i += 1;
    }
    code.last().map_or(1, |t| t.line)
}

// ---- suppression comments -----------------------------------------------

struct Allow {
    line: usize,
    rule: Rule,
    reason: Option<String>,
    malformed: bool,
}

fn collect_allows(_rel_path: &str, comments: &[(usize, String)]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (line, text) in comments {
        // Only a comment *starting* with the marker is an allow attempt —
        // prose mentioning `lint:allow` (docs, this file) is not.
        let Some(rest) = text.trim_start().strip_prefix("lint:allow") else {
            continue;
        };
        let parsed = parse_allow(rest);
        match parsed {
            Some((rule, reason)) => out.push(Allow {
                line: *line,
                rule,
                reason: Some(reason),
                malformed: false,
            }),
            None => out.push(Allow {
                line: *line,
                // Rule is irrelevant for a malformed allow; it suppresses
                // nothing and fires `bad-suppression` itself.
                rule: Rule::BadSuppression,
                reason: None,
                malformed: true,
            }),
        }
    }
    out
}

/// Parses `(<rule>): <reason>` after `lint:allow`. `None` when the rule
/// name is unknown, the parens are missing, or the reason is empty.
fn parse_allow(rest: &str) -> Option<(Rule, String)> {
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let rule = Rule::from_name(inner[..close].trim())?;
    let after = inner[close + 1..].trim_start();
    let reason = after.strip_prefix(':')?.trim();
    if reason.is_empty() {
        return None;
    }
    Some((rule, reason.to_string()))
}

fn snippet_at(source: &str, line: usize) -> String {
    source
        .lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .to_string()
}

//! A lossy-but-honest Rust tokenizer: enough lexical structure for the
//! rule engine (identifiers, punctuation, line numbers) while being
//! *exactly right* about what is code and what is not — strings, char
//! literals, raw strings, byte strings, line comments, and nested block
//! comments never leak tokens, and comments are collected separately for
//! the suppression scanner.

/// Token kind. Literal bodies are swallowed (a string contributes one
/// opaque `Literal` token), so `"unwrap()"` in a message never matches a
/// rule pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (also numeric literals' alphabetic tails
    /// never merge here — numbers become `Literal`).
    Ident(String),
    /// One punctuation character (`.`, `(`, `!`, `:`, …).
    Punct(char),
    /// A string/char/number literal, collapsed to one token.
    Literal,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What it is.
    pub kind: TokKind,
    /// 1-based line of its first character.
    pub line: usize,
}

/// Tokenizer output: the code stream plus every comment's text by line
/// (block comments are attributed to their first line).
#[derive(Debug, Default)]
pub struct TokenStream {
    /// Code tokens in source order.
    pub code: Vec<Tok>,
    /// `(line, text)` of each comment, `//`/`/* */` markers stripped.
    pub comments: Vec<(usize, String)>,
}

/// Tokenizes `source`. Never fails: unterminated literals/comments simply
/// swallow the rest of the file (the compiler will have rejected such a
/// file long before the linter sees it).
pub fn tokenize(source: &str) -> TokenStream {
    let mut out = TokenStream::default();
    let b: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (doc comments included — they are still comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            while i < n && b[i] != '\n' {
                text.push(b[i]);
                i += 1;
            }
            let trimmed = text.trim_start_matches('/').trim().to_string();
            out.comments.push((start_line, trimmed));
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let mut depth = 0usize;
            let mut text = String::new();
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(b[i]);
                    bump!();
                }
            }
            out.comments.push((start_line, text.trim().to_string()));
            continue;
        }
        // Raw (byte) strings: r"..."  r#"..."#  br#"..."#.
        if c == 'r' || c == 'b' {
            if let Some((consumed, lines)) = raw_string_len(&b[i..]) {
                out.code.push(Tok {
                    kind: TokKind::Literal,
                    line,
                });
                i += consumed;
                line += lines;
                continue;
            }
        }
        // Plain (byte) string.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start_line = line;
            if c == 'b' {
                bump!();
            }
            bump!(); // opening quote
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    bump!();
                    bump!();
                } else if b[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            out.code.push(Tok {
                kind: TokKind::Literal,
                line: start_line,
            });
            continue;
        }
        // `'`: lifetime or char literal. A lifetime is `'` + ident not
        // closed by another `'` (so `'a'` is a char, `'a` a lifetime).
        if c == '\'' {
            let start_line = line;
            if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                // Find where the ident run ends.
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                if j < n && b[j] == '\'' && j == i + 2 {
                    // 'x' — a one-character char literal.
                    i = j + 1;
                    out.code.push(Tok {
                        kind: TokKind::Literal,
                        line: start_line,
                    });
                } else {
                    // Lifetime: emit nothing (rules never match lifetimes).
                    i = j;
                }
                continue;
            }
            // Escaped or punctuation char literal: '\n', '\'', '('…
            bump!(); // opening quote
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    bump!();
                    bump!();
                } else if b[i] == '\'' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            out.code.push(Tok {
                kind: TokKind::Literal,
                line: start_line,
            });
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut s = String::new();
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                s.push(b[i]);
                i += 1;
            }
            out.code.push(Tok {
                kind: TokKind::Ident(s),
                line: start_line,
            });
            continue;
        }
        // Number literal (consume alphanumeric tail: 0xFF, 1e-12, 3u64).
        if c.is_ascii_digit() {
            let start_line = line;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                // `1.` vs `1..3`: stop before a `..` range operator.
                if b[i] == '.' && i + 1 < n && b[i + 1] == '.' {
                    break;
                }
                i += 1;
            }
            // Exponent sign: 1e-12 / 2.5E+3.
            if i < n
                && (b[i] == '-' || b[i] == '+')
                && i >= 1
                && (b[i - 1] == 'e' || b[i - 1] == 'E')
            {
                i += 1;
                while i < n && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            out.code.push(Tok {
                kind: TokKind::Literal,
                line: start_line,
            });
            continue;
        }
        // Punctuation, one char at a time (`::` is two `:` tokens).
        out.code.push(Tok {
            kind: TokKind::Punct(c),
            line,
        });
        bump!();
    }
    out
}

/// Length in chars and newline count of a raw string starting at `s[0]`
/// (`r`/`br` prefix), or `None` if `s` does not start one.
fn raw_string_len(s: &[char]) -> Option<(usize, usize)> {
    let mut i = 0;
    if s[i] == 'b' {
        i += 1;
    }
    if i >= s.len() || s[i] != 'r' {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while i < s.len() && s[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= s.len() || s[i] != '"' {
        return None;
    }
    i += 1;
    let mut lines = 0usize;
    while i < s.len() {
        if s[i] == '\n' {
            lines += 1;
        }
        if s[i] == '"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while j < s.len() && s[j] == '#' && h < hashes {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return Some((j, lines));
            }
        }
        i += 1;
    }
    Some((s.len(), lines))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .code
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_never_leak_tokens() {
        let src = r##"
            let x = "unwrap() inside a string";
            // unwrap() in a line comment
            /* panic! in /* a nested */ block comment */
            let y = r#"Instant::now() in a raw string"#;
            let c = '('; let lt: &'static str = "s";
        "##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|s| s == "unwrap" || s == "panic" || s == "Instant"));
        // Lifetimes vanish entirely — `'static` must not produce an ident.
        assert!(!ids.iter().any(|s| s == "static"), "{ids:?}");
        assert!(ids.iter().any(|s| s == "str"), "{ids:?}");
    }

    #[test]
    fn comments_collected_with_lines() {
        let src = "let a = 1;\n// lint:allow(registry-dep): because\nlet b = 2;\n";
        let toks = tokenize(src);
        assert_eq!(toks.comments.len(), 1);
        assert_eq!(toks.comments[0].0, 2);
        assert!(toks.comments[0].1.starts_with("lint:allow"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = tokenize("f::<'a>('x', 'b', b'\\n')");
        let lits = toks
            .code
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Literal))
            .count();
        assert_eq!(lits, 3, "{:?}", toks.code);
    }

    #[test]
    fn line_numbers_advance_through_literals() {
        let src = "let s = \"a\nb\nc\";\nfoo();\n";
        let toks = tokenize(src);
        let foo = toks
            .code
            .iter()
            .find(|t| matches!(&t.kind, TokKind::Ident(s) if s == "foo"))
            .map(|t| t.line);
        assert_eq!(foo, Some(4));
    }

    #[test]
    fn numeric_exponent_does_not_eat_operators() {
        let ids = idents("let x = 1e-12; let y = a - b;");
        assert!(ids.contains(&"a".to_string()) && ids.contains(&"b".to_string()));
    }
}

//! The rule engine: path scoping + token-stream scanners, one per rule.
//! Each rule is grounded in an existing contract of the codebase; see the
//! crate docs for the rule ↔ invariant table.

use crate::tokenize::{Tok, TokKind};
use crate::Finding;

/// The rules. `BadSuppression` is synthesized by the driver for malformed
/// `lint:allow` comments; the rest are token/manifest scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unwrap()`/`expect()`/`panic!`-family in a serving-path file.
    PanicInServingPath,
    /// Direct `HashMap`/`HashSet` iteration in an order-sensitive module.
    NondeterministicIteration,
    /// `Instant::now`/`SystemTime::now` in kernel code.
    WallclockInKernel,
    /// `.lock()/.read()/.write()` followed by `.unwrap()`/`.expect()`.
    LockPoisonDiscipline,
    /// A non-path, non-workspace dependency in a workspace manifest.
    RegistryDep,
    /// A repo path referenced in a markdown file that does not exist.
    StaleDocPath,
    /// A `lint:allow` comment missing its rule or mandatory reason.
    BadSuppression,
}

impl Rule {
    /// The kebab-case name used in output and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::PanicInServingPath => "panic-in-serving-path",
            Rule::NondeterministicIteration => "nondeterministic-iteration",
            Rule::WallclockInKernel => "wallclock-in-kernel",
            Rule::LockPoisonDiscipline => "lock-poison-discipline",
            Rule::RegistryDep => "registry-dep",
            Rule::StaleDocPath => "stale-doc-path",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    /// Inverse of [`Rule::name`]; `None` for unknown names (a
    /// `lint:allow` naming an unknown rule is malformed).
    pub fn from_name(name: &str) -> Option<Rule> {
        Some(match name {
            "panic-in-serving-path" => Rule::PanicInServingPath,
            "nondeterministic-iteration" => Rule::NondeterministicIteration,
            "wallclock-in-kernel" => Rule::WallclockInKernel,
            "lock-poison-discipline" => Rule::LockPoisonDiscipline,
            "registry-dep" => Rule::RegistryDep,
            "stale-doc-path" => Rule::StaleDocPath,
            "bad-suppression" => Rule::BadSuppression,
            _ => return None,
        })
    }
}

// ---- path scopes --------------------------------------------------------

/// Serving-path files: PR 7's typed-error discipline — a panic here is a
/// quarantine event, so the panic *macros and combinators* must not exist.
fn in_serving_scope(path: &str) -> bool {
    path.ends_with("src/serve.rs")
        || path.ends_with("src/wal.rs")
        || path.ends_with("src/api.rs")
        || path.contains("src/wal/")
}

/// Order-sensitive modules: anything feeding scores, snapshots, or WAL
/// frames. Hash-order must never reach a float accumulation or a byte
/// stream here (fused==eager, serial==parallel, idempotent snapshots).
fn in_ordered_scope(path: &str) -> bool {
    let file = path.rsplit('/').next().unwrap_or(path);
    matches!(file, "probe.rs" | "batch.rs" | "grouped.rs" | "wal.rs")
}

/// Kernel scope for the wall-clock rule: everywhere except the modules
/// whose *job* is timing (bench harness, metrics) and operator-facing
/// binaries (CLI) — kernel answers are functions of (input, seed) only.
fn in_wallclock_scope(path: &str) -> bool {
    !(path.contains("crates/bench/")
        || path.contains("crates/metrics/")
        || path.contains("src/bin/")
        || path.contains("vendor/"))
}

// ---- token scanners -----------------------------------------------------

/// Runs every code rule applicable to `rel_path` over the token stream.
/// `exempt` is the per-line `#[cfg(test)]` mask; exempt findings are
/// dropped at the source, not suppressed.
pub fn scan_tokens(
    rel_path: &str,
    code: &[Tok],
    exempt: &[bool],
    source: &str,
    out: &mut Vec<Finding>,
) {
    let mut sink = |rule: Rule, line: usize| {
        if exempt.get(line).copied().unwrap_or(false) {
            return;
        }
        out.push(Finding {
            file: rel_path.to_string(),
            line,
            rule,
            snippet: crate::snippet_at(source, line),
        });
    };

    if in_serving_scope(rel_path) {
        scan_panics(code, &mut sink);
    }
    if in_ordered_scope(rel_path) {
        scan_hash_iteration(code, &mut sink);
    }
    if in_wallclock_scope(rel_path) {
        scan_wallclock(code, &mut sink);
    }
    scan_lock_unwrap(code, &mut sink);
}

fn ident(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(t: &Tok, c: char) -> bool {
    matches!(t.kind, TokKind::Punct(p) if p == c)
}

/// `panic-in-serving-path`: `.unwrap(` / `.expect(` method calls and the
/// `panic!`/`unreachable!`/`todo!`/`unimplemented!` macros. `assert!` and
/// `debug_assert!` stay legal — they guard caller contracts, not runtime
/// state (the rule polices the *recoverable* paths).
fn scan_panics(code: &[Tok], sink: &mut impl FnMut(Rule, usize)) {
    for (i, t) in code.iter().enumerate() {
        let Some(name) = ident(t) else { continue };
        match name {
            "unwrap" | "expect" => {
                let dotted = i > 0 && punct(&code[i - 1], '.');
                let called = i + 1 < code.len() && punct(&code[i + 1], '(');
                if dotted && called {
                    sink(Rule::PanicInServingPath, t.line);
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if i + 1 < code.len() && punct(&code[i + 1], '!') =>
            {
                sink(Rule::PanicInServingPath, t.line);
            }
            _ => {}
        }
    }
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// `nondeterministic-iteration`, two passes:
///
/// 1. collect identifiers *declared* with a hash-table type — `let`
///    bindings, fields, and params (`name: …HashMap…`) plus
///    `let name = FxHashMap::default()`-style constructions;
/// 2. flag `name.iter()`-family calls and `for … in [&[mut]] name` loops
///    on those identifiers.
///
/// Point lookups (`get`/`entry`/`insert`/`contains_key`/`retain`) are
/// order-insensitive and stay legal; drains must go through a sorting
/// helper (`incsim_core::detorder`) hosted *outside* the scoped modules.
fn scan_hash_iteration(code: &[Tok], sink: &mut impl FnMut(Rule, usize)) {
    let mut hash_idents: Vec<String> = Vec::new();

    // Pass 1a: `name : <type tokens…>` where the type mentions a hash
    // table before `=`, `;` or `{`.
    for i in 0..code.len() {
        let Some(name) = ident(&code[i]) else {
            continue;
        };
        if i + 1 >= code.len() || !punct(&code[i + 1], ':') {
            continue;
        }
        // `name ::` is a path, not a declaration.
        if i + 2 < code.len() && punct(&code[i + 2], ':') {
            continue;
        }
        let window = &code[i + 2..code.len().min(i + 14)];
        for t in window {
            if matches!(
                t.kind,
                TokKind::Punct('=') | TokKind::Punct(';') | TokKind::Punct('{')
            ) {
                break;
            }
            if ident(t).is_some_and(|s| HASH_TYPES.contains(&s)) {
                hash_idents.push(name.to_string());
                break;
            }
        }
    }
    // Pass 1b: `let [mut] name = [Fx]Hash{Map,Set}::…`.
    for i in 0..code.len() {
        if ident(&code[i]) != Some("let") {
            continue;
        }
        let mut j = i + 1;
        if code.get(j).and_then(ident) == Some("mut") {
            j += 1;
        }
        let Some(name) = code.get(j).and_then(ident) else {
            continue;
        };
        if code.get(j + 1).is_some_and(|t| punct(t, '='))
            && code
                .get(j + 2)
                .and_then(ident)
                .is_some_and(|s| HASH_TYPES.contains(&s))
        {
            hash_idents.push(name.to_string());
        }
    }

    let is_hash = |name: &str| hash_idents.iter().any(|h| h == name);

    // Pass 2a: `name . method (`.
    for i in 0..code.len() {
        let Some(m) = ident(&code[i]) else { continue };
        if !ITER_METHODS.contains(&m) {
            continue;
        }
        if !(i >= 2 && punct(&code[i - 1], '.') && i + 1 < code.len() && punct(&code[i + 1], '(')) {
            continue;
        }
        if ident(&code[i - 2]).is_some_and(is_hash) {
            sink(Rule::NondeterministicIteration, code[i].line);
        }
    }
    // Pass 2b: `for <pat> in [&[mut]] name` with no further `.`/`(` chain
    // (chained forms are caught by 2a on the method itself).
    for i in 0..code.len() {
        if ident(&code[i]) != Some("for") {
            continue;
        }
        // Find the matching `in` before the loop body opens.
        let mut j = i + 1;
        let mut found_in = None;
        while j < code.len() && j < i + 24 {
            if punct(&code[j], '{') {
                break;
            }
            if ident(&code[j]) == Some("in") {
                found_in = Some(j);
                break;
            }
            j += 1;
        }
        let Some(mut k) = found_in.map(|j| j + 1) else {
            continue;
        };
        while k < code.len() && (punct(&code[k], '&') || ident(&code[k]) == Some("mut")) {
            k += 1;
        }
        let Some(name) = code.get(k).and_then(ident) else {
            continue;
        };
        let chained = code
            .get(k + 1)
            .is_some_and(|t| punct(t, '.') || punct(t, '('));
        if is_hash(name) && !chained {
            sink(Rule::NondeterministicIteration, code[k].line);
        }
    }
}

/// `wallclock-in-kernel`: `Instant::now` / `SystemTime::now` token runs.
fn scan_wallclock(code: &[Tok], sink: &mut impl FnMut(Rule, usize)) {
    for i in 0..code.len() {
        let Some(name) = ident(&code[i]) else {
            continue;
        };
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        if code.get(i + 1).is_some_and(|t| punct(t, ':'))
            && code.get(i + 2).is_some_and(|t| punct(t, ':'))
            && code.get(i + 3).and_then(ident) == Some("now")
        {
            sink(Rule::WallclockInKernel, code[i].line);
        }
    }
}

/// `lock-poison-discipline`: `.lock()/.read()/.write()` directly chained
/// into `.unwrap()`/`.expect(` — the established pattern is
/// `unwrap_or_else(PoisonError::into_inner)` (degrade, don't cascade).
fn scan_lock_unwrap(code: &[Tok], sink: &mut impl FnMut(Rule, usize)) {
    for i in 0..code.len() {
        let Some(name) = ident(&code[i]) else {
            continue;
        };
        if !matches!(name, "lock" | "read" | "write") {
            continue;
        }
        let acq = i >= 1
            && punct(&code[i - 1], '.')
            && code.get(i + 1).is_some_and(|t| punct(t, '('))
            && code.get(i + 2).is_some_and(|t| punct(t, ')'));
        if !acq {
            continue;
        }
        if code.get(i + 3).is_some_and(|t| punct(t, '.'))
            && code
                .get(i + 4)
                .and_then(ident)
                .is_some_and(|m| m == "unwrap" || m == "expect")
            && code.get(i + 5).is_some_and(|t| punct(t, '('))
        {
            sink(Rule::LockPoisonDiscipline, code[i + 4].line);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_source;
    use crate::Rule;

    #[test]
    fn panic_rule_fires_only_in_serving_scope() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            lint_source("src/serve.rs", bad).findings[0].rule,
            Rule::PanicInServingPath
        );
        assert!(lint_source("crates/core/src/incsr.rs", bad)
            .findings
            .is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let ok = "fn f() { g().unwrap_or_else(|_| 0); h().unwrap_or(1); }\n";
        assert!(lint_source("src/serve.rs", ok).findings.is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(lint_source("src/serve.rs", src).findings.is_empty());
    }

    #[test]
    fn hash_iteration_flagged_lookup_allowed() {
        let src = "fn f() {\n    let mut m: FxHashMap<u32, f64> = FxHashMap::default();\n    m.insert(1, 2.0);\n    let _ = m.get(&1);\n    for (k, v) in &m { let _ = (k, v); }\n}\n";
        let report = lint_source("crates/core/src/probe.rs", src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::NondeterministicIteration);
        assert_eq!(report.findings[0].line, 5);
    }

    #[test]
    fn hash_iteration_out_of_scope_module_ignored() {
        let src =
            "fn f(m: &std::collections::HashMap<u32, u32>) { for k in m.keys() { let _ = k; } }\n";
        assert!(lint_source("crates/core/src/rankone.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn wallclock_scoping() {
        let src = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(
            lint_source("crates/core/src/probe.rs", src).findings[0].rule,
            Rule::WallclockInKernel
        );
        assert!(lint_source("crates/bench/src/harness.rs", src)
            .findings
            .is_empty());
        assert!(lint_source("src/bin/incsim-cli.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn lock_discipline() {
        let bad = "fn f(l: &std::sync::RwLock<u32>) { let _ = l.read().unwrap(); }\n";
        let report = lint_source("crates/core/src/incsr.rs", bad);
        assert_eq!(report.findings[0].rule, Rule::LockPoisonDiscipline);
        let ok = "fn f(l: &std::sync::RwLock<u32>) { let _ = l.read().unwrap_or_else(std::sync::PoisonError::into_inner); }\n";
        assert!(lint_source("crates/core/src/incsr.rs", ok)
            .findings
            .is_empty());
    }

    #[test]
    fn suppression_needs_reason() {
        let with = "fn f(x: Option<u32>) {\n    // lint:allow(panic-in-serving-path): test fixture exercises the panic path\n    x.unwrap();\n}\n";
        let report = lint_source("src/serve.rs", with);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed.len(), 1);

        let without = "fn f(x: Option<u32>) {\n    // lint:allow(panic-in-serving-path)\n    x.unwrap();\n}\n";
        let report = lint_source("src/serve.rs", without);
        let rules: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::PanicInServingPath), "{report:?}");
        assert!(rules.contains(&Rule::BadSuppression), "{report:?}");
        assert!(report.suppressed.is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "fn f() { let _ = \"x.unwrap() and panic!\"; } // Instant::now in prose\n";
        assert!(lint_source("src/serve.rs", src).findings.is_empty());
    }
}

//! Known-bad corpus mirroring `src/serve.rs` *before* the PR 8 sweep.
//! Each shape below was live in the real tree; deleting one of the real
//! fixes recreates it, and the tier-1 `lint_clean` gate fails. This file
//! is never compiled — it exists to be linted.

impl Router {
    /// The exact pre-fix checkpoint pattern (`self.wal.take().expect`).
    pub fn maybe_checkpoint(&mut self) {
        let mut wal = self.wal.take().expect("checked above");
        wal.checkpoint();
    }

    /// Poisoned-lock cascade: the panic of a dead writer re-raised here.
    pub fn publish(&self) {
        let guard = self.slot.lock().unwrap();
        drop(guard);
    }

    /// "Can't happen" encoded as a crash instead of a typed error.
    pub fn dispatch(&self, owner: Option<usize>) -> usize {
        match owner {
            Some(s) => s,
            None => unreachable!("every op has a primary owner"),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_stays_legal_in_test_regions() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}

//! Known-bad corpus mirroring `src/wal.rs` *before* the PR 8 sweep.
//! Never compiled — linted only.

/// The pre-fix frame reader: a short buffer panics instead of yielding
/// a truncated-tail result.
fn le_u32(bytes: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap())
}

/// The pre-fix replay arm: checkpoint records "filtered above", so the
/// arm crashed instead of the filter being encoded in the type.
fn replay(rec: WalRecord) -> UpdateOp {
    match rec.kind {
        RecordKind::Edge => rec.op,
        RecordKind::Checkpoint => unreachable!("filtered above"),
    }
}

/// Hash-order reaching a serialized artifact.
fn index_order(index: &FxHashMap<u64, u32>) -> Vec<u64> {
    index.keys().copied().collect()
}

//! Known-bad corpus: the exact pre-fix drains of
//! `crates/core/src/probe.rs` — hash order feeding float accumulation.
//! Never compiled — linted only.

fn single_source_sampled(&self, a: u32) -> Vec<RankedNode> {
    let mut tally: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    let mut scores: FxHashMap<u32, f64> = FxHashMap::default();
    let mut frontier: FxHashMap<u32, f64> = FxHashMap::default();
    for (&(t, v), &cnt) in &tally {
        for (&x, &wx) in &frontier {
            let _ = (t, v, cnt, x, wx);
        }
    }
    let started = std::time::Instant::now();
    let _ = started;
    scores
        .into_iter()
        .map(|(node, score)| RankedNode { node, score })
        .collect()
}

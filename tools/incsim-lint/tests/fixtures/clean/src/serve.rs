//! Clean corpus: the post-fix shapes of the serving layer — what the
//! bad corpus's patterns were rewritten into. Linted only, never
//! compiled; the suite asserts zero findings here.

impl Router {
    /// Absent WAL is a state, not a crash.
    pub fn maybe_checkpoint(&mut self) -> Result<(), WalError> {
        let Some(mut wal) = self.wal.take() else {
            return Ok(());
        };
        wal.checkpoint()
    }

    /// A poisoned slot degrades into the last-published epoch.
    pub fn publish(&self) {
        let guard = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(guard);
    }

    /// "Can't happen" as a typed error: the router refuses the broken
    /// path instead of panicking mid-serve.
    pub fn dispatch(&self, owner: Option<usize>) -> Result<usize, ServeError> {
        owner.ok_or(ServeError::Internal(
            "an op's primary owner returned no stats",
        ))
    }
}

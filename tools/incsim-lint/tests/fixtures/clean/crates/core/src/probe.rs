//! Clean corpus: the post-fix probe drains — every hash-map drain goes
//! through the key-sorting helpers in `incsim_core::detorder`, point
//! lookups stay direct. Linted only, never compiled.

fn single_source_sampled() -> Vec<(u32, f64)> {
    let mut scores: FxHashMap<u32, f64> = FxHashMap::default();
    let mut frontier: FxHashMap<u32, f64> = FxHashMap::default();
    frontier.insert(1, 0.5);
    for (b, w) in crate::detorder::sorted_kv(&frontier) {
        *scores.entry(b).or_insert(0.0) += w;
    }
    crate::detorder::into_sorted_kv(scores)
}

//! Fixture suite: the analyzer against a known-bad corpus that mirrors
//! the real tree's *pre-fix* patterns (so reverting any PR 8 fix is
//! demonstrably caught), a clean corpus of the post-fix shapes, the
//! suppression protocol, `#[cfg(test)]` exemption, and the JSON schema.
//!
//! The corpus lives under `tests/fixtures/{bad,clean}/` with paths
//! mirroring the workspace layout — `lint_source` scopes rules by the
//! virtual path, exactly as `lint_workspace` does for real files.

use incsim_lint::{lint_source, manifest, Report, Rule};

/// Lints a fixture file under its virtual (workspace-relative) path.
fn lint_fixture(virtual_path: &str, source: &str) -> Report {
    lint_source(virtual_path, source)
}

/// The (rule, line) set of a report, order-insensitive.
fn hits(report: &Report) -> Vec<(Rule, usize)> {
    let mut v: Vec<(Rule, usize)> = report.findings.iter().map(|f| (f.rule, f.line)).collect();
    v.sort_by_key(|&(r, l)| (r.name(), l));
    v
}

// ---- known-bad corpus: every pre-fix pattern must fire ------------------

#[test]
fn bad_serve_fixture_catches_every_prefix_pattern() {
    let report = lint_fixture("src/serve.rs", include_str!("fixtures/bad/src/serve.rs"));
    let mut expected = vec![
        (Rule::PanicInServingPath, 9),  // self.wal.take().expect(...)
        (Rule::PanicInServingPath, 15), // .lock().unwrap()
        (Rule::LockPoisonDiscipline, 15),
        (Rule::PanicInServingPath, 23), // unreachable!(...)
    ];
    expected.sort_by_key(|&(r, l)| (r.name(), l));
    assert_eq!(hits(&report), expected, "{report:?}");
    assert!(!report.is_clean());
}

#[test]
fn bad_wal_fixture_catches_every_prefix_pattern() {
    let report = lint_fixture("src/wal.rs", include_str!("fixtures/bad/src/wal.rs"));
    let mut expected = vec![
        (Rule::PanicInServingPath, 7), // try_into().unwrap() in the frame reader
        (Rule::PanicInServingPath, 15), // unreachable! replay arm
        (Rule::NondeterministicIteration, 21), // index.keys()
    ];
    expected.sort_by_key(|&(r, l)| (r.name(), l));
    assert_eq!(hits(&report), expected, "{report:?}");
}

#[test]
fn bad_probe_fixture_catches_every_prefix_drain() {
    let report = lint_fixture(
        "crates/core/src/probe.rs",
        include_str!("fixtures/bad/crates/core/src/probe.rs"),
    );
    let mut expected = vec![
        (Rule::NondeterministicIteration, 9), // for (&(t, v), &cnt) in &tally
        (Rule::NondeterministicIteration, 10), // for (&x, &wx) in &frontier
        (Rule::WallclockInKernel, 14),        // Instant::now()
        (Rule::NondeterministicIteration, 17), // scores.into_iter()
    ];
    expected.sort_by_key(|&(r, l)| (r.name(), l));
    assert_eq!(hits(&report), expected, "{report:?}");
}

#[test]
fn bad_manifest_catches_every_registry_dep() {
    let mut findings = Vec::new();
    manifest::scan_manifest(
        "Cargo.toml",
        include_str!("fixtures/bad/Cargo.toml"),
        &mut findings,
    );
    let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
    assert!(
        findings.iter().all(|f| f.rule == Rule::RegistryDep),
        "{findings:?}"
    );
    // serde = "1.0"; rand = { version = ... }; [dev-dependencies.criterion].
    assert_eq!(lines, vec![10, 11, 13], "{findings:?}");
}

// ---- clean corpus: the post-fix shapes must stay silent -----------------

#[test]
fn clean_corpus_is_silent() {
    let serve = lint_fixture("src/serve.rs", include_str!("fixtures/clean/src/serve.rs"));
    assert!(serve.is_clean(), "{serve:?}");

    let probe = lint_fixture(
        "crates/core/src/probe.rs",
        include_str!("fixtures/clean/crates/core/src/probe.rs"),
    );
    assert!(probe.is_clean(), "{probe:?}");

    let mut findings = Vec::new();
    manifest::scan_manifest(
        "Cargo.toml",
        include_str!("fixtures/clean/Cargo.toml"),
        &mut findings,
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---- #[cfg(test)] exemption ---------------------------------------------

#[test]
fn cfg_test_region_of_bad_fixture_is_exempt() {
    // The bad serve fixture ends in a #[cfg(test)] module with an
    // unwrap; none of the findings may point into it.
    let report = lint_fixture("src/serve.rs", include_str!("fixtures/bad/src/serve.rs"));
    assert!(
        report.findings.iter().all(|f| f.line < 28),
        "a finding leaked into the #[cfg(test)] region: {report:?}"
    );
}

// ---- suppression protocol -----------------------------------------------

#[test]
fn suppression_with_reason_is_honored_and_counted() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(panic-in-serving-path): fixture proves the allow path\n    x.unwrap()\n}\n";
    let report = lint_source("src/serve.rs", src);
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, Rule::PanicInServingPath);
    assert_eq!(report.suppressed[0].reason, "fixture proves the allow path");
}

#[test]
fn suppression_without_reason_is_rejected_and_original_stands() {
    for bad_allow in [
        "// lint:allow(panic-in-serving-path)",     // no reason at all
        "// lint:allow(panic-in-serving-path):",    // empty reason
        "// lint:allow(panic-in-serving-path):   ", // whitespace reason
        "// lint:allow(no-such-rule): some reason", // unknown rule
        "// lint:allow panic-in-serving-path: why", // missing parens
    ] {
        let src = format!("fn f(x: Option<u32>) -> u32 {{\n    {bad_allow}\n    x.unwrap()\n}}\n");
        let report = lint_source("src/serve.rs", &src);
        let rules: Vec<Rule> = report.findings.iter().map(|f| f.rule).collect();
        assert!(
            rules.contains(&Rule::PanicInServingPath),
            "{bad_allow}: original finding vanished: {report:?}"
        );
        assert!(
            rules.contains(&Rule::BadSuppression),
            "{bad_allow}: malformed allow not reported: {report:?}"
        );
        assert!(report.suppressed.is_empty(), "{bad_allow}: {report:?}");
    }
}

#[test]
fn suppression_must_name_the_matching_rule() {
    // A justified allow for the *wrong* rule suppresses nothing.
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint:allow(wallclock-in-kernel): wrong rule on purpose\n    x.unwrap()\n}\n";
    let report = lint_source("src/serve.rs", src);
    assert_eq!(report.findings.len(), 1, "{report:?}");
    assert_eq!(report.findings[0].rule, Rule::PanicInServingPath);
    assert!(report.suppressed.is_empty());
}

// ---- JSON output is schema-stable ---------------------------------------

#[test]
fn json_schema_is_stable() {
    let report = lint_source(
        "src/serve.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let expected = concat!(
        "{\n",
        "  \"version\": 1,\n",
        "  \"findings\": [\n",
        "    {\"file\": \"src/serve.rs\", \"line\": 1, \"rule\": \"panic-in-serving-path\", ",
        "\"snippet\": \"fn f(x: Option<u32>) -> u32 { x.unwrap() }\"}\n",
        "  ],\n",
        "  \"suppressed\": [],\n",
        "  \"files_scanned\": 1\n",
        "}\n",
    );
    assert_eq!(report.to_json(), expected);
}

#[test]
fn json_escapes_quotes_and_control_characters() {
    let report = lint_source(
        "src/serve.rs",
        "fn f(x: Option<u32>) -> u32 { x.expect(\"tab\\there\") }\n",
    );
    let json = report.to_json();
    assert!(json.contains("\\\"tab\\\\there\\\""), "{json}");
    // Output stays parseable line-structured text: one finding object
    // per line, no raw control characters.
    assert!(!json.bytes().any(|b| b < 0x20 && b != b'\n'), "{json}");
}

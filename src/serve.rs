//! The `incsim` **serving layer**: shard the node set across engines,
//! serve reads from immutable epoch snapshots.
//!
//! The [`crate::api::SimRank`] handle is the single-node service surface;
//! this module is the scaling step on top of it, in two composable
//! pieces:
//!
//! * [`ShardedSimRank`] — a **router** over `N` per-shard engines (each
//!   its own `Box<dyn SimRankMaintainer + Send>` behind a
//!   [`SimRank`](crate::api::SimRank) handle, built by the same
//!   [`SimRankBuilder`]). The node set is block-partitioned; updates are
//!   routed to the shard(s) owning their endpoints, queries to the shard
//!   owning the query node. [`ApplyPolicy`](crate::api::ApplyPolicy)
//!   (including `Auto`) keeps working independently per shard, and batch
//!   updates fan out across shards in parallel.
//! * [`ConcurrentSimRank`] — a **single-writer / many-reader** wrapper:
//!   readers query an immutable epoch snapshot ([`Epoch`], an
//!   `Arc`-parked [`SnapshotQuery`] handle per shard — a frozen score
//!   matrix for dense engines, a frozen graph for the probe engine)
//!   through cloneable
//!   [`EpochReader`] handles, while the one writer applies updates and
//!   [publishes](ConcurrentSimRank::publish) new epochs. Readers never
//!   block the writer and never observe a half-applied update: a reader
//!   holds one coherent epoch for as long as it likes.
//!
//! ## Partitioning and the exactness contract
//!
//! Nodes are partitioned into contiguous blocks by id: with `n₀` nodes at
//! build time and `S` shards, shard `s` owns ids
//! `[s·⌈n₀/S⌉, (s+1)·⌈n₀/S⌉)` (the last shard also owns any ids appended
//! later via [`ShardedSimRank::add_node`]). Every shard engine spans the
//! **full** node set — partitioning routes *work*, not matrix indices —
//! and is seeded with the same batch-computed initial scores (matrix-free
//! shards skip the batch solve and hold only the graph).
//!
//! Routing rules:
//!
//! * an edge update `(i, j)` is applied to `owner(i)` and `owner(j)`
//!   (once, when they coincide);
//! * a pair query `s(a, b)` is answered by `owner(min(a, b))` — both
//!   orders of the same pair hit the same shard, so
//!   `pair(a, b) == pair(b, a)` holds **exactly**, always;
//! * per-node queries (`single_source`, `top_k`, `similar_above`) are
//!   answered by `owner(a)`.
//!
//! **Contract.** Each shard engine is *exact for the update stream it
//! receives* — the initial graph plus every update touching a node it
//! owns. Its answers therefore equal global SimRank exactly whenever the
//! updates it did **not** see cannot influence the scores it serves; the
//! clean sufficient condition is a **component-aligned partition**: every
//! weakly-connected component of the evolving graph stays within one
//! shard's ownership block (SimRank between nodes of different components
//! is identically 0, and no in-link path crosses components). The
//! conformance suite and the `concurrent_throughput` bench drive exactly
//! such workloads and hold the router to ≤ 1e-12 of batch recomputation.
//! For partitions that split a component, per-shard answers are exact
//! SimRank *of the shard's observed subgraph* — a documented
//! approximation (each missed remote update perturbs scores by at most
//! `C^d` at in-link distance `d`), not silent corruption; align the
//! partition when exactness across the cut matters.
//!
//! ## Epoch semantics
//!
//! [`ConcurrentSimRank`] decouples reads from writes with epochs:
//!
//! * the writer mutates shard engines freely; **readers are unaffected**
//!   (they hold the previously published epoch);
//! * [`ConcurrentSimRank::publish`] freezes every shard's current
//!   `S_base + Δ` into a new [`Epoch`] and swaps it in atomically
//!   (readers pick it up on their next [`EpochReader::epoch`] call);
//! * a lazy window travels *into* the epoch: pending ΔS factors are
//!   snapshotted, not materialised, so publishing never forces an `n²`
//!   apply.
//!
//! The swap slot is an `RwLock<Arc<Epoch>>` held only for the pointer
//! clone/replace (an arc-swap without the dependency — `std` only);
//! queries themselves run entirely outside the lock. Readers fetching an
//! epoch per *batch* of queries (see [`EpochReader::epoch`]) pay the
//! synchronisation cost once per batch.
//!
//! ## Example
//!
//! ```
//! use incsim::api::SimRankBuilder;
//! use incsim::core::SimRankConfig;
//! use incsim::graph::DiGraph;
//!
//! let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
//! let mut serving = SimRankBuilder::new()
//!     .config(SimRankConfig::new(0.6, 10).unwrap())
//!     .shards(2)
//!     .concurrent(g)
//!     .unwrap();
//!
//! let reader = serving.reader();          // Clone + Send: one per thread
//! let before = reader.epoch();
//! serving.insert(3, 1).unwrap();          // writer side
//! assert_eq!(reader.epoch().seq(), before.seq()); // not yet visible
//! serving.publish();
//! assert!(reader.epoch().seq() > before.seq());   // now it is
//! let _scores = reader.top_k(1, 3);
//! ```

use crate::api::{BuildError, ModeCounters, SimRank, SimRankBuilder};
use crate::core::query::RankedNode;
use crate::core::{SimRankConfig, SnapshotQuery, UpdateError, UpdateStats};
use crate::graph::{DiGraph, UpdateOp};
use crate::linalg::DenseMatrix;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Worker count for the serving layer's parallel paths (per-shard batch
/// dispatch, reader pools in the harnesses): `INCSIM_THREADS` when set,
/// otherwise the host parallelism — same knob as the fused apply.
pub fn serve_threads() -> usize {
    crate::linalg::lowrank::default_threads()
}

/// Raises a stop flag when dropped — **including on panic unwind**.
///
/// The scope-based reader/writer harnesses around [`ConcurrentSimRank`]
/// ([`drive_load`], the conformance tests, the serving example) spin
/// reader threads on an `AtomicBool`; if the writer side panics before
/// storing the flag, `std::thread::scope` waits on those readers forever
/// and the panic never propagates. Holding a `RaiseOnDrop` over the
/// writer body turns that livelock into a clean join-and-propagate.
pub struct RaiseOnDrop<'a>(pub &'a AtomicBool);

impl Drop for RaiseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// The block partition of node ids across shards (see the
/// [module docs](self) for the ownership rules and exactness contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPartition {
    shards: usize,
    block: usize,
}

impl ShardPartition {
    /// Partitions `n` initial nodes across `shards` contiguous blocks
    /// (`shards` is clamped to ≥ 1; a shard count above `n` leaves the
    /// high shards owning no nodes, which is legal).
    pub fn new(n: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardPartition {
            shards,
            block: n.div_ceil(shards).max(1),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard owning node `v`. Ids past the initial range (appended
    /// nodes) fall to the last shard.
    pub fn owner(&self, v: u32) -> usize {
        (v as usize / self.block).min(self.shards - 1)
    }

    /// The shard answering pair queries on `{a, b}`: the owner of the
    /// smaller id, so both argument orders route identically and pair
    /// symmetry is structural.
    pub fn pair_owner(&self, a: u32, b: u32) -> usize {
        self.owner(a.min(b))
    }

    /// The contiguous id range shard `s` owns in an `n`-node graph
    /// (possibly empty when `s` exceeds the populated blocks; the last
    /// shard also owns every id appended past the initial range).
    pub fn owned_block(&self, s: usize, n: usize) -> std::ops::Range<u32> {
        let start = (s * self.block).min(n) as u32;
        let end = if s + 1 == self.shards {
            n as u32
        } else {
            ((s + 1) * self.block).min(n) as u32
        };
        start..end.max(start)
    }
}

/// A router over `N` per-shard engines: same service surface as
/// [`SimRank`], scaled across shards. Build with
/// [`SimRankBuilder::shards`] + [`SimRankBuilder::build_sharded`].
///
/// The router keeps the authoritative global graph; updates are validated
/// against it *before* touching any shard, so an invalid op (duplicate
/// insert, missing delete, node out of range) is rejected atomically and
/// a batch is all-or-nothing. See the [module docs](self) for routing and
/// exactness.
pub struct ShardedSimRank {
    shards: Vec<SimRank>,
    partition: ShardPartition,
    graph: DiGraph,
}

impl ShardedSimRank {
    /// Builds the router from a builder, a graph, and pre-computed scores
    /// (every shard is seeded with a copy; [`EngineKind::IncSvd`] shards
    /// derive their own factorisation as usual, and matrix-free kinds
    /// ignore the matrix — prefer
    /// [`SimRankBuilder::build_sharded`](crate::api::SimRankBuilder::build_sharded)
    /// for those, which never allocates it in the first place).
    ///
    /// [`EngineKind::IncSvd`]: crate::api::EngineKind::IncSvd
    pub fn with_scores(
        builder: SimRankBuilder,
        graph: DiGraph,
        scores: DenseMatrix,
    ) -> Result<Self, BuildError> {
        Self::build_internal(builder, graph, Some(scores))
    }

    /// Shared construction: `scores` of `None` lets each shard build
    /// without ever seeing an `n²` buffer (matrix-free kinds) or compute
    /// its own (matrix kinds — the public paths always pass `Some` for
    /// those, computing the batch scores once, not per shard).
    pub(crate) fn build_internal(
        builder: SimRankBuilder,
        graph: DiGraph,
        scores: Option<DenseMatrix>,
    ) -> Result<Self, BuildError> {
        let shard_count = builder.shard_count();
        let partition = ShardPartition::new(graph.node_count(), shard_count);
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let b = builder.clone();
            shards.push(match &scores {
                Some(s) => b.with_scores(graph.clone(), s.clone())?,
                None => b.from_graph(graph.clone())?,
            });
        }
        Ok(ShardedSimRank {
            shards,
            partition,
            graph,
        })
    }

    // ---- topology ------------------------------------------------------

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The node partition.
    pub fn partition(&self) -> &ShardPartition {
        &self.partition
    }

    /// Read access to one shard's service handle (diagnostics, tests).
    ///
    /// # Panics
    /// Panics if `s >= shard_count()`.
    pub fn shard(&self, s: usize) -> &SimRank {
        &self.shards[s]
    }

    /// The authoritative global graph (every update applied, regardless
    /// of which shards received it).
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The engine configuration (identical across shards).
    pub fn config(&self) -> &SimRankConfig {
        self.shards[0].config()
    }

    // ---- updates -------------------------------------------------------

    /// Applies one link update: validated against the global graph, then
    /// routed to the shard(s) owning its endpoints. Returns the stats of
    /// each shard application (one entry, or two when the endpoints live
    /// on different shards).
    pub fn update(&mut self, op: UpdateOp) -> Result<Vec<UpdateStats>, UpdateError> {
        let (i, j) = op.endpoints();
        let kind = match op {
            UpdateOp::Insert(..) => crate::core::UpdateKind::Insert,
            UpdateOp::Delete(..) => crate::core::UpdateKind::Delete,
        };
        crate::core::validate_update(&self.graph, i, j, kind)?;
        let mut stats = Vec::with_capacity(2);
        for s in self.owners(i, j) {
            stats.push(self.shards[s].update(op)?);
        }
        op.apply(&mut self.graph)
            .expect("validated against this graph");
        Ok(stats)
    }

    /// Inserts edge `(i, j)` on the owning shard(s).
    pub fn insert(&mut self, i: u32, j: u32) -> Result<Vec<UpdateStats>, UpdateError> {
        self.update(UpdateOp::Insert(i, j))
    }

    /// Deletes edge `(i, j)` on the owning shard(s).
    pub fn remove(&mut self, i: u32, j: u32) -> Result<Vec<UpdateStats>, UpdateError> {
        self.update(UpdateOp::Delete(i, j))
    }

    /// Applies a batch `ΔG`, fanning the per-shard sub-batches out across
    /// up to [`serve_threads`] worker threads (shard engines are
    /// independent, so this is the update-side parallelism sharding buys).
    /// The whole batch is validated against the global graph first and
    /// rejected **atomically** if any op is invalid — stronger than the
    /// single-handle prefix semantics, because the router can afford to
    /// simulate the batch on its shadow graph before any engine moves.
    ///
    /// Returns one [`UpdateStats`] per op (from the op's primary owner,
    /// the shard that also answers pair queries on its endpoints).
    pub fn update_batch(&mut self, ops: &[UpdateOp]) -> Result<Vec<UpdateStats>, UpdateError> {
        self.update_batch_with_threads(ops, serve_threads())
    }

    /// [`Self::update_batch`] with an explicit worker-thread cap
    /// (1 = fully serial dispatch). Results are identical for every
    /// thread count; only the wall-clock moves.
    pub fn update_batch_with_threads(
        &mut self,
        ops: &[UpdateOp],
        threads: usize,
    ) -> Result<Vec<UpdateStats>, UpdateError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        // Atomic pre-validation: replay the batch on a shadow graph.
        let mut shadow = self.graph.clone();
        for &op in ops {
            op.apply(&mut shadow).map_err(UpdateError::Graph)?;
        }

        // Route: per-shard sub-batches, preserving global op order, plus
        // the global index each sub-op came from.
        let mut sub_ops: Vec<Vec<UpdateOp>> = vec![Vec::new(); self.shards.len()];
        let mut sub_idx: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (g, &op) in ops.iter().enumerate() {
            let (i, j) = op.endpoints();
            for s in self.owners(i, j) {
                sub_ops[s].push(op);
                sub_idx[s].push(g);
            }
        }

        // Dispatch: the busy shards are split into at most `threads`
        // contiguous groups, one scoped worker per group, so the cap is
        // honoured exactly (a group works through its shards serially).
        let shard_count = self.shards.len();
        let mut busy: Vec<(usize, &mut SimRank, &Vec<UpdateOp>)> = self
            .shards
            .iter_mut()
            .zip(&sub_ops)
            .enumerate()
            .filter(|(_, (_, sub))| !sub.is_empty())
            .map(|(s, (shard, sub))| (s, shard, sub))
            .collect();
        let workers = threads.max(1).min(busy.len().max(1));
        let mut per_shard: Vec<Option<Vec<UpdateStats>>> = vec![None; shard_count];
        if workers <= 1 {
            for (s, shard, sub) in busy {
                per_shard[s] = Some(shard.update_batch(sub)?);
            }
        } else {
            let group_len = busy.len().div_ceil(workers);
            let mut results: Vec<(usize, Result<Vec<UpdateStats>, UpdateError>)> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for group in busy.chunks_mut(group_len) {
                    handles.push(scope.spawn(move || {
                        group
                            .iter_mut()
                            .map(|(s, shard, sub)| (*s, shard.update_batch(sub)))
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    results.extend(h.join().expect("shard worker panicked"));
                }
            });
            for (s, r) in results {
                per_shard[s] = Some(r?);
            }
        }

        // Pre-validation guarantees per-shard success (each shard's graph
        // agrees with the global one on every edge it owns), so reaching
        // here means every sub-batch applied; commit the shadow graph and
        // collect each op's primary-owner stats.
        self.graph = shadow;
        let mut out: Vec<Option<UpdateStats>> = vec![None; ops.len()];
        for (s, stats) in per_shard.iter().enumerate() {
            let Some(stats) = stats else { continue };
            for (k, &g) in sub_idx[s].iter().enumerate() {
                let (i, j) = ops[g].endpoints();
                if self.partition.pair_owner(i, j) == s {
                    out[g] = Some(stats[k]);
                }
            }
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("every op has a primary owner"))
            .collect())
    }

    /// Appends an isolated node to **every** shard (all engines span the
    /// full node set); the new id is owned by the last shard.
    pub fn add_node(&mut self) -> u32 {
        let id = self.graph.add_node();
        for shard in &mut self.shards {
            let shard_id = shard.add_node();
            debug_assert_eq!(shard_id, id, "shard node-id drift");
        }
        id
    }

    /// The shard(s) owning the endpoints of an edge, deduplicated.
    fn owners(&self, i: u32, j: u32) -> impl Iterator<Item = usize> {
        let a = self.partition.owner(i);
        let b = self.partition.owner(j);
        std::iter::once(a.min(b)).chain((a != b).then_some(a.max(b)))
    }

    // ---- queries -------------------------------------------------------

    /// Similarity of one node pair, answered by the owner of the smaller
    /// id with the arguments in canonical `(min, max)` order — both
    /// orders are literally the same shard read, so
    /// `pair(a, b) == pair(b, a)` holds bit-for-bit (the engine matrix
    /// itself is only symmetric up to rounding).
    ///
    /// # Panics
    /// Panics if either node is out of range; see [`Self::try_pair`].
    pub fn pair(&self, a: u32, b: u32) -> f64 {
        self.shards[self.partition.pair_owner(a, b)].pair(a.min(b), a.max(b))
    }

    /// [`Self::pair`], returning `None` when either node is absent from
    /// every shard (id out of range) instead of panicking.
    pub fn try_pair(&self, a: u32, b: u32) -> Option<f64> {
        let n = self.graph.node_count() as u32;
        (a < n && b < n).then(|| self.pair(a, b))
    }

    /// All similarities of node `a`, from its owning shard.
    ///
    /// # Panics
    /// Panics if `a` is out of range; see [`Self::try_single_source`].
    pub fn single_source(&self, a: u32) -> Vec<RankedNode> {
        self.shards[self.partition.owner(a)].single_source(a)
    }

    /// [`Self::single_source`], `None` when `a` is absent from every shard.
    pub fn try_single_source(&self, a: u32) -> Option<Vec<RankedNode>> {
        ((a as usize) < self.graph.node_count()).then(|| self.single_source(a))
    }

    /// The `k` most similar nodes to `a`, from its owning shard.
    ///
    /// # Panics
    /// Panics if `a` is out of range; see [`Self::try_top_k`].
    pub fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        self.shards[self.partition.owner(a)].top_k(a, k)
    }

    /// [`Self::top_k`], `None` when `a` is absent from every shard.
    pub fn try_top_k(&self, a: u32, k: usize) -> Option<Vec<RankedNode>> {
        ((a as usize) < self.graph.node_count()).then(|| self.top_k(a, k))
    }

    /// Nodes at least `threshold`-similar to `a`, from its owning shard.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.shards[self.partition.owner(a)].similar_above(a, threshold)
    }

    // ---- maintenance & introspection -----------------------------------

    /// Materialises pending deferred ΔS on every shard; returns the total
    /// rank-two terms applied.
    pub fn flush(&mut self) -> usize {
        self.shards.iter_mut().map(|s| s.flush()).sum()
    }

    /// Recompresses pending deferred ΔS on every shard **in place** (see
    /// [`SimRank::compress`]): the serve-side alternative to
    /// [`Self::flush`] that keeps every lazy window open — epoch
    /// publication keeps snapshotting `S_base + Δ` factors, just fewer of
    /// them. Returns the largest pending rank that remains.
    pub fn compress_pending(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.compress())
            .max()
            .unwrap_or(0)
    }

    /// Largest pending deferred-ΔS rank across shards (0 when every shard
    /// is fully materialised).
    pub fn pending_rank(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.pending_rank())
            .max()
            .unwrap_or(0)
    }

    /// Total heap bytes of the pending deferred-ΔS buffers across shards
    /// — the router-level memory-pressure signal (see
    /// [`SimRank::pending_heap_bytes`]).
    pub fn pending_heap_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.pending_heap_bytes()).sum()
    }

    /// Routing counters aggregated across every shard — per-shard
    /// accounting stays meaningful behind the router; see
    /// [`Self::shard_counters`] for the unmerged view.
    pub fn counters(&self) -> ModeCounters {
        let mut total = ModeCounters::default();
        for shard in &self.shards {
            total.merge(&shard.counters());
        }
        total
    }

    /// Per-shard routing counters, indexed by shard.
    pub fn shard_counters(&self) -> Vec<ModeCounters> {
        self.shards.iter().map(|s| s.counters()).collect()
    }

    /// Freezes every shard's current state into an [`Epoch`] with the
    /// given sequence number (the [`ConcurrentSimRank`] publish
    /// primitive; also useful stand-alone for consistent bulk exports).
    /// Matrix shards freeze an owned `S_base + Δ` snapshot; matrix-free
    /// shards freeze their graph (`O(n + m)`) and keep sampling — every
    /// engine publishes through the same engine-agnostic
    /// [`SnapshotQuery`] handle.
    pub fn snapshot_epoch(&self, seq: u64) -> Epoch {
        Epoch {
            seq,
            partition: self.partition,
            n: self.graph.node_count(),
            views: self.shards.iter().map(|s| s.snapshot_query()).collect(),
        }
    }
}

impl std::fmt::Debug for ShardedSimRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimRank")
            .field("shards", &self.shards.len())
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .field("engine", &self.shards[0].engine_name())
            .finish()
    }
}

/// One published, immutable serving epoch: a frozen query handle per
/// shard ([`SnapshotQuery`]: an owned `S_base + Δ` snapshot for matrix
/// engines, a frozen graph for the probe engine) plus the partition that
/// routes queries into them. Shared across reader threads behind an
/// `Arc`; every answer drawn from one `Epoch` value is mutually
/// consistent (the writer can never tear it).
#[derive(Clone, Debug)]
pub struct Epoch {
    seq: u64,
    partition: ShardPartition,
    n: usize,
    views: Vec<Arc<dyn SnapshotQuery>>,
}

impl Epoch {
    /// The publish sequence number (0 = the epoch published at build).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Node count of the frozen state.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Similarity of one node pair (routing and canonical argument order
    /// as in [`ShardedSimRank::pair`], so both orders read identically).
    ///
    /// # Panics
    /// Panics if either node is out of range; see [`Self::try_pair`].
    pub fn pair(&self, a: u32, b: u32) -> f64 {
        self.views[self.partition.pair_owner(a, b)].pair(a.min(b), a.max(b))
    }

    /// [`Self::pair`], `None` when either node is out of range.
    pub fn try_pair(&self, a: u32, b: u32) -> Option<f64> {
        let n = self.n() as u32;
        (a < n && b < n).then(|| self.pair(a, b))
    }

    /// All similarities of node `a` at this epoch.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn single_source(&self, a: u32) -> Vec<RankedNode> {
        self.views[self.partition.owner(a)].single_source(a)
    }

    /// The `k` most similar nodes to `a` at this epoch.
    ///
    /// # Panics
    /// Panics if `a` is out of range; see [`Self::try_top_k`].
    pub fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        self.views[self.partition.owner(a)].top_k(a, k)
    }

    /// [`Self::top_k`], `None` when `a` is out of range.
    pub fn try_top_k(&self, a: u32, k: usize) -> Option<Vec<RankedNode>> {
        ((a as usize) < self.n()).then(|| self.top_k(a, k))
    }

    /// Nodes at least `threshold`-similar to `a` at this epoch.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.views[self.partition.owner(a)].similar_above(a, threshold)
    }
}

/// The swap slot shared between the writer and every reader. `RwLock` is
/// held only to clone or replace the `Arc` — queries run outside it.
struct EpochSlot {
    current: RwLock<Arc<Epoch>>,
}

impl EpochSlot {
    fn load(&self) -> Arc<Epoch> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn store(&self, epoch: Arc<Epoch>) {
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = epoch;
    }
}

/// The single-writer / many-reader serving handle: owns a
/// [`ShardedSimRank`] for the write path and publishes immutable
/// [`Epoch`]s for the read path. Build with
/// [`SimRankBuilder::concurrent`]; hand [`EpochReader`]s (cheap, `Clone +
/// Send + Sync`) to query threads.
///
/// Updates are **not** visible to readers until [`Self::publish`] runs —
/// that is the point: the writer batches freely, readers always see one
/// coherent state. See the [module docs](self) for the epoch semantics.
pub struct ConcurrentSimRank {
    inner: ShardedSimRank,
    slot: Arc<EpochSlot>,
    seq: u64,
}

impl ConcurrentSimRank {
    /// Wraps a router, publishing epoch 0 from its current state.
    pub fn new(inner: ShardedSimRank) -> Self {
        let slot = Arc::new(EpochSlot {
            current: RwLock::new(Arc::new(inner.snapshot_epoch(0))),
        });
        ConcurrentSimRank {
            inner,
            slot,
            seq: 0,
        }
    }

    /// A new reader handle. Readers are independent: clone one per
    /// thread, or clone the handle itself — both see every future epoch.
    pub fn reader(&self) -> EpochReader {
        EpochReader {
            slot: Arc::clone(&self.slot),
        }
    }

    /// Freezes the current shard states into a new epoch and swaps it in;
    /// returns its sequence number. Pending lazy ΔS is snapshotted, not
    /// materialised.
    pub fn publish(&mut self) -> u64 {
        self.seq += 1;
        // Build the epoch before touching the slot: readers keep serving
        // the old epoch during the (n²-copy) freeze and only ever wait on
        // the pointer swap itself.
        let epoch = Arc::new(self.inner.snapshot_epoch(self.seq));
        self.slot.store(epoch);
        self.seq
    }

    /// Sequence number of the most recently published epoch.
    pub fn epoch_seq(&self) -> u64 {
        self.seq
    }

    /// Applies one update on the write path (readers unaffected until
    /// [`Self::publish`]).
    pub fn update(&mut self, op: UpdateOp) -> Result<Vec<UpdateStats>, UpdateError> {
        self.inner.update(op)
    }

    /// Inserts edge `(i, j)` on the write path.
    pub fn insert(&mut self, i: u32, j: u32) -> Result<Vec<UpdateStats>, UpdateError> {
        self.inner.insert(i, j)
    }

    /// Deletes edge `(i, j)` on the write path.
    pub fn remove(&mut self, i: u32, j: u32) -> Result<Vec<UpdateStats>, UpdateError> {
        self.inner.remove(i, j)
    }

    /// Applies a batch on the write path (atomic; parallel across shards).
    pub fn update_batch(&mut self, ops: &[UpdateOp]) -> Result<Vec<UpdateStats>, UpdateError> {
        self.inner.update_batch(ops)
    }

    /// [`ShardedSimRank::update_batch_with_threads`] on the write path.
    pub fn update_batch_with_threads(
        &mut self,
        ops: &[UpdateOp],
        threads: usize,
    ) -> Result<Vec<UpdateStats>, UpdateError> {
        self.inner.update_batch_with_threads(ops, threads)
    }

    /// Materialises pending deferred ΔS on every shard **and publishes**
    /// the result as a new epoch (the one mutation that should always be
    /// immediately visible); returns the rank-two terms applied.
    pub fn flush(&mut self) -> usize {
        let pairs = self.inner.flush();
        self.publish();
        pairs
    }

    /// Recompresses pending deferred ΔS on every shard in place (no
    /// publish needed: compression changes no observable score, only the
    /// factor count behind future epochs). Returns the largest pending
    /// rank that remains.
    pub fn compress_pending(&mut self) -> usize {
        self.inner.compress_pending()
    }

    /// The wrapped router — fresh (unpublished) state, for the writer's
    /// own reads and introspection.
    pub fn sharded(&self) -> &ShardedSimRank {
        &self.inner
    }

    /// Mutable access to the wrapped router (escape hatch; remember that
    /// readers only see published epochs).
    pub fn sharded_mut(&mut self) -> &mut ShardedSimRank {
        &mut self.inner
    }
}

impl std::fmt::Debug for ConcurrentSimRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentSimRank")
            .field("inner", &self.inner)
            .field("epoch_seq", &self.seq)
            .finish()
    }
}

/// A read handle onto the published epoch stream: `Clone + Send + Sync`,
/// one per reader thread. [`Self::epoch`] pins the current epoch (hold it
/// across a batch of queries — synchronise once, read thousands of
/// times); the convenience query methods re-fetch per call.
#[derive(Clone)]
pub struct EpochReader {
    slot: Arc<EpochSlot>,
}

impl EpochReader {
    /// The most recently published epoch, pinned: the returned `Arc`
    /// keeps answering from that one coherent state no matter how many
    /// epochs the writer publishes after.
    pub fn epoch(&self) -> Arc<Epoch> {
        self.slot.load()
    }

    /// Sequence number of the current epoch.
    pub fn seq(&self) -> u64 {
        self.epoch().seq()
    }

    /// Similarity of one node pair at the current epoch.
    ///
    /// # Panics
    /// Panics if either node is out of range; see [`Epoch::try_pair`].
    pub fn pair(&self, a: u32, b: u32) -> f64 {
        self.epoch().pair(a, b)
    }

    /// All similarities of node `a` at the current epoch.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn single_source(&self, a: u32) -> Vec<RankedNode> {
        self.epoch().single_source(a)
    }

    /// The `k` most similar nodes to `a` at the current epoch.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn top_k(&self, a: u32, k: usize) -> Vec<RankedNode> {
        self.epoch().top_k(a, k)
    }

    /// Nodes at least `threshold`-similar to `a` at the current epoch.
    ///
    /// # Panics
    /// Panics if `a` is out of range.
    pub fn similar_above(&self, a: u32, threshold: f64) -> Vec<RankedNode> {
        self.epoch().similar_above(a, threshold)
    }
}

impl std::fmt::Debug for EpochReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochReader")
            .field("epoch_seq", &self.epoch().seq())
            .finish()
    }
}

/// Knobs for [`drive_load`].
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Reader threads issuing pair queries against pinned epochs.
    pub readers: usize,
    /// Measurement window.
    pub duration: std::time::Duration,
    /// Edge toggles per writer batch.
    pub write_batch: usize,
    /// Publish a fresh epoch every this many batches (a final epoch is
    /// always published when the window closes).
    pub publish_every: usize,
    /// Worker-thread cap for the per-shard batch fan-out
    /// ([`ShardedSimRank::update_batch_with_threads`]).
    pub writer_threads: usize,
    /// Seed of the writer's toggle stream.
    pub seed: u64,
}

/// Outcome of one [`drive_load`] window.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Pair queries the readers answered.
    pub queries: u64,
    /// Edge toggles the writer applied.
    pub updates: usize,
    /// Epochs published over the handle's lifetime so far.
    pub epochs_published: u64,
    /// Actual window length (≥ the requested duration: the writer
    /// finishes its in-flight batch).
    pub elapsed_secs: f64,
}

impl LoadReport {
    /// Aggregate reader throughput.
    pub fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / self.elapsed_secs.max(1e-12)
    }

    /// Writer throughput.
    pub fn updates_per_sec(&self) -> f64 {
        self.updates as f64 / self.elapsed_secs.max(1e-12)
    }
}

/// The serving load driver shared by `bench-snapshot`'s
/// `concurrent_throughput` case and `incsim-cli serve`: `readers` threads
/// issue batches of 256 pair queries against pinned epochs (one
/// [`EpochReader::epoch`] per batch) while the writer applies
/// [`LoadOptions::write_batch`]-sized toggle batches — spread round-robin
/// across the shard blocks so the per-shard fan-out stays balanced —
/// publishing on the configured cadence and once more when the window
/// closes. Blocks until every thread has joined, even on writer error.
///
/// # Panics
/// Panics if the graph has fewer than 2 nodes, or `readers`,
/// `write_batch` or `publish_every` is 0.
pub fn drive_load(
    serving: &mut ConcurrentSimRank,
    opts: &LoadOptions,
) -> Result<LoadReport, UpdateError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::AtomicU64;

    let n = serving.sharded().graph().node_count();
    assert!(n >= 2, "drive_load: need at least two nodes");
    assert!(
        opts.readers > 0 && opts.write_batch > 0 && opts.publish_every > 0,
        "drive_load: readers, write_batch and publish_every must be positive"
    );
    // Toggle targets: the shard blocks (round-robin keeps the fan-out
    // balanced); blocks too small to toggle within (
    // < 2 ids, e.g. with more shards than nodes) fall back to the
    // whole id range.
    let partition = *serving.sharded().partition();
    let mut blocks: Vec<std::ops::Range<u32>> = (0..partition.shard_count())
        .map(|s| partition.owned_block(s, n))
        .filter(|r| r.end - r.start >= 2)
        .collect();
    if blocks.is_empty() {
        blocks.push(0..n as u32);
    }

    let mut shadow = serving.sharded().graph().clone();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let stop = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let started = std::time::Instant::now();
    let mut updates = 0usize;
    let writer_result = std::thread::scope(|scope| {
        let _stop_on_exit = RaiseOnDrop(&stop);
        for t in 0..opts.readers {
            let reader = serving.reader();
            let (stop, queries) = (&stop, &queries);
            scope.spawn(move || {
                let mut acc = 0.0f64;
                let mut x = 0x2545F4914F6CDD1Du64.wrapping_add(t as u64);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // One coherent epoch per batch of 256 queries.
                    let epoch = reader.epoch();
                    for _ in 0..256 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let a = ((x >> 33) as usize % n) as u32;
                        let b = ((x >> 13) as usize % n) as u32;
                        acc += epoch.pair(a, b);
                    }
                    local += 256;
                }
                queries.fetch_add(local, Ordering::Relaxed);
                std::hint::black_box(acc);
            });
        }

        // The writer. Errors break rather than return, so `stop` is
        // always raised and the readers always join.
        let mut batches = 0usize;
        let mut result = Ok(());
        while started.elapsed() < opts.duration {
            let ops = crate::datagen::updates::random_toggles_blocks(
                &mut shadow,
                &blocks,
                opts.write_batch,
                &mut rng,
            );
            if let Err(e) = serving.update_batch_with_threads(&ops, opts.writer_threads) {
                result = Err(e);
                break;
            }
            updates += ops.len();
            batches += 1;
            if batches % opts.publish_every == 0 {
                serving.publish();
            }
        }
        // Close the window with a published epoch so readers see the
        // final state even when it was too short for a full cadence.
        // (`_stop_on_exit` raises the stop flag as the closure returns.)
        serving.publish();
        result
    });
    writer_result?;
    Ok(LoadReport {
        queries: queries.load(std::sync::atomic::Ordering::Relaxed),
        updates,
        epochs_published: serving.epoch_seq(),
        elapsed_secs: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ApplyPolicy, EngineKind};
    use crate::core::batch_simrank;

    fn fixture() -> DiGraph {
        DiGraph::from_edges(
            8,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 6),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        )
    }

    fn cfg() -> SimRankConfig {
        // K = 60: truncation ~0.6^61 ≈ 4e-14, far below the test bars.
        SimRankConfig::new(0.6, 60).unwrap()
    }

    #[test]
    fn partition_blocks_and_clamps() {
        let p = ShardPartition::new(8, 2);
        assert_eq!(p.shard_count(), 2);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(3), 0);
        assert_eq!(p.owner(4), 1);
        assert_eq!(p.owner(7), 1);
        assert_eq!(p.owner(100), 1, "appended ids fall to the last shard");
        assert_eq!(p.pair_owner(6, 1), p.pair_owner(1, 6));
        // More shards than nodes: high shards own nothing, low ids map 1:1.
        let p = ShardPartition::new(3, 8);
        assert_eq!(p.shard_count(), 8);
        assert_eq!(p.owner(2), 2);
        assert_eq!(p.owner(9), 7);
        // Clamp: zero shards behaves as one.
        assert_eq!(ShardPartition::new(5, 0).shard_count(), 1);
    }

    #[test]
    fn handles_are_send_and_readers_sync() {
        fn assert_send<T: Send>() {}
        fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
        assert_send::<ShardedSimRank>();
        assert_send::<ConcurrentSimRank>();
        assert_send_sync_clone::<EpochReader>();
        assert_send_sync_clone::<Arc<Epoch>>();
    }

    #[test]
    fn component_aligned_sharding_matches_batch_truth() {
        // Two 4-node components, one per shard: the exactness contract's
        // clean case. Updates stay within components.
        let g = fixture();
        let mut sharded = SimRankBuilder::new()
            .algorithm(EngineKind::IncSr)
            .config(cfg())
            .shards(2)
            .build_sharded(g)
            .unwrap();
        sharded.insert(0, 3).unwrap();
        sharded.remove(6, 7).unwrap();
        sharded
            .update_batch(&[UpdateOp::Insert(4, 7), UpdateOp::Insert(1, 3)])
            .unwrap();
        let truth = batch_simrank(sharded.graph(), sharded.config());
        for a in 0..8u32 {
            for b in 0..8u32 {
                let got = sharded.pair(a, b);
                let want = truth.get(a as usize, b as usize);
                assert!(
                    (got - want).abs() < 1e-10,
                    "pair ({a},{b}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn cross_shard_updates_reach_both_owners() {
        let mut sharded = SimRankBuilder::new()
            .config(cfg())
            .shards(2)
            .build_sharded(fixture())
            .unwrap();
        // Edge (1, 6): endpoints on different shards — two applications.
        let stats = sharded.insert(1, 6).unwrap();
        assert_eq!(stats.len(), 2);
        // Same-shard edge — one application.
        let stats = sharded.insert(0, 1).unwrap();
        assert_eq!(stats.len(), 1);
        assert!(sharded.graph().has_edge(1, 6));
        // Both owning shards saw the cross edge; the router graph is
        // authoritative either way.
        assert!(sharded.shard(0).graph().has_edge(1, 6));
        assert!(sharded.shard(1).graph().has_edge(1, 6));
    }

    #[test]
    fn invalid_batch_is_rejected_atomically() {
        let mut sharded = SimRankBuilder::new()
            .config(cfg())
            .shards(2)
            .build_sharded(fixture())
            .unwrap();
        let before_edges = sharded.graph().edge_count();
        let err = sharded
            .update_batch(&[
                UpdateOp::Insert(0, 1),
                UpdateOp::Insert(0, 2), // duplicate: already present
            ])
            .unwrap_err();
        assert!(matches!(err, UpdateError::Graph(_)));
        // Nothing applied anywhere — not even the valid prefix.
        assert_eq!(sharded.graph().edge_count(), before_edges);
        assert!(!sharded.graph().has_edge(0, 1));
        assert!(!sharded.shard(0).graph().has_edge(0, 1));
    }

    #[test]
    fn batch_dispatch_is_thread_count_invariant() {
        let ops = [
            UpdateOp::Insert(0, 1),
            UpdateOp::Insert(5, 7),
            UpdateOp::Delete(2, 3),
            UpdateOp::Insert(2, 6),
        ];
        let build = || {
            SimRankBuilder::new()
                .config(cfg())
                .mode(ApplyPolicy::Fused)
                .shards(3)
                .build_sharded(fixture())
                .unwrap()
        };
        let mut serial = build();
        let mut grouped = build();
        let mut parallel = build();
        let s1 = serial.update_batch_with_threads(&ops, 1).unwrap();
        // A cap below the busy-shard count exercises the grouped
        // dispatch (workers process several shards each, serially).
        let s2 = grouped.update_batch_with_threads(&ops, 2).unwrap();
        let s4 = parallel.update_batch_with_threads(&ops, 4).unwrap();
        assert_eq!(s1.len(), ops.len());
        assert_eq!(s2.len(), ops.len());
        assert_eq!(s4.len(), ops.len());
        for a in 0..8u32 {
            for b in 0..8u32 {
                assert_eq!(serial.pair(a, b), parallel.pair(a, b));
                assert_eq!(serial.pair(a, b), grouped.pair(a, b));
            }
        }
    }

    #[test]
    fn epoch_isolation_and_publish() {
        let mut serving = SimRankBuilder::new()
            .config(cfg())
            .shards(2)
            .concurrent(fixture())
            .unwrap();
        let reader = serving.reader();
        let e0 = reader.epoch();
        assert_eq!(e0.seq(), 0);
        let before = e0.pair(0, 1);

        serving.insert(0, 1).unwrap();
        // Unpublished: readers still see epoch 0, pinned or re-fetched.
        assert_eq!(reader.epoch().seq(), 0);
        assert_eq!(reader.pair(0, 1), before);

        let seq = serving.publish();
        assert_eq!(seq, 1);
        assert_eq!(reader.seq(), 1);
        // The pinned epoch still answers from its own frozen state.
        assert_eq!(e0.pair(0, 1), before);
        // The fresh epoch agrees with the writer's router.
        assert_eq!(reader.pair(0, 1), serving.sharded().pair(0, 1));
    }

    #[test]
    fn flush_publishes_and_lazy_delta_travels_into_epochs() {
        let mut serving = SimRankBuilder::new()
            .config(cfg())
            .mode(ApplyPolicy::Lazy)
            .shards(2)
            .concurrent(fixture())
            .unwrap();
        serving.insert(0, 1).unwrap();
        serving.publish();
        let reader = serving.reader();
        assert!(
            serving.sharded().pending_rank() > 0,
            "lazy window still open"
        );
        // The epoch composes S_base + Δ without materialising.
        let truth = batch_simrank(serving.sharded().graph(), serving.sharded().config());
        assert!((reader.pair(0, 1) - truth.get(0, 1)).abs() < 1e-10);
        let seq_before = reader.seq();
        let pairs = serving.flush();
        assert!(pairs > 0);
        assert_eq!(serving.sharded().pending_rank(), 0);
        assert!(reader.seq() > seq_before, "flush publishes");
        assert!((reader.pair(0, 1) - truth.get(0, 1)).abs() < 1e-10);
    }

    #[test]
    fn absent_node_yields_none_not_panic() {
        let sharded = SimRankBuilder::new()
            .config(cfg())
            .shards(3)
            .build_sharded(fixture())
            .unwrap();
        assert!(sharded.try_pair(0, 1).is_some());
        assert!(sharded.try_pair(0, 99).is_none());
        assert!(sharded.try_pair(99, 0).is_none());
        assert!(sharded.try_single_source(99).is_none());
        assert!(sharded.try_top_k(99, 3).is_none());
        let serving = ConcurrentSimRank::new(sharded);
        let epoch = serving.reader().epoch();
        assert!(epoch.try_pair(99, 0).is_none());
        assert!(epoch.try_top_k(99, 3).is_none());
    }

    #[test]
    fn counters_aggregate_across_shards() {
        let mut sharded = SimRankBuilder::new()
            .config(cfg())
            .mode(ApplyPolicy::Fused)
            .shards(2)
            .build_sharded(fixture())
            .unwrap();
        sharded.insert(0, 1).unwrap(); // shard 0 only
        sharded.insert(1, 6).unwrap(); // both shards
        sharded.pair(0, 1); // shard 0
        sharded.pair(5, 6); // shard 1
        let per = sharded.shard_counters();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].fused_updates, 2);
        assert_eq!(per[1].fused_updates, 1);
        let total = sharded.counters();
        assert_eq!(total.fused_updates, 3);
        assert_eq!(total.queries, per[0].queries + per[1].queries);
        assert_eq!(total.queries, 2);
    }

    #[test]
    fn recompressions_aggregate_across_shards_and_epochs_stay_exact() {
        let cfg = cfg();
        let mut serving = SimRankBuilder::new()
            .config(cfg)
            .mode(ApplyPolicy::Lazy)
            .compress_at_rank(cfg.iterations + 1)
            .shards(2)
            .concurrent(fixture())
            .unwrap();
        // Two updates per shard: the second hits each shard's threshold.
        for (i, j) in [(0u32, 1u32), (1, 3), (5, 7), (4, 5)] {
            serving.insert(i, j).unwrap();
        }
        let per = serving.sharded().shard_counters();
        let total = serving.sharded().counters();
        assert_eq!(
            total.recompressions,
            per.iter().map(|c| c.recompressions).sum::<usize>()
        );
        assert!(total.recompressions >= 2, "each shard recompressed once");
        assert_eq!(total.rank_cap_flushes, 0);
        assert!(serving.sharded().pending_rank() > 0, "windows stay open");
        // Epochs publish the compressed factors; answers match truth.
        serving.publish();
        let reader = serving.reader();
        let truth = batch_simrank(serving.sharded().graph(), serving.sharded().config());
        for a in 0..8u32 {
            for b in 0..8u32 {
                let got = reader.pair(a, b);
                let want = truth.get(a as usize, b as usize);
                assert!(
                    (got - want).abs() < 1e-10,
                    "pair ({a},{b}): {got} vs {want}"
                );
            }
        }
        // The explicit serve-side compress keeps working afterwards.
        let rank = serving.compress_pending();
        assert!(rank <= serving.sharded().pending_rank().max(1));
    }

    #[test]
    fn add_node_grows_every_shard() {
        let mut sharded = SimRankBuilder::new()
            .config(cfg())
            .shards(2)
            .build_sharded(fixture())
            .unwrap();
        let id = sharded.add_node();
        assert_eq!(id, 8);
        assert_eq!(sharded.graph().node_count(), 9);
        assert!(sharded.try_pair(8, 0).is_some());
        sharded.insert(8, 2).unwrap();
        assert!(sharded.pair(8, 8) > 0.0);
    }

    #[test]
    fn probe_shards_publish_epochs_without_a_matrix() {
        use crate::core::ProbeOptions;
        // Nodes 0 and 1 share in-neighbour 2, so s(0, 1) is the strong
        // pair; removing (2, 1) later knocks it down.
        let g = DiGraph::from_edges(
            7,
            &[
                (2, 0),
                (3, 0),
                (2, 1),
                (4, 1),
                (0, 5),
                (1, 5),
                (5, 6),
                (6, 2),
                (6, 3),
            ],
        );
        // K = 8 keeps walks short; R below is large enough that the batch
        // truth sits well inside the 0.05 tolerance declared by the engine
        // docs for these sample counts.
        let cfg = SimRankConfig::new(0.6, 8).unwrap();
        let opts = ProbeOptions {
            walks: 3000,
            pair_walks: 20_000,
            prune: 0.0,
            seed: 7,
        };
        let sharded = SimRankBuilder::new()
            .algorithm(EngineKind::Probe)
            .config(cfg)
            .probe_options(opts)
            .shards(2)
            .build_sharded(g)
            .unwrap();
        for s in 0..sharded.shard_count() {
            assert!(sharded.shard(s).is_matrix_free());
        }
        assert_eq!(sharded.pending_rank(), 0);

        let mut concurrent = ConcurrentSimRank::new(sharded);
        let reader = concurrent.reader();
        let frozen = reader.epoch();
        assert_eq!(frozen.n(), 7);
        let truth = batch_simrank(concurrent.sharded().graph(), &cfg);
        let before = frozen.pair(0, 1);
        assert!(
            (before - truth.get(0, 1)).abs() < 0.05,
            "epoch pair (0,1): {before} vs {}",
            truth.get(0, 1)
        );
        assert_eq!(frozen.pair(0, 1), frozen.pair(1, 0));
        assert!(frozen.try_pair(99, 0).is_none());
        let ranked = frozen.top_k(0, 3);
        assert!(!ranked.is_empty() && ranked[0].node == 1);

        // Cross-shard edge (shards own 0..4 and 4..7): both owners apply
        // it as a plain graph edit.
        let stats = concurrent.insert(0, 6).unwrap();
        assert_eq!(stats.len(), 2);
        concurrent.remove(2, 1).unwrap();
        let seq = concurrent.publish();
        assert_eq!(seq, 1);

        // The pinned epoch still answers from the old topology…
        assert!((frozen.pair(0, 1) - before).abs() < 1e-12);
        // …while fresh epochs see the removal of 0 and 1's shared
        // in-neighbour evidence.
        let truth_after = batch_simrank(concurrent.sharded().graph(), &cfg);
        let after = reader.pair(0, 1);
        assert!(
            (after - truth_after.get(0, 1)).abs() < 0.05,
            "post-update pair (0,1): {after} vs {}",
            truth_after.get(0, 1)
        );
        assert!(before > after + 0.02);

        // Counters: walk buckets only, never zero-stuffed apply modes.
        // (Epoch queries sample against their own frozen cores; hit the
        // live read path once so the shard's sampling tally moves.)
        let _ = concurrent.sharded().pair(0, 1);
        let c = concurrent.sharded().counters();
        assert_eq!(c.walk_updates, 3, "insert hit 2 shards, remove hit 1");
        assert_eq!(c.eager_updates + c.fused_updates + c.lazy_updates, 0);
        assert!(c.walks_sampled > 0);
    }
}
